//! Memory-mapped zero-copy `.adjb` replay.
//!
//! [`crate::trace::ItemTrace`] slurps a trace file into an owned byte
//! buffer and decodes it into an owned item vector — two transient
//! allocations the size of the file, paid before the first item is served.
//! A [`MappedTrace`] maps the file instead and, on little-endian targets,
//! serves the pair region *in place*: `StreamItem` is `repr(C)` over two
//! `repr(transparent)` `u32`s, which is byte-for-byte the on-disk pair
//! encoding, so the mapped region **is** the `&[StreamItem]` — no decode
//! pass, no heap copy, and the pages are shared, evictable file cache
//! rather than private anonymous memory.
//!
//! # Windowed checksum verification
//!
//! The container's trailing [`crate::hashing::checksum64`] covers the whole
//! payload. Verifying it eagerly would fault in every page before the first
//! item is served, recreating slurp latency. [`MappedTrace::open`] therefore
//! only checks *structure* (magic, version, offsets, run-length totals —
//! a few dozen bytes plus the run-length region) and exposes verification
//! as an incremental cursor: [`verify_step`](MappedTrace::verify_step)
//! absorbs one bounded window of payload into a streaming
//! [`Checksum64`] per call, and [`verify_all`](MappedTrace::verify_all)
//! drives it to completion.
//!
//! # Safety argument (why serving unverified items is sound)
//!
//! Items read before verification completes are untrusted in *value* only:
//! every 8-byte pattern is a valid `StreamItem`, so no memory safety rests
//! on the checksum, exactly as with [`ItemTrace::from_bytes_unchecked`].
//! Every estimator in this workspace takes at least two passes, and
//! replay drivers complete verification at the first pass boundary —
//! before any estimate is emitted — so a corrupt container is always
//! rejected with [`TraceError::ChecksumMismatch`] and never silently
//! shapes a published number. The file must not be mutated concurrently;
//! the mapping is `MAP_PRIVATE` read-only, so external truncation is the
//! only hazard (as with any mmap consumer), and traces are written
//! atomically by this workspace's own tooling.
//!
//! [`ItemTrace::from_bytes_unchecked`]: crate::trace::ItemTrace::from_bytes_unchecked

use std::fs::File;
use std::path::Path;

use crate::hashing::Checksum64;
use crate::item::StreamItem;
use crate::trace::{TraceError, ADJB_MAGIC, ADJB_VERSION};

/// Byte offset of the payload (`items` count) in a `.adjb` file:
/// 8 magic + 4 version.
const PAYLOAD_START: usize = 12;

/// Byte offset of the pair region: payload start + 8-byte item count.
/// Divisible by [`StreamItem`]'s alignment (4), so a page-aligned mapping
/// keeps the pair region aligned for the zero-copy cast.
const PAIRS_START: usize = 20;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    // Declared directly: the workspace vendors no libc crate, but these
    // symbols are part of every unix C runtime this builds against.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// The bytes backing a [`MappedTrace`]: a real mapping on unix, an owned
/// slurp elsewhere (same API, no zero-copy win).
enum Backing {
    #[cfg(unix)]
    Mapped(MmapRegion),
    #[allow(dead_code)]
    Owned(Vec<u8>),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(m) => m.bytes(),
            Backing::Owned(v) => v,
        }
    }
}

/// A read-only `mmap` of a whole file, unmapped on drop.
#[cfg(unix)]
struct MmapRegion {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the region is immutable after construction and unmapped only at
// drop; sharing `&self` reads across threads is exactly shared `&[u8]`.
#[cfg(unix)]
unsafe impl Send for MmapRegion {}
#[cfg(unix)]
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
impl MmapRegion {
    fn map(file: &File, len: usize) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap rejects zero-length mappings; an empty file needs none.
            return Ok(MmapRegion {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: requests a fresh read-only private mapping of `len` bytes
        // of an open fd at offset 0; the result is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MmapRegion {
            ptr: ptr.cast(),
            len,
        })
    }

    fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live `len`-byte read-only mapping owned by
        // `self`; the borrow cannot outlive the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: unmapping exactly what `map` mapped, once.
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

/// A `.adjb` trace served zero-copy from a file mapping. See module docs.
pub struct MappedTrace {
    backing: Backing,
    /// Item count declared by the container.
    len: usize,
    /// End of the checksummed payload (exclusive) in `backing` bytes.
    payload_end: usize,
    /// Checksum recorded in the container trailer.
    expected: u64,
    /// Payload bytes already absorbed by `hasher`.
    verify_cursor: usize,
    hasher: Checksum64,
    verified: bool,
    /// Owned decode, used only where the in-place cast is unavailable.
    #[cfg(not(target_endian = "little"))]
    decoded: Vec<StreamItem>,
}

impl MappedTrace {
    /// Map `path` and check the container's *structure*: magic, version,
    /// declared offsets against the file length, and that the run lengths
    /// sum to the item count. The payload checksum is **not** verified here
    /// — drive [`verify_step`](Self::verify_step) /
    /// [`verify_all`](Self::verify_all) before trusting an estimate.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = File::open(path).map_err(TraceError::Io)?;
        let file_len = file.metadata().map_err(TraceError::Io)?.len();
        let file_len = usize::try_from(file_len).map_err(|_| TraceError::Truncated)?;
        #[cfg(unix)]
        let backing = Backing::Mapped(MmapRegion::map(&file, file_len).map_err(TraceError::Io)?);
        #[cfg(not(unix))]
        let backing = Backing::Owned(std::fs::read(path).map_err(TraceError::Io)?);
        Self::from_backing(backing)
    }

    fn from_backing(backing: Backing) -> Result<Self, TraceError> {
        let bytes = backing.bytes();
        let take = |range: std::ops::Range<usize>| -> Result<&[u8], TraceError> {
            bytes.get(range).ok_or(TraceError::Truncated)
        };
        let read_u32_at = |at: usize| -> Result<u32, TraceError> {
            Ok(u32::from_le_bytes(
                take(at..at + 4)?.try_into().expect("4 bytes"),
            ))
        };
        let read_u64_at = |at: usize| -> Result<u64, TraceError> {
            Ok(u64::from_le_bytes(
                take(at..at + 8)?.try_into().expect("8 bytes"),
            ))
        };
        if take(0..8)? != ADJB_MAGIC {
            // mmap replay is binary-only; text traces have no checksum to
            // window and no fixed-layout pairs to borrow.
            return Err(TraceError::Malformed { line: 1 });
        }
        let version = read_u32_at(8)?;
        if version != ADJB_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                supported: ADJB_VERSION,
            });
        }
        let n64 = read_u64_at(PAYLOAD_START)?;
        let n = usize::try_from(n64).map_err(|_| TraceError::Truncated)?;
        let pairs_len = n.checked_mul(8).ok_or(TraceError::Truncated)?;
        let runs_at = PAIRS_START
            .checked_add(pairs_len)
            .ok_or(TraceError::Truncated)?;
        let runs = usize::try_from(read_u64_at(runs_at)?).map_err(|_| TraceError::Truncated)?;
        let lens_start = runs_at + 8;
        let lens_len = runs.checked_mul(4).ok_or(TraceError::Truncated)?;
        let payload_end = lens_start
            .checked_add(lens_len)
            .ok_or(TraceError::Truncated)?;
        let expected = read_u64_at(payload_end)?;
        let run_total: u64 = take(lens_start..payload_end)?
            .chunks_exact(4)
            .map(|c| u64::from(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .sum();
        if run_total != n64 {
            return Err(TraceError::InconsistentRuns {
                items: n64,
                run_total,
            });
        }
        #[cfg(not(target_endian = "little"))]
        let decoded = {
            let mut items = Vec::with_capacity(n);
            for pair in bytes[PAIRS_START..runs_at].chunks_exact(8) {
                let src = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
                let dst = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
                items.push(StreamItem::new(
                    adjstream_graph::VertexId(src),
                    adjstream_graph::VertexId(dst),
                ));
            }
            items
        };
        Ok(MappedTrace {
            backing,
            len: n,
            payload_end,
            expected,
            verify_cursor: PAYLOAD_START,
            hasher: Checksum64::new(),
            verified: false,
            #[cfg(not(target_endian = "little"))]
            decoded,
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Undirected edge count implied by the container (`items / 2`; exact
    /// on promise-valid traces, an upper bound otherwise — the same
    /// contract as [`crate::trace::ItemTrace::new_unchecked`]).
    pub fn edges(&self) -> usize {
        self.len / 2
    }

    /// The items, borrowed straight from the mapping on little-endian
    /// targets (no copy, no decode).
    #[cfg(target_endian = "little")]
    pub fn items(&self) -> &[StreamItem] {
        let bytes = &self.backing.bytes()[PAIRS_START..PAIRS_START + self.len * 8];
        assert_eq!(
            bytes.as_ptr() as usize % std::mem::align_of::<StreamItem>(),
            0,
            "pair region must be 4-byte aligned (page-aligned mapping + offset 20)"
        );
        // SAFETY: `StreamItem` is `repr(C)` `{ u32, u32 }` with no padding
        // and no invalid bit patterns; the region holds exactly `len`
        // little-endian records (structurally validated in `open`), is
        // aligned (asserted), and lives as long as `self.backing`.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<StreamItem>(), self.len) }
    }

    /// The items (owned decode on targets without the in-place cast).
    #[cfg(not(target_endian = "little"))]
    pub fn items(&self) -> &[StreamItem] {
        &self.decoded
    }

    /// Whether the payload checksum has been fully verified.
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    /// Absorb up to `window` further payload bytes into the checksum.
    /// Returns `Ok(true)` once the whole payload is absorbed and matches
    /// the recorded checksum (idempotent afterwards), `Ok(false)` if more
    /// windows remain, and [`TraceError::ChecksumMismatch`] on corruption.
    pub fn verify_step(&mut self, window: usize) -> Result<bool, TraceError> {
        if self.verified {
            return Ok(true);
        }
        let window = window.max(1);
        let end = self.payload_end.min(self.verify_cursor + window);
        self.hasher
            .update(&self.backing.bytes()[self.verify_cursor..end]);
        self.verify_cursor = end;
        if self.verify_cursor < self.payload_end {
            return Ok(false);
        }
        let actual = self.hasher.clone().finalize();
        if actual != self.expected {
            return Err(TraceError::ChecksumMismatch {
                expected: self.expected,
                actual,
            });
        }
        self.verified = true;
        Ok(true)
    }

    /// Drive [`verify_step`](Self::verify_step) to completion in
    /// `window`-byte windows.
    pub fn verify_all(&mut self, window: usize) -> Result<(), TraceError> {
        while !self.verify_step(window)? {}
        Ok(())
    }

    /// A verification cursor that borrows the mapping *immutably*, so
    /// checksum windows can be absorbed while replay slices from
    /// [`items`](Self::items) are still outstanding — the deferred
    /// "verify at the first pass boundary" pattern of the module docs.
    /// Completion is tracked by the cursor, not mirrored into
    /// [`is_verified`](Self::is_verified).
    pub fn verify_cursor(&self) -> VerifyCursor<'_> {
        VerifyCursor {
            bytes: self.backing.bytes(),
            payload_end: self.payload_end,
            expected: self.expected,
            cursor: PAYLOAD_START,
            hasher: Checksum64::new(),
            done: false,
        }
    }
}

/// Incremental payload-checksum verification over a shared borrow of a
/// [`MappedTrace`]. See [`MappedTrace::verify_cursor`].
pub struct VerifyCursor<'a> {
    bytes: &'a [u8],
    payload_end: usize,
    expected: u64,
    cursor: usize,
    hasher: Checksum64,
    done: bool,
}

impl VerifyCursor<'_> {
    /// Absorb up to `window` further payload bytes; same contract as
    /// [`MappedTrace::verify_step`].
    pub fn step(&mut self, window: usize) -> Result<bool, TraceError> {
        if self.done {
            return Ok(true);
        }
        let window = window.max(1);
        let end = self.payload_end.min(self.cursor + window);
        self.hasher.update(&self.bytes[self.cursor..end]);
        self.cursor = end;
        if self.cursor < self.payload_end {
            return Ok(false);
        }
        let actual = self.hasher.clone().finalize();
        if actual != self.expected {
            return Err(TraceError::ChecksumMismatch {
                expected: self.expected,
                actual,
            });
        }
        self.done = true;
        Ok(true)
    }

    /// Whether the whole payload has been absorbed and matched.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Drive [`step`](Self::step) to completion in `window`-byte windows.
    pub fn finish(mut self, window: usize) -> Result<(), TraceError> {
        while !self.step(window)? {}
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ItemTrace;
    use adjstream_graph::VertexId;

    fn sample_trace() -> ItemTrace {
        let v = |x: u32| VertexId(x);
        let mut items = Vec::new();
        // Triangle 0-1-2 plus a pendant edge 2-3: valid promise layout.
        for (s, ds) in [
            (0u32, vec![1u32, 2]),
            (1, vec![0, 2]),
            (2, vec![0, 1, 3]),
            (3, vec![2]),
        ] {
            for d in ds {
                items.push(StreamItem::new(v(s), v(d)));
            }
        }
        ItemTrace::new(items).expect("valid")
    }

    fn write_tmp(trace: &ItemTrace, name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("adjstream-mmap-{}-{name}.adjb", std::process::id()));
        let mut buf = Vec::new();
        trace.write_adjb(&mut buf).expect("encode");
        std::fs::write(&path, &buf).expect("write");
        path
    }

    #[test]
    fn mapped_items_match_slurped_decode() {
        let trace = sample_trace();
        let path = write_tmp(&trace, "roundtrip");
        let mut mapped = MappedTrace::open(&path).expect("open");
        assert_eq!(mapped.len(), trace.len());
        assert_eq!(mapped.items(), trace.items());
        assert!(!mapped.is_verified());
        mapped.verify_all(16).expect("clean file verifies");
        assert!(mapped.is_verified());
        // Idempotent after completion.
        assert!(mapped.verify_step(16).expect("still ok"));
        std::fs::remove_file(&path).ok();
    }

    /// The shared-borrow cursor verifies while item slices are live — the
    /// borrow pattern the deferred pass-boundary verification relies on.
    #[test]
    fn verify_cursor_runs_with_items_outstanding() {
        let trace = sample_trace();
        let path = write_tmp(&trace, "cursor");
        let mapped = MappedTrace::open(&path).expect("open");
        let items = mapped.items();
        let mut cursor = mapped.verify_cursor();
        while !cursor.step(7).expect("clean file verifies") {
            // Items stay readable mid-verification.
            assert_eq!(items.len(), trace.len());
        }
        assert!(cursor.is_done());
        assert_eq!(items, trace.items());

        // And the consuming driver agrees.
        mapped.verify_cursor().finish(16).expect("clean");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn windowed_verification_detects_pair_corruption() {
        let trace = sample_trace();
        let path = write_tmp(&trace, "corrupt");
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes[PAIRS_START + 3] ^= 0x40; // flip a bit inside the first pair
        std::fs::write(&path, &bytes).expect("rewrite");
        let mut mapped = MappedTrace::open(&path).expect("structure still valid");
        // Items are served before verification — value-corrupt, memory-safe.
        assert_eq!(mapped.len(), trace.len());
        let err = mapped.verify_all(8).expect_err("checksum must fail");
        assert!(
            matches!(err, TraceError::ChecksumMismatch { .. }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn structural_faults_are_rejected_at_open() {
        let trace = sample_trace();
        let path = write_tmp(&trace, "structural");
        let good = std::fs::read(&path).expect("read back");

        // Truncated inside the pair region.
        std::fs::write(&path, &good[..PAIRS_START + 5]).expect("truncate");
        assert!(matches!(
            MappedTrace::open(&path),
            Err(TraceError::Truncated)
        ));

        // Bad version.
        let mut bad = good.clone();
        bad[8] = 0xFF;
        std::fs::write(&path, &bad).expect("rewrite");
        assert!(matches!(
            MappedTrace::open(&path),
            Err(TraceError::UnsupportedVersion { .. })
        ));

        // Not a binary trace at all.
        std::fs::write(&path, b"0 1\n1 0\n").expect("rewrite");
        assert!(matches!(
            MappedTrace::open(&path),
            Err(TraceError::Malformed { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_maps_and_verifies() {
        let trace = ItemTrace::new(Vec::new()).expect("empty is valid");
        let path = write_tmp(&trace, "empty");
        let mut mapped = MappedTrace::open(&path).expect("open");
        assert!(mapped.is_empty());
        assert_eq!(mapped.items(), &[] as &[StreamItem]);
        mapped.verify_all(4).expect("verifies");
        std::fs::remove_file(&path).ok();
    }
}

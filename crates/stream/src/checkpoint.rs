//! Pass-boundary checkpointing: a serialization trait and a small,
//! versioned, checksummed on-disk container.
//!
//! Multi-pass algorithms only need persistence at *pass boundaries*: no
//! adjacency list is open, per-pass scratch state has been folded into the
//! cross-pass summaries, and the driver is about to start the next pass from
//! item 0. The [`Checkpoint`] trait therefore captures exactly that state —
//! implementors document which fields are reconstructed rather than stored
//! (per-pass counters reset by `begin_pass`, hash functions re-derived from
//! seeds, heap layouts rebuilt from their member sets).
//!
//! The resume contract is **bit-for-bit determinism of the estimates**: a
//! run restored from a pass boundary and driven over the remaining passes
//! must produce exactly the per-instance outputs of the uninterrupted run.
//! Space-metering byte counts are explicitly *not* part of the contract —
//! container capacities after deserialization may differ from the organic
//! growth pattern of the original run.
//!
//! # On-disk container
//!
//! [`write_checkpoint_file`] wraps an opaque payload in a fixed frame:
//!
//! ```text
//! magic   8 bytes  b"ADJSCKPT"
//! version u32 LE   FORMAT_VERSION
//! length  u64 LE   payload byte count
//! payload length bytes
//! check   u64 LE   FNV-1a over payload
//! ```
//!
//! Files are written atomically — the frame goes to a sibling temp file
//! which is then renamed over the destination — so a crash mid-write leaves
//! either the previous complete checkpoint or none, never a torn one.
//! [`read_checkpoint_file`] verifies magic, version, length, and checksum
//! before releasing the payload.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"ADJSCKPT";

/// Current checkpoint container format version. Bumped on any incompatible
/// layout change; readers reject other versions with
/// [`CheckpointError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// State that can be persisted at a pass boundary and later restored.
///
/// `restore` must be the exact inverse of `save`: for any value `x` at a
/// pass boundary, `restore(save(x))` drives the remaining passes to
/// bit-for-bit identical outputs. Implementations should reject
/// structurally invalid input with [`io::ErrorKind::InvalidData`] rather
/// than panic — checkpoint bytes cross a trust boundary (the filesystem).
pub trait Checkpoint: Sized {
    /// Serialize the pass-boundary state into `w`.
    fn save(&self, w: &mut dyn Write) -> io::Result<()>;

    /// Reconstruct the state serialized by [`Checkpoint::save`].
    fn restore(r: &mut dyn Read) -> io::Result<Self>;
}

/// Failure modes of the on-disk checkpoint container.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file's format version is not readable by this build.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The file ended before the declared payload + checksum.
    Truncated,
    /// The payload bytes do not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint payload corrupt: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a over `bytes` — the container's integrity checksum. Not
/// cryptographic; it guards against torn writes and bit rot, not tampering.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frame `payload` and write it atomically to `path`: the container goes to
/// a sibling `<name>.tmp` file which is fsynced and renamed into place.
pub fn write_checkpoint_file(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    let mut name = path
        .file_name()
        .ok_or_else(|| {
            CheckpointError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint path has no file name",
            ))
        })?
        .to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&MAGIC)?;
        f.write_all(&FORMAT_VERSION.to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(payload)?;
        f.write_all(&fnv1a(payload).to_le_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and verify a checkpoint container, returning its payload.
pub fn read_checkpoint_file(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs::read(path)?;
    let header = MAGIC.len() + 4 + 8;
    if bytes.len() < header {
        return Err(if bytes.starts_with(&MAGIC) || bytes.is_empty() {
            CheckpointError::Truncated
        } else {
            CheckpointError::BadMagic
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    if bytes.len() < header + len + 8 {
        return Err(CheckpointError::Truncated);
    }
    let payload = &bytes[header..header + len];
    let expected = u64::from_le_bytes(
        bytes[header + len..header + len + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let actual = fnv1a(payload);
    if actual != expected {
        return Err(CheckpointError::ChecksumMismatch { expected, actual });
    }
    Ok(payload.to_vec())
}

/// Garbage-collect stale checkpoint files from `dir`.
///
/// A file is deleted when `is_candidate(path)` returns `true` *and* its
/// modification time is older than `retention`. The candidate predicate is
/// the caller's liveness policy — the CLI keeps any checkpoint a current
/// invocation might resume, the daemon keeps any checkpoint whose job
/// manifest is still non-terminal. Files whose metadata cannot be read
/// (or whose clock skew puts them in the future) are left alone: GC must
/// never turn a recoverable run into an unrecoverable one over an mtime
/// oddity. Returns the number of files removed.
pub fn gc_stale_checkpoints<F>(dir: &Path, retention: std::time::Duration, is_candidate: F) -> usize
where
    F: Fn(&Path) -> bool,
{
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let now = std::time::SystemTime::now();
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() || !is_candidate(&path) {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let Ok(mtime) = meta.modified() else { continue };
        let Ok(age) = now.duration_since(mtime) else {
            continue;
        };
        if age > retention && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Build an [`io::ErrorKind::InvalidData`] error for structurally bad
/// checkpoint payloads.
pub fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

macro_rules! le_rw {
    ($write:ident, $read:ident, $ty:ty) => {
        /// Write one little-endian value.
        pub fn $write(w: &mut dyn Write, v: $ty) -> io::Result<()> {
            w.write_all(&v.to_le_bytes())
        }

        /// Read one little-endian value.
        pub fn $read(r: &mut dyn Read) -> io::Result<$ty> {
            let mut buf = [0u8; std::mem::size_of::<$ty>()];
            r.read_exact(&mut buf)?;
            Ok(<$ty>::from_le_bytes(buf))
        }
    };
}

le_rw!(write_u32, read_u32, u32);
le_rw!(write_u64, read_u64, u64);

/// Write one byte.
pub fn write_u8(w: &mut dyn Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Read one byte.
pub fn read_u8(r: &mut dyn Read) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

/// Write a `usize` as a u64 (portable across word sizes).
pub fn write_usize(w: &mut dyn Write, v: usize) -> io::Result<()> {
    write_u64(w, v as u64)
}

/// Read a `usize` written by [`write_usize`].
pub fn read_usize(r: &mut dyn Read) -> io::Result<usize> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| corrupt(format!("length {v} exceeds this platform's usize")))
}

/// Write an `f64` by bit pattern (exact round-trip, NaN included).
pub fn write_f64(w: &mut dyn Write, v: f64) -> io::Result<()> {
    write_u64(w, v.to_bits())
}

/// Read an `f64` written by [`write_f64`].
pub fn read_f64(r: &mut dyn Read) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Write a length-prefixed byte string.
pub fn write_bytes(w: &mut dyn Write, v: &[u8]) -> io::Result<()> {
    write_usize(w, v.len())?;
    w.write_all(v)
}

/// Read a byte string written by [`write_bytes`].
pub fn read_bytes(r: &mut dyn Read) -> io::Result<Vec<u8>> {
    let len = read_usize(r)?;
    // Cap the eager allocation; corrupt lengths otherwise request huge
    // buffers before read_exact can fail.
    let mut buf = Vec::with_capacity(len.min(1 << 20));
    let took = r.take(len as u64).read_to_end(&mut buf)?;
    if took != len {
        return Err(corrupt(format!("expected {len} bytes, found {took}")));
    }
    Ok(buf)
}

/// Write a length-prefixed UTF-8 string.
pub fn write_str(w: &mut dyn Write, v: &str) -> io::Result<()> {
    write_bytes(w, v.as_bytes())
}

/// Read a string written by [`write_str`].
pub fn read_str(r: &mut dyn Read) -> io::Result<String> {
    String::from_utf8(read_bytes(r)?).map_err(|_| corrupt("invalid UTF-8 in checkpoint string"))
}

// ---------------------------------------------------------------------------
// Checkpoint impls for the typed errors: a quarantined instance's outcome
// (which may embed a RunError) is part of a batch checkpoint, so it must
// survive the round-trip too.
// ---------------------------------------------------------------------------

impl Checkpoint for crate::validate::StreamError {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        use crate::validate::StreamError as E;
        match self {
            E::SelfLoop { vertex, position } => {
                write_u8(w, 0)?;
                write_u32(w, vertex.0)?;
                write_usize(w, *position)
            }
            E::ListNotContiguous { vertex, position } => {
                write_u8(w, 1)?;
                write_u32(w, vertex.0)?;
                write_usize(w, *position)
            }
            E::DuplicateNeighbor { src, dst, position } => {
                write_u8(w, 2)?;
                write_u32(w, src.0)?;
                write_u32(w, dst.0)?;
                write_usize(w, *position)
            }
            E::MissingReverse { src, dst } => {
                write_u8(w, 3)?;
                write_u32(w, src.0)?;
                write_u32(w, dst.0)
            }
            E::UnbalancedEdges { parity } => {
                write_u8(w, 4)?;
                write_u64(w, *parity)
            }
            E::PassOrderChanged { pass, list_index } => {
                write_u8(w, 5)?;
                write_usize(w, *pass)?;
                write_usize(w, *list_index)
            }
        }
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        use adjstream_graph::VertexId;

        use crate::validate::StreamError as E;
        Ok(match read_u8(r)? {
            0 => E::SelfLoop {
                vertex: VertexId(read_u32(r)?),
                position: read_usize(r)?,
            },
            1 => E::ListNotContiguous {
                vertex: VertexId(read_u32(r)?),
                position: read_usize(r)?,
            },
            2 => E::DuplicateNeighbor {
                src: VertexId(read_u32(r)?),
                dst: VertexId(read_u32(r)?),
                position: read_usize(r)?,
            },
            3 => E::MissingReverse {
                src: VertexId(read_u32(r)?),
                dst: VertexId(read_u32(r)?),
            },
            4 => E::UnbalancedEdges {
                parity: read_u64(r)?,
            },
            5 => E::PassOrderChanged {
                pass: read_usize(r)?,
                list_index: read_usize(r)?,
            },
            t => return Err(corrupt(format!("bad stream error tag {t}"))),
        })
    }
}

impl Checkpoint for crate::runner::RunError {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        use crate::runner::RunError as E;
        match self {
            E::OrderMismatch => write_u8(w, 0),
            E::WrongOrderCount { expected, got } => {
                write_u8(w, 1)?;
                write_usize(w, *expected)?;
                write_usize(w, *got)
            }
            E::Invalid { pass, error } => {
                write_u8(w, 2)?;
                write_usize(w, *pass)?;
                error.save(w)
            }
            E::EmptyBatch => write_u8(w, 3),
            E::MixedPassContracts => write_u8(w, 4),
            E::DeadlineExceeded { limit_ms } => {
                write_u8(w, 5)?;
                write_u64(w, *limit_ms)
            }
            E::SpaceBudgetExceeded { used, limit } => {
                write_u8(w, 6)?;
                write_usize(w, *used)?;
                write_usize(w, *limit)
            }
            E::Checkpoint { message } => {
                write_u8(w, 7)?;
                write_str(w, message)
            }
        }
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        use crate::runner::RunError as E;
        Ok(match read_u8(r)? {
            0 => E::OrderMismatch,
            1 => E::WrongOrderCount {
                expected: read_usize(r)?,
                got: read_usize(r)?,
            },
            2 => E::Invalid {
                pass: read_usize(r)?,
                error: crate::validate::StreamError::restore(r)?,
            },
            3 => E::EmptyBatch,
            4 => E::MixedPassContracts,
            5 => E::DeadlineExceeded {
                limit_ms: read_u64(r)?,
            },
            6 => E::SpaceBudgetExceeded {
                used: read_usize(r)?,
                limit: read_usize(r)?,
            },
            7 => E::Checkpoint {
                message: read_str(r)?,
            },
            t => return Err(corrupt(format!("bad run error tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("adjstream-ckpt-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn container_round_trips() {
        let path = tmp_path("roundtrip");
        let payload = b"some pass-boundary state".to_vec();
        write_checkpoint_file(&path, &payload).unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), payload);
        // Overwrite with different payload: rename replaces atomically.
        write_checkpoint_file(&path, b"v2").unwrap();
        assert_eq!(read_checkpoint_file(&path).unwrap(), b"v2");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gc_removes_only_stale_candidates() {
        let dir = tmp_path("gc-dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("old.ckpt");
        let fresh = dir.join("new.ckpt");
        let protected = dir.join("live.ckpt");
        for p in [&stale, &fresh, &protected] {
            std::fs::write(p, b"x").unwrap();
        }
        // Let the files age past the mtime clock's granularity.
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Zero retention makes every candidate "stale"; the predicate is
        // what protects `live.ckpt`. `fresh` is excluded by the predicate
        // too, standing in for a file the caller still owns.
        let removed = gc_stale_checkpoints(&dir, std::time::Duration::ZERO, |p| {
            p.file_name().is_some_and(|n| n == "old.ckpt")
        });
        assert_eq!(removed, 1);
        assert!(!stale.exists());
        assert!(fresh.exists() && protected.exists());
        // A retention window longer than the files' age removes nothing.
        let removed = gc_stale_checkpoints(&dir, std::time::Duration::from_secs(3600), |_| true);
        assert_eq!(removed, 0);
        assert!(fresh.exists() && protected.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let path = tmp_path("corrupt");
        write_checkpoint_file(&path, b"fragile bytes").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let flip = MAGIC.len() + 4 + 8 + 3;
        raw[flip] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_checkpoint_file(&path),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_and_magic_are_checked() {
        let path = tmp_path("version");
        write_checkpoint_file(&path, b"x").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[8] = 0xFF; // version LSB
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_checkpoint_file(&path),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));
        raw[0] = b'X';
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_checkpoint_file(&path),
            Err(CheckpointError::BadMagic)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp_path("truncated");
        write_checkpoint_file(&path, b"0123456789").unwrap();
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 6]).unwrap();
        assert!(matches!(
            read_checkpoint_file(&path),
            Err(CheckpointError::Truncated)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn primitive_helpers_round_trip() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 1).unwrap();
        write_usize(&mut buf, 123_456).unwrap();
        write_f64(&mut buf, f64::NAN).unwrap();
        write_str(&mut buf, "pass boundary").unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(read_u8(&mut r).unwrap(), 7);
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 1);
        assert_eq!(read_usize(&mut r).unwrap(), 123_456);
        assert!(read_f64(&mut r).unwrap().is_nan());
        assert_eq!(read_str(&mut r).unwrap(), "pass boundary");
        assert!(read_u8(&mut r).is_err(), "stream fully consumed");
    }
}

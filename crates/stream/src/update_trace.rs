//! `.adjbu` — the checksummed binary container for update traces.
//!
//! The text format of [`crate::update`] is convenient to author but slow to
//! parse and silently tolerant of torn writes (a truncated file is just a
//! shorter stream). Registered daemon traces need the same integrity story
//! as static `.adjb` files, so this module mirrors [`crate::trace`] for
//! [`UpdateStream`]s:
//!
//! ```text
//! magic    8 bytes   b"ADJBUPDT"
//! version  u32 LE    ADJBU_VERSION
//! payload:
//!   count  u64 LE    number of events
//!   event  17 bytes  op u8 (0 insert, 1 delete), lo u32 LE, hi u32 LE,
//!                    ts u64 LE — repeated `count` times
//! check    u64 LE    checksum64(payload)
//! ```
//!
//! [`read_updates`] sniffs the first eight bytes: the magic selects the
//! binary decoder, anything else falls through to the text parser, so every
//! consumer (CLI, daemon, benches) accepts both formats through one entry
//! point. Rejection is typed — [`UpdateTraceError::Truncated`],
//! [`UpdateTraceError::ChecksumMismatch`],
//! [`UpdateTraceError::UnsupportedVersion`] — and decoded events pass the
//! same semantic checks as the text parser (no self-loops, non-decreasing
//! timestamps), reported with the 1-based event index in the
//! [`UpdateParseError`]'s `line` field.

use std::fmt;
use std::io::{self, Read, Write};

use adjstream_graph::{EdgeKey, VertexId};

use crate::hashing::checksum64;
use crate::update::{UpdateEvent, UpdateOp, UpdateParseError, UpdateStream};

/// Magic bytes opening every `.adjbu` binary update trace.
pub const ADJBU_MAGIC: [u8; 8] = *b"ADJBUPDT";

/// Current `.adjbu` format version; readers reject anything else with
/// [`UpdateTraceError::UnsupportedVersion`].
pub const ADJBU_VERSION: u32 = 1;

/// Bytes per encoded event: op tag, two endpoints, timestamp.
const EVENT_BYTES: usize = 1 + 4 + 4 + 8;

/// Why an update trace (binary or text) was rejected.
#[derive(Debug)]
pub enum UpdateTraceError {
    /// The underlying I/O operation failed.
    Io(io::Error),
    /// The text parser rejected a line, or a decoded binary event violated
    /// update-stream semantics (for binary traces the error's `line` is the
    /// 1-based event index).
    Parse(UpdateParseError),
    /// The file's format version is not readable by this build.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The file ended before the declared events + checksum.
    Truncated,
    /// The payload bytes do not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// An event's op tag was neither 0 (insert) nor 1 (delete).
    BadOp {
        /// 1-based event index.
        event: usize,
        /// The tag byte found.
        found: u8,
    },
    /// The file has neither the `.adjbu` magic nor valid UTF-8 text — it
    /// is not an update trace in any dialect this build reads. (Distinct
    /// from [`UpdateTraceError::Truncated`], which means a *binary* trace
    /// ended early.)
    NotText,
}

impl fmt::Display for UpdateTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateTraceError::Io(e) => write!(f, "update trace I/O error: {e}"),
            UpdateTraceError::Parse(e) => write!(f, "invalid update trace: {e}"),
            UpdateTraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported .adjbu version {found} (this build reads {supported})"
            ),
            UpdateTraceError::Truncated => write!(f, ".adjbu file is truncated"),
            UpdateTraceError::ChecksumMismatch { expected, actual } => write!(
                f,
                ".adjbu payload corrupt: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            UpdateTraceError::BadOp { event, found } => {
                write!(f, "event {event}: bad op tag {found} (expected 0 or 1)")
            }
            UpdateTraceError::NotText => {
                write!(f, "not an update trace: no .adjbu magic and not UTF-8 text")
            }
        }
    }
}

impl std::error::Error for UpdateTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateTraceError::Io(e) => Some(e),
            UpdateTraceError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for UpdateTraceError {
    fn from(e: io::Error) -> Self {
        UpdateTraceError::Io(e)
    }
}

impl From<UpdateParseError> for UpdateTraceError {
    fn from(e: UpdateParseError) -> Self {
        UpdateTraceError::Parse(e)
    }
}

/// Whether `bytes` begins with the `.adjbu` magic — the same sniff
/// [`parse_update_bytes`] performs, exposed for catalog-style kind
/// detection that must not pay for a full decode.
pub fn is_adjbu(bytes: &[u8]) -> bool {
    bytes.len() >= ADJBU_MAGIC.len() && bytes[..ADJBU_MAGIC.len()] == ADJBU_MAGIC
}

/// Serialize `stream` in the `.adjbu` container format.
pub fn write_adjbu(stream: &UpdateStream, w: &mut dyn Write) -> io::Result<()> {
    let mut payload = Vec::with_capacity(8 + stream.len() * EVENT_BYTES);
    payload.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    for ev in stream.events() {
        payload.push(match ev.op {
            UpdateOp::Insert => 0,
            UpdateOp::Delete => 1,
        });
        payload.extend_from_slice(&ev.edge.lo().0.to_le_bytes());
        payload.extend_from_slice(&ev.edge.hi().0.to_le_bytes());
        payload.extend_from_slice(&ev.ts.to_le_bytes());
    }
    w.write_all(&ADJBU_MAGIC)?;
    w.write_all(&ADJBU_VERSION.to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&checksum64(&payload).to_le_bytes())?;
    w.flush()
}

/// Parse an update trace from raw bytes, sniffing the format: the
/// [`ADJBU_MAGIC`] prefix selects the binary decoder, anything else is
/// handed to [`UpdateStream::parse_text`].
pub fn parse_update_bytes(bytes: &[u8]) -> Result<UpdateStream, UpdateTraceError> {
    match bytes.strip_prefix(&ADJBU_MAGIC) {
        Some(rest) => decode_adjbu(rest),
        None => {
            // A zero-length file is the empty text trace, not a truncated
            // binary one — the magic never began, so there is nothing to
            // have cut short. Likewise non-UTF-8 bytes are "not a trace at
            // all" rather than Truncated.
            let text = std::str::from_utf8(bytes).map_err(|_| UpdateTraceError::NotText)?;
            Ok(UpdateStream::parse_text(text)?)
        }
    }
}

/// Read an update trace from `r`, sniffing binary vs text (see
/// [`parse_update_bytes`]).
pub fn read_updates<R: Read>(mut r: R) -> Result<UpdateStream, UpdateTraceError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    parse_update_bytes(&bytes)
}

/// Decode the post-magic portion of a `.adjbu` file.
fn decode_adjbu(rest: &[u8]) -> Result<UpdateStream, UpdateTraceError> {
    let take = |range: std::ops::Range<usize>| rest.get(range).ok_or(UpdateTraceError::Truncated);
    let read_u32_at = |at: usize| -> Result<u32, UpdateTraceError> {
        Ok(u32::from_le_bytes(take(at..at + 4)?.try_into().expect("4")))
    };
    let read_u64_at = |at: usize| -> Result<u64, UpdateTraceError> {
        Ok(u64::from_le_bytes(take(at..at + 8)?.try_into().expect("8")))
    };

    let version = read_u32_at(0)?;
    if version != ADJBU_VERSION {
        return Err(UpdateTraceError::UnsupportedVersion {
            found: version,
            supported: ADJBU_VERSION,
        });
    }
    let payload_start = 4;
    let count = read_u64_at(payload_start)?;
    let count_usize = usize::try_from(count).map_err(|_| UpdateTraceError::Truncated)?;
    let events_len = count_usize
        .checked_mul(EVENT_BYTES)
        .ok_or(UpdateTraceError::Truncated)?;
    let payload_end = payload_start
        .checked_add(8)
        .and_then(|v| v.checked_add(events_len))
        .ok_or(UpdateTraceError::Truncated)?;
    let payload = take(payload_start..payload_end)?;
    let expected = read_u64_at(payload_end)?;
    let actual = checksum64(payload);
    if actual != expected {
        return Err(UpdateTraceError::ChecksumMismatch { expected, actual });
    }

    let mut events = Vec::with_capacity(count_usize.min(1 << 20));
    let mut prev_ts = 0u64;
    for i in 0..count_usize {
        let at = payload_start + 8 + i * EVENT_BYTES;
        let op = match rest[at] {
            0 => UpdateOp::Insert,
            1 => UpdateOp::Delete,
            found => {
                return Err(UpdateTraceError::BadOp {
                    event: i + 1,
                    found,
                })
            }
        };
        let lo = read_u32_at(at + 1)?;
        let hi = read_u32_at(at + 5)?;
        let ts = read_u64_at(at + 9)?;
        if lo == hi {
            return Err(UpdateParseError::SelfLoop {
                line: i + 1,
                vertex: lo,
            }
            .into());
        }
        if i > 0 && ts < prev_ts {
            return Err(UpdateParseError::TimestampRegression {
                line: i + 1,
                previous: prev_ts,
                found: ts,
            }
            .into());
        }
        prev_ts = ts;
        events.push(UpdateEvent {
            op,
            edge: EdgeKey::new(VertexId(lo), VertexId(hi)),
            ts,
        });
    }
    Ok(UpdateStream::new(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{churn, ChurnConfig};
    use adjstream_graph::gen;

    fn sample_stream() -> UpdateStream {
        let g = gen::disjoint_cliques(3, 6);
        churn(
            &g,
            &ChurnConfig {
                churn_events: 80,
                delete_fraction: 0.5,
                seed: 5,
            },
        )
    }

    fn encode(s: &UpdateStream) -> Vec<u8> {
        let mut buf = Vec::new();
        write_adjbu(s, &mut buf).unwrap();
        buf
    }

    #[test]
    fn binary_round_trip() {
        let s = sample_stream();
        let bytes = encode(&s);
        assert!(is_adjbu(&bytes));
        assert_eq!(parse_update_bytes(&bytes).unwrap(), s);
        assert_eq!(read_updates(&bytes[..]).unwrap(), s);
    }

    #[test]
    fn sniffs_text_without_magic() {
        let s = sample_stream();
        let mut text = Vec::new();
        s.write_text(&mut text).unwrap();
        assert!(!is_adjbu(&text));
        assert_eq!(parse_update_bytes(&text).unwrap(), s);
    }

    #[test]
    fn zero_length_input_is_the_empty_update_trace() {
        // Regression: an empty file used to fall into the binary error
        // path on some callers; it is a valid (empty) text trace.
        let s = parse_update_bytes(b"").unwrap();
        assert!(s.is_empty());
        let s = read_updates(&b""[..]).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn non_utf8_without_magic_is_not_text_not_truncated() {
        let err = parse_update_bytes(&[0xFF, 0xFE, 0x00, 0x01]).unwrap_err();
        assert!(matches!(err, UpdateTraceError::NotText), "got {err:?}");
    }

    #[test]
    fn empty_stream_round_trips() {
        let s = UpdateStream::default();
        assert_eq!(parse_update_bytes(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = encode(&sample_stream());
        bytes[8] = 0xFE; // version LSB
        assert!(matches!(
            parse_update_bytes(&bytes),
            Err(UpdateTraceError::UnsupportedVersion { found, supported: 1 }) if found != 1
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_stream());
        for cut in [bytes.len() - 1, bytes.len() - 9, 13] {
            assert!(
                matches!(
                    parse_update_bytes(&bytes[..cut]),
                    Err(UpdateTraceError::Truncated)
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut bytes = encode(&sample_stream());
        let mid = 12 + bytes.len() / 2 % (bytes.len() - 20);
        bytes[mid] ^= 0x10;
        assert!(matches!(
            parse_update_bytes(&bytes),
            Err(UpdateTraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn semantic_violations_reject_with_event_index() {
        // Hand-build payloads: self-loop at event 2, regression at event 2.
        let build = |events: &[(u8, u32, u32, u64)]| {
            let mut payload = Vec::new();
            payload.extend_from_slice(&(events.len() as u64).to_le_bytes());
            for &(op, lo, hi, ts) in events {
                payload.push(op);
                payload.extend_from_slice(&lo.to_le_bytes());
                payload.extend_from_slice(&hi.to_le_bytes());
                payload.extend_from_slice(&ts.to_le_bytes());
            }
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&ADJBU_MAGIC);
            bytes.extend_from_slice(&ADJBU_VERSION.to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
            bytes
        };
        assert!(matches!(
            parse_update_bytes(&build(&[(0, 0, 1, 0), (0, 4, 4, 1)])),
            Err(UpdateTraceError::Parse(UpdateParseError::SelfLoop {
                line: 2,
                vertex: 4
            }))
        ));
        assert!(matches!(
            parse_update_bytes(&build(&[(0, 0, 1, 7), (0, 1, 2, 3)])),
            Err(UpdateTraceError::Parse(
                UpdateParseError::TimestampRegression {
                    line: 2,
                    previous: 7,
                    found: 3
                }
            ))
        ));
        assert!(matches!(
            parse_update_bytes(&build(&[(9, 0, 1, 0)])),
            Err(UpdateTraceError::BadOp { event: 1, found: 9 })
        ));
    }
}

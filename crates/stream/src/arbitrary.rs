//! The *arbitrary order* insertion-only model, for comparison.
//!
//! Section 1.1 of the paper contrasts the adjacency-list model with the
//! standard arbitrary-order model, where each undirected edge arrives once,
//! in adversarial order, with no grouping promise — and where one-pass
//! triangle counting requires `Ω(m)` space without extra parameters. This
//! module provides that model so experiments can measure the gap between
//! the two (the `repro_model_comparison` binary): same graph, same space,
//! different promises.

use adjstream_graph::{EdgeKey, Graph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::meter::{PeakTracker, SpaceUsage};

/// A replayable arbitrary-order edge stream: each undirected edge exactly
/// once, in a seeded random permutation (the usual stand-in for an
/// adversarial order in experiments).
pub struct ArbitraryOrderStream {
    edges: Vec<EdgeKey>,
}

impl ArbitraryOrderStream {
    /// Shuffle `graph`'s edges with `seed`.
    pub fn new(graph: &Graph, seed: u64) -> Self {
        let mut edges = graph.edge_vec();
        edges.shuffle(&mut StdRng::seed_from_u64(seed));
        ArbitraryOrderStream { edges }
    }

    /// A specific, possibly adversarial edge order.
    pub fn from_edges(edges: Vec<EdgeKey>) -> Self {
        ArbitraryOrderStream { edges }
    }

    /// Number of items (= edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterate one pass.
    pub fn items(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.edges.iter().copied()
    }
}

/// A one-pass algorithm over an arbitrary-order edge stream.
pub trait EdgeStreamAlgorithm: SpaceUsage {
    /// Final output.
    type Output;

    /// Process the next edge.
    fn edge(&mut self, e: EdgeKey);

    /// Consume and produce the output.
    fn finish(self) -> Self::Output;
}

/// Drive `algo` over one pass of `stream`, recording peak state.
pub fn run_edge_stream<A: EdgeStreamAlgorithm>(
    stream: &ArbitraryOrderStream,
    mut algo: A,
) -> (A::Output, usize) {
    let mut peak = PeakTracker::new();
    for (i, e) in stream.items().enumerate() {
        algo.edge(e);
        // Sample the space at the same granularity the list runner uses
        // (every few items rather than every item, to keep overhead down).
        if i % 64 == 0 {
            peak.observe(algo.space_bytes());
        }
    }
    peak.observe(algo.space_bytes());
    (algo.finish(), peak.peak())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;

    struct Counter(usize);
    impl SpaceUsage for Counter {
        fn space_bytes(&self) -> usize {
            8
        }
    }
    impl EdgeStreamAlgorithm for Counter {
        type Output = usize;
        fn edge(&mut self, _e: EdgeKey) {
            self.0 += 1;
        }
        fn finish(self) -> usize {
            self.0
        }
    }

    #[test]
    fn each_edge_appears_exactly_once() {
        let g = gen::complete(8);
        let s = ArbitraryOrderStream::new(&g, 3);
        assert_eq!(s.len(), 28);
        let mut seen = std::collections::HashSet::new();
        for e in s.items() {
            assert!(seen.insert(e));
        }
        assert_eq!(seen.len(), 28);
    }

    #[test]
    fn replay_is_identical_and_seed_sensitive() {
        let g = gen::complete(6);
        let s1 = ArbitraryOrderStream::new(&g, 1);
        let s2 = ArbitraryOrderStream::new(&g, 1);
        assert_eq!(
            s1.items().collect::<Vec<_>>(),
            s2.items().collect::<Vec<_>>()
        );
        let s3 = ArbitraryOrderStream::new(&g, 2);
        assert_ne!(
            s1.items().collect::<Vec<_>>(),
            s3.items().collect::<Vec<_>>()
        );
    }

    #[test]
    fn runner_reports_output_and_peak() {
        let g = gen::complete(7);
        let s = ArbitraryOrderStream::new(&g, 5);
        let (count, peak) = run_edge_stream(&s, Counter(0));
        assert_eq!(count, 21);
        assert_eq!(peak, 8);
    }
}

//! Seeded hash families for the samplers.
//!
//! The paper's samplers need hash functions that map a canonical edge key to
//! a pseudo-random priority, so that both stream appearances of an edge make
//! the same sampling decision (Section 3.3.1's "hash-based sampling method").
//! Everything here is deterministic given a `u64` seed, keeping every
//! experiment replayable.

/// SplitMix64: a fast, well-mixed 64-bit permutation-based generator. Used
/// both as a stateless mixer ([`SplitMix64::mix`]) and as a tiny sequential
/// RNG for seeding.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next sequential value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        finalize(self.state)
    }

    /// Stateless mix of `x` with this generator's seed: a fixed random-ish
    /// function `u64 → u64`.
    pub fn mix(&self, x: u64) -> u64 {
        finalize(self.state ^ finalize(x.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// The raw internal state, for checkpointing. Feeding it back through
    /// [`SplitMix64::from_state`] resumes the sequence exactly where it
    /// stopped.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a state captured by [`SplitMix64::state`].
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }
}

#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded hash function `u64 → u64` suitable for sampling decisions.
///
/// Implemented as two rounds of SplitMix finalization keyed by independent
/// seed words; empirically indistinguishable from random for the adversarial
/// inputs in this repository (sequential ids, packed edge keys), and fully
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct HashFn {
    k0: u64,
    k1: u64,
}

impl HashFn {
    /// Derive a hash function from `seed`, distinguished by `stream_id` so
    /// one experiment seed can feed many independent hash functions.
    pub fn from_seed(seed: u64, stream_id: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ finalize(stream_id));
        HashFn {
            k0: sm.next_u64(),
            k1: sm.next_u64(),
        }
    }

    /// Hash a key to a uniform-looking 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        finalize(finalize(key ^ self.k0).wrapping_add(self.k1))
    }

    /// Hash to the unit interval `[0, 1)`.
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        // 53 high bits → f64 in [0,1).
        (self.hash(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Word-at-a-time 64-bit checksum for container payloads.
///
/// Processes the input as four independent lanes of 8-byte little-endian
/// words, each folded through SplitMix64's finalizer, then combines the
/// lanes with the total length. The byte-serial FNV-1a in
/// [`crate::checkpoint`] carries a multiply dependency per *byte*; here the
/// three multiplies per word overlap across lanes, which matters because
/// file-backed replay re-verifies a trace's checksum on every pass. Detects
/// corruption (any flipped bit reaches the output); not cryptographic.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut ck = Checksum64::new();
    ck.update(bytes);
    ck.finalize()
}

/// Streaming state of [`checksum64`]: feed the input in arbitrary windows
/// via [`update`](Checksum64::update) and the final digest is byte-for-byte
/// identical to a single [`checksum64`] call over the concatenation.
///
/// This is what lets mmap-backed replay verify a multi-gigabyte `.adjb`
/// container in bounded windows — touching pages incrementally instead of
/// forcing the whole file resident before the first item is served — while
/// keeping the exact on-disk checksum format.
#[derive(Debug, Clone)]
pub struct Checksum64 {
    lanes: [u64; 4],
    /// Partial 32-byte block carried between `update` calls.
    pending: [u8; 32],
    pending_len: usize,
    /// Total bytes absorbed (folded into the final digest).
    len: u64,
}

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum64 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Checksum64 {
            lanes: [
                0x243F_6A88_85A3_08D3u64,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            pending: [0u8; 32],
            pending_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn absorb_block(lanes: &mut [u64; 4], block: &[u8]) {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = finalize(*lane ^ u64::from_le_bytes(word.try_into().expect("8 bytes")));
        }
    }

    /// Absorb the next window of input.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.pending_len > 0 {
            let need = 32 - self.pending_len;
            let take = need.min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 32 {
                return;
            }
            let block = self.pending;
            Self::absorb_block(&mut self.lanes, &block);
            self.pending_len = 0;
        }
        let mut blocks = bytes.chunks_exact(32);
        for block in &mut blocks {
            Self::absorb_block(&mut self.lanes, block);
        }
        let rem = blocks.remainder();
        self.pending[..rem.len()].copy_from_slice(rem);
        self.pending_len = rem.len();
    }

    /// Bytes absorbed so far.
    pub fn bytes_absorbed(&self) -> u64 {
        self.len
    }

    /// Finish: digest of everything absorbed, identical to
    /// [`checksum64`] over the same bytes.
    pub fn finalize(mut self) -> u64 {
        if self.pending_len > 0 {
            // Zero-pad the tail block; the length fold below distinguishes
            // inputs that differ only in trailing zero bytes.
            self.pending[self.pending_len..].fill(0);
            let block = self.pending;
            Self::absorb_block(&mut self.lanes, &block);
        }
        let mut acc = self.len;
        for lane in self.lanes {
            acc = finalize(acc ^ lane);
        }
        acc
    }
}

/// Seed of the default [`FastBuildHasher`]. Fixed, so two maps built with
/// `FastBuildHasher::default()` and fed the same insertion sequence iterate
/// in the same order — in the same process, on another thread, or in another
/// run entirely.
const FAST_HASH_SEED: u64 = 0x5EED_AD75_7EAA_17A1;

/// A seeded [`std::hash::Hasher`] built on SplitMix64 finalization.
///
/// The algorithm-state maps in `crates/core` key on `u32` vertex ids and
/// packed `u64` edge keys; std's default SipHash spends most of a lookup
/// hashing 8 bytes with a 64-bit-secure keyed hash nobody asked for. This
/// hasher folds each written word through [`SplitMix64`]'s finalizer — one
/// multiply-xor round per word — and is *deterministic*: the seed is fixed
/// (or explicitly supplied), never drawn from process randomness like
/// `RandomState`, so map iteration order is a pure function of the insertion
/// sequence. That determinism is what lets batched, threaded replays stay
/// bit-for-bit against the sequential runner even where iteration order
/// leaks into results (those sites are additionally sorted; see DESIGN.md).
///
/// Not DoS-resistant by design: keys here come from the experiment harness,
/// not an adversary.
#[derive(Debug, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        finalize(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time fold; the trailing partial word is zero-padded and
        // length-tagged so "ab" and "ab\0" hash differently.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.mix(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.mix(x as u64);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.mix(x);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.mix(x as u64);
    }
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = finalize(self.state ^ word.wrapping_add(0x9E37_79B9_7F4A_7C15));
    }
}

/// Seeded [`std::hash::BuildHasher`] producing [`FastHasher`]s. `Default`
/// uses a fixed seed, so every `FastMap`/`FastSet` in the workspace shares
/// one deterministic hash function.
#[derive(Debug, Clone, Copy)]
pub struct FastBuildHasher {
    seed: u64,
}

impl FastBuildHasher {
    /// A build-hasher keyed by `seed` (for the rare map that wants its own
    /// hash function rather than the workspace-wide default).
    pub fn with_seed(seed: u64) -> Self {
        FastBuildHasher { seed }
    }
}

impl Default for FastBuildHasher {
    fn default() -> Self {
        FastBuildHasher {
            seed: FAST_HASH_SEED,
        }
    }
}

impl std::hash::BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher { state: self.seed }
    }
}

/// `HashMap` with the deterministic seeded fast hasher — the map type for
/// algorithm state on every hot path.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// `HashSet` with the deterministic seeded fast hasher.
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

/// A 2-universal multiply-shift hash `u64 → [0, 2^out_bits)`, for cases
/// where provable pairwise independence matters (bucket assignment in the
/// estimator combinators).
#[derive(Debug, Clone, Copy)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShift {
    /// Draw the (odd) multiplier and offset from `seed`.
    pub fn from_seed(seed: u64, out_bits: u32) -> Self {
        assert!((1..=63).contains(&out_bits));
        let mut sm = SplitMix64::new(seed);
        MultiplyShift {
            a: sm.next_u64() | 1,
            b: sm.next_u64(),
            out_bits,
        }
    }

    /// Hash `key` into `0..2^out_bits`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        self.a
            .wrapping_mul(key)
            .wrapping_add(self.b)
            .wrapping_shr(64 - self.out_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_sequence_changes() {
        let mut sm = SplitMix64::new(1);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Deterministic.
        let mut sm2 = SplitMix64::new(1);
        assert_eq!(sm2.next_u64(), a);
    }

    #[test]
    fn hashfn_is_deterministic_and_seed_sensitive() {
        let h1 = HashFn::from_seed(7, 0);
        let h2 = HashFn::from_seed(7, 0);
        let h3 = HashFn::from_seed(8, 0);
        let h4 = HashFn::from_seed(7, 1);
        assert_eq!(h1.hash(42), h2.hash(42));
        assert_ne!(h1.hash(42), h3.hash(42));
        assert_ne!(h1.hash(42), h4.hash(42));
    }

    #[test]
    fn unit_values_look_uniform() {
        let h = HashFn::from_seed(3, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| h.unit(i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below_tenth = (0..n).filter(|&i| h.unit(i) < 0.1).count();
        let frac = below_tenth as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
        assert!((0..n).all(|i| (0.0..1.0).contains(&h.unit(i))));
    }

    #[test]
    fn hash_collision_rate_is_tiny() {
        let h = HashFn::from_seed(11, 0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(h.hash(i));
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        let data: Vec<u8> = (0..100u16).map(|i| (i * 7 % 251) as u8).collect();
        let want = checksum64(&data);
        assert_eq!(checksum64(&data), want);
        let mut corrupted = data.clone();
        for at in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[at] ^= 1 << bit;
                assert_ne!(checksum64(&corrupted), want, "flip at {at} bit {bit}");
                corrupted[at] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn windowed_checksum_matches_one_shot_for_every_split() {
        let data: Vec<u8> = (0..200u16)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        let want = checksum64(&data);
        // Every single split point, including block-misaligned ones.
        for split in 0..=data.len() {
            let mut ck = Checksum64::new();
            ck.update(&data[..split]);
            ck.update(&data[split..]);
            assert_eq!(ck.finalize(), want, "split at {split}");
        }
        // Many tiny windows of coprime-to-32 width.
        let mut ck = Checksum64::new();
        for chunk in data.chunks(7) {
            ck.update(chunk);
        }
        assert_eq!(ck.bytes_absorbed(), data.len() as u64);
        assert_eq!(ck.finalize(), want);
        // Empty input and empty updates.
        let mut ck = Checksum64::new();
        ck.update(b"");
        assert_eq!(ck.finalize(), checksum64(b""));
    }

    #[test]
    fn checksum_distinguishes_trailing_zeros_and_lengths() {
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"abc"), checksum64(b"abc\0"));
        // Across the 32-byte block boundary, too.
        let long = [0u8; 40];
        assert_ne!(checksum64(&long[..32]), checksum64(&long[..33]));
    }

    #[test]
    fn fast_map_iteration_order_is_a_pure_function_of_insertions() {
        let build = |seed: u64| {
            let mut m: FastMap<u64, u64> = FastMap::default();
            let mut sm = SplitMix64::new(seed);
            for _ in 0..500 {
                let k = sm.next_u64() % 1000;
                m.insert(k, k.wrapping_mul(3));
            }
            m.remove(&(sm.next_u64() % 1000));
            m.keys().copied().collect::<Vec<u64>>()
        };
        assert_eq!(build(9), build(9));
        // A seeded build-hasher scrambles differently but stays deterministic.
        let mut a: std::collections::HashMap<u32, (), FastBuildHasher> =
            std::collections::HashMap::with_hasher(FastBuildHasher::with_seed(1));
        let mut b = std::collections::HashMap::with_hasher(FastBuildHasher::with_seed(1));
        for i in 0..300u32 {
            a.insert(i, ());
            b.insert(i, ());
        }
        assert_eq!(
            a.keys().copied().collect::<Vec<_>>(),
            b.keys().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn fast_hasher_separates_close_keys() {
        use std::hash::{BuildHasher, Hasher};
        let bh = FastBuildHasher::default();
        let hash_u64 = |x: u64| {
            let mut h = bh.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(hash_u64(i));
        }
        assert_eq!(seen.len(), 100_000);
        // Byte-slice path: length-tagged tail distinguishes padded strings.
        let hash_bytes = |b: &[u8]| {
            let mut h = bh.build_hasher();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefg"));
    }

    #[test]
    fn multiply_shift_range() {
        let h = MultiplyShift::from_seed(5, 10);
        for i in 0..1000u64 {
            assert!(h.hash(i) < 1024);
        }
        // Rough balance across two halves.
        let low = (0..10_000u64).filter(|&i| h.hash(i) < 512).count();
        assert!((low as i64 - 5000).abs() < 600, "low {low}");
    }
}

//! Seeded hash families for the samplers.
//!
//! The paper's samplers need hash functions that map a canonical edge key to
//! a pseudo-random priority, so that both stream appearances of an edge make
//! the same sampling decision (Section 3.3.1's "hash-based sampling method").
//! Everything here is deterministic given a `u64` seed, keeping every
//! experiment replayable.

/// SplitMix64: a fast, well-mixed 64-bit permutation-based generator. Used
/// both as a stateless mixer ([`SplitMix64::mix`]) and as a tiny sequential
/// RNG for seeding.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next sequential value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        finalize(self.state)
    }

    /// Stateless mix of `x` with this generator's seed: a fixed random-ish
    /// function `u64 → u64`.
    pub fn mix(&self, x: u64) -> u64 {
        finalize(self.state ^ finalize(x.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// The raw internal state, for checkpointing. Feeding it back through
    /// [`SplitMix64::from_state`] resumes the sequence exactly where it
    /// stopped.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a state captured by [`SplitMix64::state`].
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }
}

#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded hash function `u64 → u64` suitable for sampling decisions.
///
/// Implemented as two rounds of SplitMix finalization keyed by independent
/// seed words; empirically indistinguishable from random for the adversarial
/// inputs in this repository (sequential ids, packed edge keys), and fully
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct HashFn {
    k0: u64,
    k1: u64,
}

impl HashFn {
    /// Derive a hash function from `seed`, distinguished by `stream_id` so
    /// one experiment seed can feed many independent hash functions.
    pub fn from_seed(seed: u64, stream_id: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ finalize(stream_id));
        HashFn {
            k0: sm.next_u64(),
            k1: sm.next_u64(),
        }
    }

    /// Hash a key to a uniform-looking 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        finalize(finalize(key ^ self.k0).wrapping_add(self.k1))
    }

    /// Hash to the unit interval `[0, 1)`.
    #[inline]
    pub fn unit(&self, key: u64) -> f64 {
        // 53 high bits → f64 in [0,1).
        (self.hash(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A 2-universal multiply-shift hash `u64 → [0, 2^out_bits)`, for cases
/// where provable pairwise independence matters (bucket assignment in the
/// estimator combinators).
#[derive(Debug, Clone, Copy)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    out_bits: u32,
}

impl MultiplyShift {
    /// Draw the (odd) multiplier and offset from `seed`.
    pub fn from_seed(seed: u64, out_bits: u32) -> Self {
        assert!((1..=63).contains(&out_bits));
        let mut sm = SplitMix64::new(seed);
        MultiplyShift {
            a: sm.next_u64() | 1,
            b: sm.next_u64(),
            out_bits,
        }
    }

    /// Hash `key` into `0..2^out_bits`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        self.a
            .wrapping_mul(key)
            .wrapping_add(self.b)
            .wrapping_shr(64 - self.out_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_sequence_changes() {
        let mut sm = SplitMix64::new(1);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Deterministic.
        let mut sm2 = SplitMix64::new(1);
        assert_eq!(sm2.next_u64(), a);
    }

    #[test]
    fn hashfn_is_deterministic_and_seed_sensitive() {
        let h1 = HashFn::from_seed(7, 0);
        let h2 = HashFn::from_seed(7, 0);
        let h3 = HashFn::from_seed(8, 0);
        let h4 = HashFn::from_seed(7, 1);
        assert_eq!(h1.hash(42), h2.hash(42));
        assert_ne!(h1.hash(42), h3.hash(42));
        assert_ne!(h1.hash(42), h4.hash(42));
    }

    #[test]
    fn unit_values_look_uniform() {
        let h = HashFn::from_seed(3, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| h.unit(i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below_tenth = (0..n).filter(|&i| h.unit(i) < 0.1).count();
        let frac = below_tenth as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
        assert!((0..n).all(|i| (0.0..1.0).contains(&h.unit(i))));
    }

    #[test]
    fn hash_collision_rate_is_tiny() {
        let h = HashFn::from_seed(11, 0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(h.hash(i));
        }
        assert_eq!(seen.len(), 100_000);
    }

    #[test]
    fn multiply_shift_range() {
        let h = MultiplyShift::from_seed(5, 10);
        for i in 0..1000u64 {
            assert!(h.hash(i) < 1024);
        }
        // Rough balance across two halves.
        let low = (0..10_000u64).filter(|&i| h.hash(i) < 512).count();
        assert!((low as i64 - 5000).abs() < 600, "low {low}");
    }
}

//! The adjacency list streaming model (Section 1.2 of the paper).
//!
//! A stream is a sequence of ordered pairs `xy`; for each undirected edge
//! `{x, y}` **both** `xy` and `yx` appear, and all pairs sharing a first
//! vertex — that vertex's adjacency list — appear consecutively. The order of
//! the lists, and the order within each list, is adversarial.
//!
//! This crate supplies the machinery shared by every algorithm:
//!
//! * [`item::StreamItem`] and [`order::StreamOrder`] — what a stream is and
//!   how one is laid out (list permutation × within-list order),
//! * [`adjlist::AdjListStream`] — generate the stream of a
//!   [`adjstream_graph::Graph`] under a given order, replayable for
//!   multi-pass algorithms,
//! * [`validate`] — check the adjacency-list promise on arbitrary item
//!   sequences, offline ([`validate::validate_stream`]) or incrementally
//!   during ingestion ([`validate::OnlineValidator`]),
//! * [`fault`] — seeded, replayable injection of every promise violation,
//! * [`guard`] — wrap any algorithm with online validation and an explicit
//!   degradation policy (strict / repair / observe),
//! * [`runner`] — drive a [`runner::MultiPassAlgorithm`] over one or more
//!   passes, recording the peak state size; fallible `try_run` entry points
//!   degrade to typed [`runner::RunError`]s instead of panicking,
//! * [`batch`] — the stream-once batched engine: generate each pass once
//!   and fan every item out to `R` algorithm instances sharded across
//!   worker threads, bitwise-reproducible against the sequential runner,
//!   with per-instance panic isolation, resource budgets, and pass-boundary
//!   checkpoint/resume,
//! * [`checkpoint`] — the [`checkpoint::Checkpoint`] trait and the
//!   versioned, checksummed, atomically-written on-disk container behind
//!   [`batch::BatchRunner::resume`],
//! * [`shard`] — graph-sharded scale-out: [`shard::ShardPlan`] partitions a
//!   trace by list-owner vertex and [`shard::run_sharded`] executes a
//!   [`shard::ShardAlgorithm`] per shard (threads or one checkpointed pass
//!   per process), merging per-pass partial states into results
//!   bit-identical to the sequential driver,
//! * [`mmapfile`] — [`mmapfile::MappedTrace`], zero-copy mmap-backed
//!   `.adjb` replay with windowed checksum verification,
//! * [`meter::SpaceUsage`] — how algorithms report their live state size,
//! * [`obs`] — structured run metrics: an enable-at-construction
//!   [`obs::Metrics`] sink the drivers and algorithms report per-pass
//!   timings, space time-series, and sampler/guard/checkpoint counters
//!   into, exported as versioned one-line JSON and guaranteed not to
//!   change what any run computes,
//! * [`hashing`] and [`sampling`] — seeded hash families and the edge/pair
//!   samplers (threshold, bottom-k, reservoir) that realize the paper's
//!   "sample a uniform size-m′ subset" steps,
//! * [`estimator`] — median / median-of-means amplification used to turn
//!   constant-probability estimators into `1 − δ` ones (Theorems 3.7, 4.6),
//! * [`update`] — timestamped insert/delete update streams, the seeded
//!   churn workload generator, and the batched update driver behind the
//!   fully-dynamic estimators,
//! * [`update_trace`] — the checksummed `.adjbu` binary container for
//!   update traces, with a format-sniffing reader accepting text too,
//! * [`update_fault`] and [`update_guard`] — the dynamic counterparts of
//!   [`fault`]/[`guard`]: seeded injection of update-semantics violations
//!   and the [`update_guard::GuardedUpdate`] adapter that vets every
//!   insert/delete before it reaches a fully-dynamic estimator.

#![warn(missing_docs)]

pub mod adjlist;
pub mod adversarial;
pub mod arbitrary;
pub mod batch;
pub mod checkpoint;
pub mod estimator;
pub mod fault;
pub mod guard;
pub mod hashing;
pub mod import;
pub mod item;
pub mod meter;
pub mod mmapfile;
pub mod obs;
pub mod order;
pub mod runner;
pub mod sampling;
pub mod shard;
pub mod trace;
pub mod update;
pub mod update_fault;
pub mod update_guard;
pub mod update_trace;
pub mod validate;

pub use adjlist::AdjListStream;
pub use arbitrary::ArbitraryOrderStream;
pub use batch::{
    BatchConfig, BatchJob, BatchOutcome, BatchReport, BatchRunner, Budget, InstanceOutcome,
    InstanceReport,
};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use fault::{CorruptedStream, FaultKind, FaultPlan, InjectedFault};
pub use guard::{GuardPolicy, Guarded};
pub use hashing::{FastBuildHasher, FastMap, FastSet};
pub use item::StreamItem;
pub use meter::SpaceUsage;
pub use mmapfile::{MappedTrace, VerifyCursor};
pub use obs::{Metrics, MetricsSnapshot, ObsCounters, METRICS_SCHEMA_VERSION};
pub use order::{StreamOrder, WithinListOrder};
pub use runner::{
    drive_pass_slice, run_item_passes, run_item_passes_observed, run_slice_passes,
    run_slice_passes_observed, GuardStats, MultiPassAlgorithm, PassOrders, RunError, RunReport,
    Runner,
};
pub use shard::{run_sharded, run_sharded_hooked, ShardAlgorithm, ShardError, ShardPlan, ShardRun};
pub use trace::{ItemTrace, TraceError, ADJB_MAGIC, ADJB_VERSION};
pub use update::{
    run_update_batches, ChurnConfig, UpdateAlgorithm, UpdateBatchReport, UpdateEvent,
    UpdateParseError, UpdateRunReport, UpdateStream,
};
pub use update_fault::{
    CorruptedUpdateStream, InjectedUpdateFault, UpdateFaultKind, UpdateFaultPlan,
};
pub use update_guard::{run_guarded_updates, GuardedUpdate, UpdateGuardStats, UpdateViolation};
pub use update_trace::{
    is_adjbu, parse_update_bytes, read_updates, write_adjbu, UpdateTraceError, ADJBU_MAGIC,
    ADJBU_VERSION,
};
pub use validate::{validate_online, validate_stream, OnlineValidator, StreamError, ValidatorMode};

//! Generating adjacency list streams from static graphs.

use adjstream_graph::{Graph, VertexId};

use crate::item::StreamItem;
use crate::order::StreamOrder;

/// A replayable adjacency list stream: a graph plus a [`StreamOrder`].
///
/// Iterating yields [`StreamItem`]s satisfying the model's promise. The same
/// `AdjListStream` can be iterated repeatedly, producing byte-identical
/// passes — exactly what the Section 3 algorithm's "P2 has the same ordering
/// as P1" requirement needs.
pub struct AdjListStream<'g> {
    graph: &'g Graph,
    order: StreamOrder,
}

impl<'g> AdjListStream<'g> {
    /// Bind `graph` to `order`. Panics if `order` does not cover exactly the
    /// graph's vertex set.
    pub fn new(graph: &'g Graph, order: StreamOrder) -> Self {
        assert_eq!(
            order.lists().len(),
            graph.vertex_count(),
            "order must list every vertex exactly once"
        );
        debug_assert!({
            let mut seen = vec![false; graph.vertex_count()];
            order.lists().iter().all(|v| {
                let fresh = !seen[v.index()];
                seen[v.index()] = true;
                fresh
            })
        });
        AdjListStream { graph, order }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The layout.
    pub fn order(&self) -> &StreamOrder {
        &self.order
    }

    /// Total number of items in one pass (`2m`).
    pub fn len(&self) -> usize {
        2 * self.graph.edge_count()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.edge_count() == 0
    }

    /// Iterate one pass of items.
    pub fn items(&self) -> impl Iterator<Item = StreamItem> + '_ {
        self.order.lists().iter().flat_map(move |&v| {
            self.order
                .arrange_list(v, self.graph.neighbors(v))
                .into_iter()
                .map(move |w| StreamItem::new(v, w))
        })
    }

    /// Iterate one pass list-by-list: yields `(owner, neighbors-in-order)`
    /// for every **non-empty** adjacency list. Isolated vertices never
    /// appear in the stream, matching the model.
    pub fn lists(&self) -> impl Iterator<Item = (VertexId, Vec<VertexId>)> + '_ {
        self.order.lists().iter().filter_map(move |&v| {
            let nb = self.graph.neighbors(v);
            if nb.is_empty() {
                None
            } else {
                Some((v, self.order.arrange_list(v, nb)))
            }
        })
    }

    /// Collect the whole pass into a vector (tests and the communication
    /// simulator, which needs to slice streams between players).
    pub fn collect_items(&self) -> Vec<StreamItem> {
        self.items().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::GraphBuilder;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn triangle() -> Graph {
        GraphBuilder::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn natural_order_stream() {
        let g = triangle();
        let s = AdjListStream::new(&g, StreamOrder::natural(3));
        let items = s.collect_items();
        assert_eq!(items.len(), 6);
        assert_eq!(items[0], StreamItem::new(v(0), v(1)));
        assert_eq!(items[1], StreamItem::new(v(0), v(2)));
        assert_eq!(items[2], StreamItem::new(v(1), v(0)));
    }

    #[test]
    fn every_edge_appears_twice() {
        let g = triangle();
        for order in [
            StreamOrder::natural(3),
            StreamOrder::reversed(3),
            StreamOrder::shuffled(3, 4),
        ] {
            let s = AdjListStream::new(&g, order);
            let mut count = std::collections::HashMap::new();
            for it in s.items() {
                *count.entry(it.edge()).or_insert(0) += 1;
            }
            assert_eq!(count.len(), 3);
            assert!(count.values().all(|&c| c == 2));
        }
    }

    #[test]
    fn replay_is_identical() {
        let g = triangle();
        let s = AdjListStream::new(&g, StreamOrder::shuffled(3, 99));
        assert_eq!(s.collect_items(), s.collect_items());
    }

    #[test]
    fn isolated_vertices_are_invisible() {
        let g = GraphBuilder::from_edges(4, [(0, 1)]).unwrap();
        let s = AdjListStream::new(&g, StreamOrder::natural(4));
        assert_eq!(s.lists().count(), 2);
        assert_eq!(s.items().count(), 2);
    }

    #[test]
    #[should_panic(expected = "every vertex")]
    fn rejects_wrong_sized_order() {
        let g = triangle();
        AdjListStream::new(&g, StreamOrder::natural(5));
    }

    #[test]
    fn lists_match_items() {
        let g = triangle();
        let s = AdjListStream::new(&g, StreamOrder::shuffled(3, 5));
        let from_lists: Vec<StreamItem> = s
            .lists()
            .flat_map(|(owner, nbs)| {
                nbs.into_iter()
                    .map(move |w| StreamItem::new(owner, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(from_lists, s.collect_items());
    }
}

//! Validation of the adjacency-list promise.
//!
//! The model *promises* a particular stream shape; a production system must
//! reject malformed inputs rather than silently miscount on them. The
//! validator checks, for an arbitrary item sequence:
//!
//! 1. no self-loops,
//! 2. all items with the same source are contiguous (the adjacency-list
//!    promise),
//! 3. no neighbor repeats within one list (simple graph),
//! 4. each undirected edge appears exactly twice, once per direction.

use std::collections::HashMap;

use adjstream_graph::VertexId;

use crate::item::StreamItem;

/// Ways a purported adjacency list stream can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An item `vv`.
    SelfLoop {
        /// Offending vertex.
        vertex: VertexId,
        /// Item index in the stream.
        position: usize,
    },
    /// A source vertex's list resumed after other lists intervened.
    ListNotContiguous {
        /// The vertex whose list was split.
        vertex: VertexId,
        /// Item index where the list resumed.
        position: usize,
    },
    /// The same neighbor occurred twice in one list (multi-edge).
    DuplicateNeighbor {
        /// List owner.
        src: VertexId,
        /// Repeated neighbor.
        dst: VertexId,
        /// Item index of the repeat.
        position: usize,
    },
    /// At end of stream, edge `{u, v}` appeared in only one direction.
    MissingReverse {
        /// The direction that did appear.
        src: VertexId,
        /// Its neighbor.
        dst: VertexId,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::SelfLoop { vertex, position } => {
                write!(f, "self-loop at vertex {vertex} (item {position})")
            }
            StreamError::ListNotContiguous { vertex, position } => write!(
                f,
                "adjacency list of {vertex} is not contiguous (resumed at item {position})"
            ),
            StreamError::DuplicateNeighbor { src, dst, position } => write!(
                f,
                "neighbor {dst} repeated in list of {src} (item {position})"
            ),
            StreamError::MissingReverse { src, dst } => {
                write!(f, "edge {src}→{dst} never appeared as {dst}→{src}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Validate an item sequence against the adjacency-list promise.
///
/// Returns the number of undirected edges on success. This is an offline
/// checker (it stores the full edge set); it exists to certify test inputs
/// and to reject malformed streams in the examples, not to run inside
/// space-bounded algorithms.
pub fn validate_stream<I>(items: I) -> Result<usize, StreamError>
where
    I: IntoIterator<Item = StreamItem>,
{
    // Per directed pair: appearance count. Per source: whether its list is
    // finished.
    let mut directed: HashMap<(u32, u32), usize> = HashMap::new();
    let mut finished: HashMap<u32, ()> = HashMap::new();
    let mut current: Option<VertexId> = None;
    let mut current_seen: HashMap<u32, ()> = HashMap::new();
    for (position, it) in items.into_iter().enumerate() {
        if it.src == it.dst {
            return Err(StreamError::SelfLoop {
                vertex: it.src,
                position,
            });
        }
        if current != Some(it.src) {
            if let Some(prev) = current {
                finished.insert(prev.0, ());
            }
            if finished.contains_key(&it.src.0) {
                return Err(StreamError::ListNotContiguous {
                    vertex: it.src,
                    position,
                });
            }
            current = Some(it.src);
            current_seen.clear();
        }
        if current_seen.insert(it.dst.0, ()).is_some() {
            return Err(StreamError::DuplicateNeighbor {
                src: it.src,
                dst: it.dst,
                position,
            });
        }
        *directed.entry((it.src.0, it.dst.0)).or_insert(0) += 1;
    }
    // Symmetry: each direction exactly once. (Within-list duplicates were
    // already rejected, so counts are 0 or 1.)
    for (&(s, d), _) in directed.iter() {
        if !directed.contains_key(&(d, s)) {
            return Err(StreamError::MissingReverse {
                src: VertexId(s),
                dst: VertexId(d),
            });
        }
    }
    Ok(directed.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::order::StreamOrder;
    use adjstream_graph::gen;

    fn it(s: u32, d: u32) -> StreamItem {
        StreamItem::new(VertexId(s), VertexId(d))
    }

    #[test]
    fn accepts_generated_streams() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnm(30, 100, &mut rng);
        for order in [
            StreamOrder::natural(30),
            StreamOrder::reversed(30),
            StreamOrder::shuffled(30, 7),
        ] {
            let s = AdjListStream::new(&g, order);
            assert_eq!(validate_stream(s.items()), Ok(100));
        }
    }

    #[test]
    fn rejects_split_list() {
        // v0's list split by v1's list.
        let items = vec![it(0, 1), it(1, 0), it(1, 2), it(0, 2), it(2, 1), it(2, 0)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::ListNotContiguous {
                vertex: VertexId(0),
                position: 3
            })
        );
    }

    #[test]
    fn rejects_missing_reverse() {
        let items = vec![it(0, 1), it(1, 0), it(0, 2)];
        // 0's list is [1, 2] but contiguity: items are 0,1,0 -> split!
        // Use a properly ordered version instead.
        let items2 = vec![it(0, 1), it(0, 2), it(1, 0)];
        assert!(matches!(
            validate_stream(items2),
            Err(StreamError::MissingReverse { .. })
        ));
        let _ = items;
    }

    #[test]
    fn rejects_self_loop() {
        let items = vec![it(0, 0)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::SelfLoop {
                vertex: VertexId(0),
                position: 0
            })
        );
    }

    #[test]
    fn rejects_duplicate_neighbor() {
        let items = vec![it(0, 1), it(0, 1)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::DuplicateNeighbor {
                src: VertexId(0),
                dst: VertexId(1),
                position: 1
            })
        );
    }

    #[test]
    fn empty_stream_is_valid() {
        assert_eq!(validate_stream(Vec::new()), Ok(0));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = StreamError::MissingReverse {
            src: VertexId(3),
            dst: VertexId(8),
        };
        assert!(e.to_string().contains("3→8"));
    }
}

//! Validation of the adjacency-list promise.
//!
//! The model *promises* a particular stream shape; a production system must
//! reject malformed inputs rather than silently miscount on them. Two
//! checkers enforce that promise:
//!
//! * [`validate_stream`] — the offline reference: buffers per-edge state for
//!   the whole stream and reports the first violation. Used to certify test
//!   inputs and as the ground truth the online checker is tested against.
//! * [`OnlineValidator`] — the incremental checker that runs *inside*
//!   ingestion (see [`crate::guard::Guarded`]): items are fed one at a time,
//!   each either accepted or rejected with a [`StreamError`], and the
//!   validator's own state is metered through [`SpaceUsage`] so experiments
//!   can account for its overhead. [Exact mode](OnlineValidator::exact)
//!   matches the offline checker decision-for-decision;
//!   [bounded mode](OnlineValidator::bounded) keeps only open-list state, a
//!   recent-list window, and a seeded edge-parity sketch, trading split-list
//!   completeness for `O(Δ + window)` memory.
//!
//! The checked promise, for an arbitrary item sequence:
//!
//! 1. no self-loops,
//! 2. all items with the same source are contiguous (the adjacency-list
//!    promise),
//! 3. no neighbor repeats within one list (simple graph),
//! 4. each undirected edge appears exactly twice, once per direction.

use std::collections::{HashMap, HashSet, VecDeque};

use adjstream_graph::VertexId;

use crate::hashing::{FastMap, FastSet, HashFn};
use crate::item::StreamItem;
use crate::meter::{hashmap_bytes, hashset_bytes, SpaceUsage};

/// Ways a purported adjacency list stream can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An item `vv`.
    SelfLoop {
        /// Offending vertex.
        vertex: VertexId,
        /// Item index in the stream.
        position: usize,
    },
    /// A source vertex's list resumed after other lists intervened.
    ListNotContiguous {
        /// The vertex whose list was split.
        vertex: VertexId,
        /// Item index where the list resumed.
        position: usize,
    },
    /// The same neighbor occurred twice in one list (multi-edge).
    DuplicateNeighbor {
        /// List owner.
        src: VertexId,
        /// Repeated neighbor.
        dst: VertexId,
        /// Item index of the repeat.
        position: usize,
    },
    /// At end of stream, edge `{u, v}` appeared in only one direction.
    MissingReverse {
        /// The direction that did appear.
        src: VertexId,
        /// Its neighbor.
        dst: VertexId,
    },
    /// At end of stream, the bounded validator's edge-parity sketch was
    /// non-zero but could not be attributed to a single edge: two or more
    /// directed items lack their reverse.
    UnbalancedEdges {
        /// The sketch residue (nonzero XOR of unmatched edge hashes).
        parity: u64,
    },
    /// A later pass replayed a different list order than pass 1 even though
    /// the algorithm declared [`requires_same_order`]. Reported by the
    /// guarded runner, not by single-pass validation.
    ///
    /// [`requires_same_order`]: crate::runner::MultiPassAlgorithm::requires_same_order
    PassOrderChanged {
        /// The 0-based pass whose order diverged from pass 1's.
        pass: usize,
        /// Index of the first diverging adjacency list, when known
        /// (`usize::MAX` when only the end-of-pass fingerprint differs).
        list_index: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::SelfLoop { vertex, position } => {
                write!(f, "self-loop at vertex {vertex} (item {position})")
            }
            StreamError::ListNotContiguous { vertex, position } => write!(
                f,
                "adjacency list of {vertex} is not contiguous (resumed at item {position})"
            ),
            StreamError::DuplicateNeighbor { src, dst, position } => write!(
                f,
                "neighbor {dst} repeated in list of {src} (item {position})"
            ),
            StreamError::MissingReverse { src, dst } => {
                write!(f, "edge {src}→{dst} never appeared as {dst}→{src}")
            }
            StreamError::UnbalancedEdges { parity } => write!(
                f,
                "edge-parity sketch nonzero ({parity:#x}): two or more directed items lack their reverse"
            ),
            StreamError::PassOrderChanged { pass, list_index } => {
                if *list_index == usize::MAX {
                    write!(f, "pass {} replayed a different list order than pass 1", pass + 1)
                } else {
                    write!(
                        f,
                        "pass {} replayed a different list order than pass 1 (first divergence at list {list_index})",
                        pass + 1
                    )
                }
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl StreamError {
    /// The item index the error was detected at, for errors tied to one
    /// item. End-of-stream errors ([`StreamError::MissingReverse`],
    /// [`StreamError::UnbalancedEdges`]) have no single item and return
    /// `None`.
    pub fn position(&self) -> Option<usize> {
        match self {
            StreamError::SelfLoop { position, .. }
            | StreamError::ListNotContiguous { position, .. }
            | StreamError::DuplicateNeighbor { position, .. } => Some(*position),
            StreamError::MissingReverse { .. }
            | StreamError::UnbalancedEdges { .. }
            | StreamError::PassOrderChanged { .. } => None,
        }
    }
}

/// Pack the canonical (unordered) form of `{a, b}` into a `u64`.
#[inline]
pub(crate) fn pack_edge(a: VertexId, b: VertexId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// Validate an item sequence against the adjacency-list promise.
///
/// Returns the number of undirected edges on success. This is the offline
/// reference checker (it stores the full edge set); it certifies test inputs
/// and serves as the ground truth for [`OnlineValidator`]'s exact mode,
/// which must agree with it decision-for-decision.
pub fn validate_stream<I>(items: I) -> Result<usize, StreamError>
where
    I: IntoIterator<Item = StreamItem>,
{
    // Per directed pair: index of first appearance. Per source: whether its
    // list is finished.
    let mut directed: HashMap<(u32, u32), usize> = HashMap::new();
    let mut finished: HashSet<u32> = HashSet::new();
    let mut current: Option<VertexId> = None;
    let mut current_seen: HashSet<u32> = HashSet::new();
    for (position, it) in items.into_iter().enumerate() {
        if it.src == it.dst {
            return Err(StreamError::SelfLoop {
                vertex: it.src,
                position,
            });
        }
        if current != Some(it.src) {
            if let Some(prev) = current {
                finished.insert(prev.0);
            }
            if finished.contains(&it.src.0) {
                return Err(StreamError::ListNotContiguous {
                    vertex: it.src,
                    position,
                });
            }
            current = Some(it.src);
            current_seen.clear();
        }
        if !current_seen.insert(it.dst.0) {
            return Err(StreamError::DuplicateNeighbor {
                src: it.src,
                dst: it.dst,
                position,
            });
        }
        directed.entry((it.src.0, it.dst.0)).or_insert(position);
    }
    // Symmetry: each direction exactly once. (Within-list duplicates were
    // already rejected, so counts are 0 or 1.) Report the unmatched
    // direction that appeared *earliest* so the result is deterministic.
    let mut earliest: Option<(usize, (u32, u32))> = None;
    for (&(s, d), &pos) in directed.iter() {
        if !directed.contains_key(&(d, s)) && earliest.is_none_or(|(p, _)| pos < p) {
            earliest = Some((pos, (s, d)));
        }
    }
    if let Some((_, (s, d))) = earliest {
        return Err(StreamError::MissingReverse {
            src: VertexId(s),
            dst: VertexId(d),
        });
    }
    Ok(directed.len() / 2)
}

/// Which bookkeeping strategy an [`OnlineValidator`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidatorMode {
    /// Full per-vertex and per-edge state: every violation the offline
    /// checker finds is found here, at the same item, with the same
    /// payload. Memory `O(n + m)`.
    Exact,
    /// Open-list state plus a window of recently finished lists plus a
    /// seeded edge-parity sketch. Memory `O(Δ + window)`. Detects
    /// self-loops and duplicate neighbors exactly, split lists only when
    /// the list resumes within `window` closed lists, and missing reverse
    /// edges with probability `1 - 2^{-64}` via the sketch (attributing
    /// the edge exactly when a single direction is unmatched).
    Bounded {
        /// Seed of the sketch hash function.
        seed: u64,
        /// How many recently closed lists are remembered for split
        /// detection.
        window: usize,
    },
}

/// Incremental checker of the adjacency-list promise.
///
/// Feed every stream item to [`observe`](Self::observe); each call either
/// accepts the item (committing it to the validator's state) or rejects it
/// with the violation. Rejected items are **not** committed, so a caller
/// that drops them (repair mode) leaves the validator consistent with the
/// repaired stream. After the last item, [`finish`](Self::finish) runs the
/// end-of-stream reverse-edge check.
#[derive(Debug, Clone)]
pub struct OnlineValidator {
    mode: ValidatorMode,
    position: usize,
    current: Option<VertexId>,
    current_seen: FastSet<u32>,
    // Exact mode.
    finished: FastSet<u32>,
    /// Canonical edge → (direction seen first, first position); removed when
    /// matched by the reverse direction.
    pending: FastMap<u64, (u32, u32, usize)>,
    matched: usize,
    // Bounded mode.
    recent: VecDeque<u32>,
    recent_set: FastSet<u32>,
    sketch_hash: u64,
    sketch_key: u64,
    sketch_items: usize,
    hasher: HashFn,
}

impl OnlineValidator {
    /// An exact validator, agreeing with [`validate_stream`]
    /// decision-for-decision. Memory `O(n + m)`.
    pub fn exact() -> Self {
        Self::with_mode(ValidatorMode::Exact)
    }

    /// A bounded-memory validator; see [`ValidatorMode::Bounded`].
    pub fn bounded(seed: u64, window: usize) -> Self {
        Self::with_mode(ValidatorMode::Bounded { seed, window })
    }

    /// Build for an explicit mode.
    pub fn with_mode(mode: ValidatorMode) -> Self {
        let seed = match mode {
            ValidatorMode::Bounded { seed, .. } => seed,
            ValidatorMode::Exact => 0,
        };
        OnlineValidator {
            mode,
            position: 0,
            current: None,
            current_seen: FastSet::default(),
            finished: FastSet::default(),
            pending: FastMap::default(),
            matched: 0,
            recent: VecDeque::new(),
            recent_set: FastSet::default(),
            sketch_hash: 0,
            sketch_key: 0,
            sketch_items: 0,
            hasher: HashFn::from_seed(seed, 0x7A11_DA7E),
        }
    }

    /// The mode this validator runs in.
    pub fn mode(&self) -> ValidatorMode {
        self.mode
    }

    /// Index the next observed item will occupy.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Forget everything; ready to validate a fresh pass.
    pub fn reset(&mut self) {
        let mode = self.mode;
        *self = Self::with_mode(mode);
    }

    /// Record that one stream position was consumed without being shown to
    /// the validator (a repaired/suppressed item), keeping subsequently
    /// reported positions aligned with the raw stream.
    pub fn note_suppressed(&mut self) {
        self.position += 1;
    }

    /// Check `item` and, if it honors the promise so far, commit it.
    ///
    /// On `Err` the item is **not** committed: the validator's state is
    /// exactly as if the item had never arrived (its stream position is
    /// still consumed).
    pub fn observe(&mut self, item: StreamItem) -> Result<(), StreamError> {
        let position = self.position;
        self.position += 1;
        if item.src == item.dst {
            return Err(StreamError::SelfLoop {
                vertex: item.src,
                position,
            });
        }
        let boundary = self.current != Some(item.src);
        if boundary {
            let closed = self.current;
            // Check *before* committing the list close, so a rejected item
            // leaves even the boundary state untouched? No: the previous
            // list genuinely ended the moment a different source arrived,
            // whether or not the new item survives. Commit the close first.
            if let Some(prev) = closed {
                self.close_list(prev);
            }
            let split = match self.mode {
                ValidatorMode::Exact => self.finished.contains(&item.src.0),
                ValidatorMode::Bounded { .. } => self.recent_set.contains(&item.src.0),
            };
            if split {
                // The offending list stays closed; current remains None so
                // a following item of the same source re-reports (callers
                // quarantine the segment instead, see `guard`).
                self.current = None;
                self.current_seen.clear();
                return Err(StreamError::ListNotContiguous {
                    vertex: item.src,
                    position,
                });
            }
            self.current = Some(item.src);
            self.current_seen.clear();
        }
        if self.current_seen.contains(&item.dst.0) {
            return Err(StreamError::DuplicateNeighbor {
                src: item.src,
                dst: item.dst,
                position,
            });
        }
        self.current_seen.insert(item.dst.0);
        let key = pack_edge(item.src, item.dst);
        match self.mode {
            ValidatorMode::Exact => match self.pending.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    // The reverse direction was pending (the same direction
                    // can only repeat after a split/duplicate error, which
                    // never commits).
                    e.remove();
                    self.matched += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((item.src.0, item.dst.0, position));
                }
            },
            ValidatorMode::Bounded { .. } => {
                self.sketch_hash ^= self.hasher.hash(key);
                self.sketch_key ^= key;
                self.sketch_items += 1;
            }
        }
        Ok(())
    }

    fn close_list(&mut self, owner: VertexId) {
        match self.mode {
            ValidatorMode::Exact => {
                self.finished.insert(owner.0);
            }
            ValidatorMode::Bounded { window, .. } => {
                if window > 0 {
                    if self.recent.len() == window {
                        if let Some(old) = self.recent.pop_front() {
                            self.recent_set.remove(&old);
                        }
                    }
                    self.recent.push_back(owner.0);
                    self.recent_set.insert(owner.0);
                }
            }
        }
    }

    /// End-of-stream check. Returns the number of undirected edges on
    /// success (exact mode counts matches; bounded mode derives it from the
    /// accepted item count).
    pub fn finish(&self) -> Result<usize, StreamError> {
        match self.mode {
            ValidatorMode::Exact => {
                let mut earliest: Option<&(u32, u32, usize)> = None;
                for v in self.pending.values() {
                    if earliest.is_none_or(|e| v.2 < e.2) {
                        earliest = Some(v);
                    }
                }
                match earliest {
                    Some(&(s, d, _)) => Err(StreamError::MissingReverse {
                        src: VertexId(s),
                        dst: VertexId(d),
                    }),
                    None => Ok(self.matched),
                }
            }
            ValidatorMode::Bounded { .. } => {
                if self.sketch_hash == 0 {
                    Ok(self.sketch_items / 2)
                } else if self.sketch_key != 0
                    && self.hasher.hash(self.sketch_key) == self.sketch_hash
                {
                    // Exactly one unmatched direction: the key XOR is that
                    // edge itself (verified against the hash XOR).
                    Err(StreamError::MissingReverse {
                        src: VertexId((self.sketch_key >> 32) as u32),
                        dst: VertexId(self.sketch_key as u32),
                    })
                } else {
                    Err(StreamError::UnbalancedEdges {
                        parity: self.sketch_hash,
                    })
                }
            }
        }
    }

    /// Every edge still missing its reverse direction (exact mode), as
    /// `(src, dst)` of the direction that appeared, ordered by first
    /// appearance. Empty in bounded mode — the sketch cannot enumerate.
    pub fn unmatched_edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut v: Vec<&(u32, u32, usize)> = self.pending.values().collect();
        v.sort_by_key(|e| e.2);
        v.into_iter()
            .map(|&(s, d, _)| (VertexId(s), VertexId(d)))
            .collect()
    }
}

impl SpaceUsage for OnlineValidator {
    fn space_bytes(&self) -> usize {
        hashset_bytes(&self.current_seen)
            + hashset_bytes(&self.finished)
            + hashmap_bytes(&self.pending)
            + hashset_bytes(&self.recent_set)
            + self.recent.capacity() * std::mem::size_of::<u32>()
            + 64 // sketch words, cursors, hasher keys
    }
}

/// Drive a full item sequence through an [`OnlineValidator`] (observe every
/// item, then finish). Stops at the first violation.
pub fn validate_online<I>(validator: &mut OnlineValidator, items: I) -> Result<usize, StreamError>
where
    I: IntoIterator<Item = StreamItem>,
{
    for it in items {
        validator.observe(it)?;
    }
    validator.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::order::StreamOrder;
    use adjstream_graph::gen;

    fn it(s: u32, d: u32) -> StreamItem {
        StreamItem::new(VertexId(s), VertexId(d))
    }

    #[test]
    fn accepts_generated_streams() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnm(30, 100, &mut rng);
        for order in [
            StreamOrder::natural(30),
            StreamOrder::reversed(30),
            StreamOrder::shuffled(30, 7),
        ] {
            let s = AdjListStream::new(&g, order);
            assert_eq!(validate_stream(s.items()), Ok(100));
        }
    }

    #[test]
    fn rejects_split_list() {
        // v0's list split by v1's list.
        let items = vec![it(0, 1), it(1, 0), it(1, 2), it(0, 2), it(2, 1), it(2, 0)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::ListNotContiguous {
                vertex: VertexId(0),
                position: 3
            })
        );
    }

    #[test]
    fn rejects_missing_reverse() {
        let items = vec![it(0, 1), it(1, 0), it(0, 2)];
        // 0's list is [1, 2] but contiguity: items are 0,1,0 -> split!
        // Use a properly ordered version instead.
        let items2 = vec![it(0, 1), it(0, 2), it(1, 0)];
        assert_eq!(
            validate_stream(items2),
            Err(StreamError::MissingReverse {
                src: VertexId(0),
                dst: VertexId(2)
            })
        );
        let _ = items;
    }

    #[test]
    fn rejects_self_loop() {
        let items = vec![it(0, 0)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::SelfLoop {
                vertex: VertexId(0),
                position: 0
            })
        );
    }

    #[test]
    fn rejects_duplicate_neighbor() {
        let items = vec![it(0, 1), it(0, 1)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::DuplicateNeighbor {
                src: VertexId(0),
                dst: VertexId(1),
                position: 1
            })
        );
    }

    #[test]
    fn empty_stream_is_valid() {
        assert_eq!(validate_stream(Vec::new()), Ok(0));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = StreamError::MissingReverse {
            src: VertexId(3),
            dst: VertexId(8),
        };
        assert!(e.to_string().contains("3→8"));
    }

    #[test]
    fn missing_reverse_reports_earliest_unmatched_direction() {
        // Lists: 0: [1, 2, 3]; 1: [0]; but 2 and 3 never reciprocate.
        // Earliest unmatched direction is 0→2 (position 1).
        let items = vec![it(0, 1), it(0, 2), it(0, 3), it(1, 0)];
        assert_eq!(
            validate_stream(items),
            Err(StreamError::MissingReverse {
                src: VertexId(0),
                dst: VertexId(2)
            })
        );
    }

    // ---- OnlineValidator: exact mode ----

    fn online_exact<I: IntoIterator<Item = StreamItem>>(items: I) -> Result<usize, StreamError> {
        let mut v = OnlineValidator::exact();
        validate_online(&mut v, items)
    }

    #[test]
    fn exact_mode_accepts_generated_streams_and_counts_edges() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(40, 150, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(40, 11));
        assert_eq!(online_exact(s.items()), Ok(150));
    }

    #[test]
    fn exact_mode_matches_offline_on_malformed_streams() {
        let cases: Vec<Vec<StreamItem>> = vec![
            vec![it(0, 0)],
            vec![it(0, 1), it(0, 1)],
            vec![it(0, 1), it(1, 0), it(1, 2), it(0, 2), it(2, 1), it(2, 0)],
            vec![it(0, 1), it(0, 2), it(1, 0)],
            vec![it(0, 1), it(0, 2), it(0, 3), it(1, 0)],
            vec![],
            vec![it(5, 6), it(6, 5)],
        ];
        for items in cases {
            assert_eq!(
                online_exact(items.iter().copied()),
                validate_stream(items.iter().copied()),
                "items {items:?}"
            );
        }
    }

    #[test]
    fn rejected_items_are_not_committed() {
        let mut v = OnlineValidator::exact();
        v.observe(it(0, 1)).unwrap();
        // Duplicate rejected...
        assert!(v.observe(it(0, 1)).is_err());
        // ...so the edge is still just singly-pending, and a later reverse
        // match still succeeds.
        v.observe(it(1, 0)).unwrap();
        assert_eq!(v.finish(), Ok(1));
        assert_eq!(v.position(), 3);
    }

    #[test]
    fn unmatched_edges_enumerates_in_first_appearance_order() {
        let mut v = OnlineValidator::exact();
        for i in [it(0, 1), it(0, 2), it(1, 0), it(2, 3)] {
            v.observe(i).unwrap();
        }
        assert_eq!(
            v.unmatched_edges(),
            vec![(VertexId(0), VertexId(2)), (VertexId(2), VertexId(3))]
        );
    }

    // ---- OnlineValidator: bounded mode ----

    #[test]
    fn bounded_mode_accepts_valid_streams() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let g = gen::gnm(40, 150, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(40, 12));
        let mut v = OnlineValidator::bounded(99, 8);
        assert_eq!(validate_online(&mut v, s.items()), Ok(150));
    }

    #[test]
    fn bounded_mode_detects_single_missing_reverse_with_attribution() {
        // 0: [1, 2]; 1: [0]; 2 never reciprocates.
        let items = vec![it(0, 1), it(0, 2), it(1, 0)];
        let mut v = OnlineValidator::bounded(7, 4);
        assert_eq!(
            validate_online(&mut v, items),
            Err(StreamError::MissingReverse {
                src: VertexId(0),
                dst: VertexId(2)
            })
        );
    }

    #[test]
    fn bounded_mode_flags_multiple_unmatched_as_parity() {
        let items = vec![it(0, 1), it(0, 2), it(0, 3), it(1, 0)];
        let mut v = OnlineValidator::bounded(7, 4);
        assert!(matches!(
            validate_online(&mut v, items),
            Err(StreamError::UnbalancedEdges { .. })
        ));
    }

    #[test]
    fn bounded_mode_detects_splits_within_window() {
        let items = vec![it(0, 1), it(1, 0), it(1, 2), it(0, 2), it(2, 1), it(2, 0)];
        let mut v = OnlineValidator::bounded(3, 4);
        assert_eq!(
            validate_online(&mut v, items.iter().copied()),
            Err(StreamError::ListNotContiguous {
                vertex: VertexId(0),
                position: 3
            })
        );
        // Window 0 remembers nothing: the split escapes the contiguity
        // check (and here the duplicated {0,2} content happens to cancel in
        // the parity sketch two different ways — the stream is edge-balanced).
        let mut v0 = OnlineValidator::bounded(3, 0);
        assert_eq!(validate_online(&mut v0, items), Ok(3));
    }

    #[test]
    fn bounded_mode_space_stays_small() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::gnm(400, 3000, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(400, 13));
        let mut exact = OnlineValidator::exact();
        let mut bounded = OnlineValidator::bounded(1, 16);
        let mut exact_peak = 0;
        let mut bounded_peak = 0;
        for item in s.items() {
            exact.observe(item).unwrap();
            bounded.observe(item).unwrap();
            exact_peak = exact_peak.max(exact.space_bytes());
            bounded_peak = bounded_peak.max(bounded.space_bytes());
        }
        assert_eq!(exact.finish(), Ok(3000));
        assert_eq!(bounded.finish(), Ok(3000));
        assert!(
            bounded_peak * 4 < exact_peak,
            "bounded {bounded_peak} vs exact {exact_peak}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut v = OnlineValidator::exact();
        v.observe(it(0, 1)).unwrap();
        assert!(v.finish().is_err());
        v.reset();
        assert_eq!(v.position(), 0);
        assert_eq!(v.finish(), Ok(0));
    }
}

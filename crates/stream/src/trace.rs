//! Item traces: run algorithms on externally supplied streams.
//!
//! Everything else in this crate generates streams from in-memory graphs;
//! a *trace* is the reverse direction — a raw sequence of `src dst` items
//! (e.g. produced by another system, or the CLI's `stream` command) that is
//! validated against the adjacency-list promise and then driven through any
//! [`MultiPassAlgorithm`]. Multi-pass algorithms replay the same trace per
//! pass, which is exactly the model's "same ordering" semantics.
//!
//! Traces built by [`ItemTrace::new`]/[`ItemTrace::read`] are certified
//! valid up front. [`ItemTrace::new_unchecked`] skips certification so that
//! corrupted streams (from [`crate::fault::FaultPlan`] or hostile inputs)
//! can be driven through a [`crate::guard::Guarded`] algorithm via
//! [`ItemTrace::try_run`], which degrades to a typed [`RunError`] instead
//! of panicking.

use std::io::{BufRead, BufReader, Read};

use adjstream_graph::VertexId;

use crate::item::StreamItem;
use crate::runner::{run_item_passes, MultiPassAlgorithm, RunError, RunReport};
use crate::validate::{validate_stream, StreamError};

/// A replayable item trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemTrace {
    items: Vec<StreamItem>,
    edges: usize,
}

/// Errors loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Line that is not `src dst`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// The items violate the adjacency-list promise.
    Invalid(StreamError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Malformed { line } => write!(f, "malformed trace at line {line}"),
            TraceError::Invalid(e) => write!(f, "invalid stream: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ItemTrace {
    /// Build from items, validating the promise.
    pub fn new(items: Vec<StreamItem>) -> Result<Self, StreamError> {
        let edges = validate_stream(items.iter().copied())?;
        Ok(ItemTrace { items, edges })
    }

    /// Build from items **without** validating the promise.
    ///
    /// For deliberately malformed streams (fault-injection tests, untrusted
    /// inputs) that will be driven through a [`crate::guard::Guarded`]
    /// algorithm. [`edges`](Self::edges) reports `items / 2`, which is only
    /// an upper bound when the promise is broken.
    pub fn new_unchecked(items: Vec<StreamItem>) -> Self {
        let edges = items.len() / 2;
        ItemTrace { items, edges }
    }

    /// Parse a whitespace `src dst` per line trace (`#` comments allowed)
    /// and validate it. CRLF line endings are accepted; lines with extra
    /// tokens or vertex ids that do not fit in `u32` are rejected as
    /// [`TraceError::Malformed`].
    pub fn read<R: Read>(reader: R) -> Result<Self, TraceError> {
        let items = Self::parse_items(reader)?;
        Self::new(items).map_err(TraceError::Invalid)
    }

    /// Parse like [`ItemTrace::read`] but skip promise validation, for
    /// streams that are expected to be malformed.
    pub fn read_unchecked<R: Read>(reader: R) -> Result<Self, TraceError> {
        Ok(Self::new_unchecked(Self::parse_items(reader)?))
    }

    fn parse_items<R: Read>(reader: R) -> Result<Vec<StreamItem>, TraceError> {
        let mut items = Vec::new();
        let buf = BufReader::new(reader);
        for (lineno, line) in buf.lines().enumerate() {
            let line = line.map_err(TraceError::Io)?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.split_whitespace();
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(TraceError::Malformed { line: lineno + 1 });
            };
            let (Ok(a), Ok(b)) = (a.parse::<u32>(), b.parse::<u32>()) else {
                return Err(TraceError::Malformed { line: lineno + 1 });
            };
            items.push(StreamItem::new(VertexId(a), VertexId(b)));
        }
        Ok(items)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// The items.
    pub fn items(&self) -> &[StreamItem] {
        &self.items
    }

    /// Drive a multi-pass algorithm over the trace, replaying it for each
    /// pass, reporting failures as typed [`RunError`]s instead of panicking.
    pub fn try_run<A: MultiPassAlgorithm>(
        &self,
        algo: A,
    ) -> Result<(A::Output, RunReport), RunError> {
        run_item_passes(algo, |_pass| self.items.iter().copied())
    }

    /// Drive a multi-pass algorithm over the trace, replaying it for each
    /// pass and reporting peak state, exactly like
    /// [`crate::runner::Runner::run`] does for generated streams.
    pub fn run<A: MultiPassAlgorithm>(&self, algo: A) -> (A::Output, RunReport) {
        self.try_run(algo)
            .unwrap_or_else(|e| panic!("stream validation failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::order::StreamOrder;
    use adjstream_graph::gen;

    #[test]
    fn trace_roundtrips_generated_stream() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnm(25, 90, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(25, 4));
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        assert_eq!(trace.edges(), 90);
        assert_eq!(trace.len(), 180);
    }

    #[test]
    fn rejects_invalid_traces() {
        let items = vec![
            StreamItem::new(VertexId(0), VertexId(1)),
            StreamItem::new(VertexId(0), VertexId(2)),
        ];
        assert!(matches!(
            ItemTrace::new(items),
            Err(StreamError::MissingReverse { .. })
        ));
    }

    #[test]
    fn parses_text_form() {
        let text = "# comment\n0 1\n0 2\n1 0\n2 0\n";
        let trace = ItemTrace::read(text.as_bytes()).unwrap();
        assert_eq!(trace.edges(), 2);
        let bad = ItemTrace::read("0 x\n".as_bytes());
        assert!(matches!(bad, Err(TraceError::Malformed { line: 1 })));
    }

    #[test]
    fn parses_crlf_line_endings() {
        let text = "# comment\r\n0 1\r\n1 0\r\n";
        let trace = ItemTrace::read(text.as_bytes()).unwrap();
        assert_eq!(trace.edges(), 1);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn rejects_vertex_ids_overflowing_u32() {
        let text = "0 4294967296\n"; // u32::MAX + 1
        assert!(matches!(
            ItemTrace::read(text.as_bytes()),
            Err(TraceError::Malformed { line: 1 })
        ));
        // u32::MAX itself is in range (parse succeeds; the lone item then
        // fails stream validation, not parsing).
        let edge = "0 4294967295\n4294967295 0\n";
        assert_eq!(ItemTrace::read(edge.as_bytes()).unwrap().edges(), 1);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(matches!(
            ItemTrace::read("0 1 junk\n1 0\n".as_bytes()),
            Err(TraceError::Malformed { line: 1 })
        ));
        assert!(matches!(
            ItemTrace::read("0 1\n1 0 0\n".as_bytes()),
            Err(TraceError::Malformed { line: 2 })
        ));
    }

    #[test]
    fn unchecked_constructors_accept_malformed_streams() {
        let t = ItemTrace::read_unchecked("0 1\n0 1\n0 0\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        let t2 = ItemTrace::new_unchecked(vec![StreamItem::new(VertexId(0), VertexId(0))]);
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn runs_algorithms_identically_to_the_runner() {
        use crate::runner::{PassOrders, Runner};
        use crate::SpaceUsage;
        struct ListCounter {
            lists: usize,
            items: usize,
        }
        impl SpaceUsage for ListCounter {
            fn space_bytes(&self) -> usize {
                16
            }
        }
        impl MultiPassAlgorithm for ListCounter {
            type Output = (usize, usize);
            fn passes(&self) -> usize {
                2
            }
            fn begin_pass(&mut self, _p: usize) {}
            fn begin_list(&mut self, _o: VertexId) {
                self.lists += 1;
            }
            fn item(&mut self, _s: VertexId, _d: VertexId) {
                self.items += 1;
            }
            fn finish(self) -> (usize, usize) {
                (self.lists, self.items)
            }
        }
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(20, 60, &mut rng);
        let order = StreamOrder::shuffled(20, 7);
        let s = AdjListStream::new(&g, order.clone());
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        let (from_trace, rep_t) = trace.run(ListCounter { lists: 0, items: 0 });
        let (from_runner, rep_r) = Runner::run(
            &g,
            ListCounter { lists: 0, items: 0 },
            &PassOrders::Same(order),
        );
        assert_eq!(from_trace, from_runner);
        assert_eq!(rep_t.items_processed, rep_r.items_processed);
        assert_eq!(rep_t.peak_state_bytes, rep_r.peak_state_bytes);
    }
}

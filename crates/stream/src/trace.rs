//! Item traces: run algorithms on externally supplied streams.
//!
//! Everything else in this crate generates streams from in-memory graphs;
//! a *trace* is the reverse direction — a raw sequence of `src dst` items
//! (e.g. produced by another system, or the CLI's `stream` command) that is
//! validated against the adjacency-list promise and then driven through any
//! [`MultiPassAlgorithm`]. Multi-pass algorithms replay the same trace per
//! pass, which is exactly the model's "same ordering" semantics.

use std::io::{BufRead, BufReader, Read};

use adjstream_graph::VertexId;

use crate::item::StreamItem;
use crate::meter::PeakTracker;
use crate::runner::{MultiPassAlgorithm, RunReport};
use crate::validate::{validate_stream, StreamError};

/// A validated, replayable item trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemTrace {
    items: Vec<StreamItem>,
    edges: usize,
}

/// Errors loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Line that is not `src dst`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// The items violate the adjacency-list promise.
    Invalid(StreamError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Malformed { line } => write!(f, "malformed trace at line {line}"),
            TraceError::Invalid(e) => write!(f, "invalid stream: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ItemTrace {
    /// Build from items, validating the promise.
    pub fn new(items: Vec<StreamItem>) -> Result<Self, StreamError> {
        let edges = validate_stream(items.iter().copied())?;
        Ok(ItemTrace { items, edges })
    }

    /// Parse a whitespace `src dst` per line trace (`#` comments allowed)
    /// and validate it.
    pub fn read<R: Read>(reader: R) -> Result<Self, TraceError> {
        let mut items = Vec::new();
        let buf = BufReader::new(reader);
        for (lineno, line) in buf.lines().enumerate() {
            let line = line.map_err(TraceError::Io)?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.split_whitespace();
            let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                return Err(TraceError::Malformed { line: lineno + 1 });
            };
            let (Ok(a), Ok(b)) = (a.parse::<u32>(), b.parse::<u32>()) else {
                return Err(TraceError::Malformed { line: lineno + 1 });
            };
            items.push(StreamItem::new(VertexId(a), VertexId(b)));
        }
        Self::new(items).map_err(TraceError::Invalid)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// The items.
    pub fn items(&self) -> &[StreamItem] {
        &self.items
    }

    /// Drive a multi-pass algorithm over the trace, replaying it for each
    /// pass and reporting peak state, exactly like
    /// [`crate::runner::Runner::run`] does for generated streams.
    pub fn run<A: MultiPassAlgorithm>(&self, mut algo: A) -> (A::Output, RunReport) {
        let mut peak = PeakTracker::new();
        let mut processed = 0usize;
        let passes = algo.passes();
        for pass in 0..passes {
            algo.begin_pass(pass);
            let mut current: Option<VertexId> = None;
            for &item in &self.items {
                if current != Some(item.src) {
                    if let Some(prev) = current {
                        algo.end_list(prev);
                        peak.observe(algo.space_bytes());
                    }
                    algo.begin_list(item.src);
                    current = Some(item.src);
                }
                algo.item(item.src, item.dst);
                processed += 1;
            }
            if let Some(prev) = current {
                algo.end_list(prev);
            }
            algo.end_pass(pass);
            peak.observe(algo.space_bytes());
        }
        (
            algo.finish(),
            RunReport {
                peak_state_bytes: peak.peak(),
                items_processed: processed,
                passes,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::order::StreamOrder;
    use adjstream_graph::gen;

    #[test]
    fn trace_roundtrips_generated_stream() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnm(25, 90, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(25, 4));
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        assert_eq!(trace.edges(), 90);
        assert_eq!(trace.len(), 180);
    }

    #[test]
    fn rejects_invalid_traces() {
        let items = vec![
            StreamItem::new(VertexId(0), VertexId(1)),
            StreamItem::new(VertexId(0), VertexId(2)),
        ];
        assert!(matches!(
            ItemTrace::new(items),
            Err(StreamError::MissingReverse { .. })
        ));
    }

    #[test]
    fn parses_text_form() {
        let text = "# comment\n0 1\n0 2\n1 0\n2 0\n";
        let trace = ItemTrace::read(text.as_bytes()).unwrap();
        assert_eq!(trace.edges(), 2);
        let bad = ItemTrace::read("0 x\n".as_bytes());
        assert!(matches!(bad, Err(TraceError::Malformed { line: 1 })));
    }

    #[test]
    fn runs_algorithms_identically_to_the_runner() {
        use crate::runner::{PassOrders, Runner};
        use crate::SpaceUsage;
        struct ListCounter {
            lists: usize,
            items: usize,
        }
        impl SpaceUsage for ListCounter {
            fn space_bytes(&self) -> usize {
                16
            }
        }
        impl MultiPassAlgorithm for ListCounter {
            type Output = (usize, usize);
            fn passes(&self) -> usize {
                2
            }
            fn begin_pass(&mut self, _p: usize) {}
            fn begin_list(&mut self, _o: VertexId) {
                self.lists += 1;
            }
            fn item(&mut self, _s: VertexId, _d: VertexId) {
                self.items += 1;
            }
            fn finish(self) -> (usize, usize) {
                (self.lists, self.items)
            }
        }
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(20, 60, &mut rng);
        let order = StreamOrder::shuffled(20, 7);
        let s = AdjListStream::new(&g, order.clone());
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        let (from_trace, rep_t) = trace.run(ListCounter { lists: 0, items: 0 });
        let (from_runner, rep_r) = Runner::run(
            &g,
            ListCounter { lists: 0, items: 0 },
            &PassOrders::Same(order),
        );
        assert_eq!(from_trace, from_runner);
        assert_eq!(rep_t.items_processed, rep_r.items_processed);
    }
}

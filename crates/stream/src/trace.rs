//! Item traces: run algorithms on externally supplied streams.
//!
//! Everything else in this crate generates streams from in-memory graphs;
//! a *trace* is the reverse direction — a raw sequence of `src dst` items
//! (e.g. produced by another system, or the CLI's `stream` command) that is
//! validated against the adjacency-list promise and then driven through any
//! [`MultiPassAlgorithm`]. Multi-pass algorithms replay the same trace per
//! pass, which is exactly the model's "same ordering" semantics.
//!
//! Traces built by [`ItemTrace::new`]/[`ItemTrace::read`] are certified
//! valid up front. [`ItemTrace::new_unchecked`] skips certification so that
//! corrupted streams (from [`crate::fault::FaultPlan`] or hostile inputs)
//! can be driven through a [`crate::guard::Guarded`] algorithm via
//! [`ItemTrace::try_run`], which degrades to a typed [`RunError`] instead
//! of panicking.
//!
//! # Binary trace format (`.adjb`)
//!
//! Text traces pay a per-line `String` allocation and two `str::parse`s per
//! item on every load — and file-backed replay drivers reload per
//! generation. [`ItemTrace::write_adjb`] serializes a trace into a compact
//! little-endian container (mirroring the checkpoint container in
//! [`crate::checkpoint`]) that loads in one buffered read with no parsing:
//!
//! ```text
//! magic    8 bytes  b"ADJBTRAC"
//! version  u32 LE   ADJB_VERSION
//! payload:
//!   items  u64 LE   item count N
//!   pairs  N × (u32 src LE, u32 dst LE)
//!   runs   u64 LE   run count R (maximal same-source runs)
//!   lens   R × u32 LE  run lengths (must sum to N)
//! check    u64 LE   [`crate::hashing::checksum64`] over payload
//! ```
//!
//! [`ItemTrace::read`] and [`ItemTrace::read_unchecked`] sniff the first 8
//! bytes and accept either format transparently; corrupt binary inputs are
//! rejected with typed [`TraceError`]s before any item reaches an
//! algorithm. The run lengths are self-describing redundancy for external
//! consumers — replay drivers re-derive list boundaries from source
//! changes, exactly as with a text trace.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adjstream_graph::VertexId;

use crate::hashing::checksum64;
use crate::item::StreamItem;
use crate::runner::{run_slice_passes, MultiPassAlgorithm, RunError, RunReport};
use crate::validate::{validate_stream, StreamError};

/// Magic bytes opening every binary (`.adjb`) trace file.
pub const ADJB_MAGIC: [u8; 8] = *b"ADJBTRAC";

/// Current binary trace format version. Bumped on any incompatible layout
/// change; readers reject other versions with
/// [`TraceError::UnsupportedVersion`].
pub const ADJB_VERSION: u32 = 1;

/// A replayable item trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemTrace {
    items: Vec<StreamItem>,
    edges: usize,
}

/// Errors loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Line that is not `src dst`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// The items violate the adjacency-list promise.
    Invalid(StreamError),
    /// A binary trace's format version is not readable by this build.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// A binary trace ended before its declared payload + checksum.
    Truncated,
    /// A binary trace's payload bytes do not hash to the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A binary trace's run lengths do not sum to its item count.
    InconsistentRuns {
        /// Declared item count.
        items: u64,
        /// Sum of the declared run lengths.
        run_total: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::Malformed { line } => write!(f, "malformed trace at line {line}"),
            TraceError::Invalid(e) => write!(f, "invalid stream: {e}"),
            TraceError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported binary trace version {found} (this build reads {supported})"
            ),
            TraceError::Truncated => write!(f, "binary trace is truncated"),
            TraceError::ChecksumMismatch { expected, actual } => write!(
                f,
                "binary trace corrupt: checksum {actual:#018x} != recorded {expected:#018x}"
            ),
            TraceError::InconsistentRuns { items, run_total } => write!(
                f,
                "binary trace corrupt: run lengths sum to {run_total}, expected {items} items"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl ItemTrace {
    /// Build from items, validating the promise.
    pub fn new(items: Vec<StreamItem>) -> Result<Self, StreamError> {
        let edges = validate_stream(items.iter().copied())?;
        Ok(ItemTrace { items, edges })
    }

    /// Build from items **without** validating the promise.
    ///
    /// For deliberately malformed streams (fault-injection tests, untrusted
    /// inputs) that will be driven through a [`crate::guard::Guarded`]
    /// algorithm. [`edges`](Self::edges) reports `items / 2`, which is only
    /// an upper bound when the promise is broken.
    pub fn new_unchecked(items: Vec<StreamItem>) -> Self {
        let edges = items.len() / 2;
        ItemTrace { items, edges }
    }

    /// Load a trace in either format — sniffed from the first 8 bytes —
    /// and validate it. Binary (`.adjb`) inputs are decoded in one buffered
    /// read; anything else is parsed as whitespace `src dst` per line (`#`
    /// comments allowed). CRLF line endings are accepted; lines with extra
    /// tokens or vertex ids that do not fit in `u32` are rejected as
    /// [`TraceError::Malformed`].
    pub fn read<R: Read>(reader: R) -> Result<Self, TraceError> {
        let items = Self::parse_items(reader)?;
        Self::new(items).map_err(TraceError::Invalid)
    }

    /// Parse like [`ItemTrace::read`] (same format sniffing) but skip
    /// promise validation, for streams that are expected to be malformed.
    pub fn read_unchecked<R: Read>(reader: R) -> Result<Self, TraceError> {
        Ok(Self::new_unchecked(Self::parse_items(reader)?))
    }

    /// Decode a trace already resident in memory — same format sniffing as
    /// [`ItemTrace::read`], without the intermediate copy a generic reader
    /// pays to be drained. Binary payloads decode straight off the slice;
    /// this is the zero-copy path file-backed replay drivers should use
    /// after an exact-size `std::fs::read`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let items = Self::parse_items_bytes(bytes)?;
        Self::new(items).map_err(TraceError::Invalid)
    }

    /// [`ItemTrace::from_bytes`] without promise validation, for streams
    /// that are expected to be malformed.
    pub fn from_bytes_unchecked(bytes: &[u8]) -> Result<Self, TraceError> {
        Ok(Self::new_unchecked(Self::parse_items_bytes(bytes)?))
    }

    /// Slice twin of [`ItemTrace::parse_items`].
    fn parse_items_bytes(bytes: &[u8]) -> Result<Vec<StreamItem>, TraceError> {
        match bytes.strip_prefix(&ADJB_MAGIC) {
            Some(rest) => Self::decode_adjb(rest),
            None => Self::parse_text(bytes),
        }
    }

    /// Sniff the format from the first 8 bytes and dispatch to the binary
    /// or text parser.
    fn parse_items<R: Read>(mut reader: R) -> Result<Vec<StreamItem>, TraceError> {
        let mut head = [0u8; 8];
        let mut got = 0usize;
        while got < head.len() {
            match reader.read(&mut head[got..]).map_err(TraceError::Io)? {
                0 => break,
                n => got += n,
            }
        }
        if got == head.len() && head == ADJB_MAGIC {
            Self::parse_adjb(reader)
        } else {
            Self::parse_text((&head[..got]).chain(reader))
        }
    }

    /// Drain the reader after a sniffed [`ADJB_MAGIC`], then decode.
    fn parse_adjb<R: Read>(mut reader: R) -> Result<Vec<StreamItem>, TraceError> {
        // One buffered read of everything after the magic; all decoding
        // below is slicing, no further I/O.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).map_err(TraceError::Io)?;
        Self::decode_adjb(&rest)
    }

    /// Decode the binary payload following a sniffed [`ADJB_MAGIC`].
    fn decode_adjb(rest: &[u8]) -> Result<Vec<StreamItem>, TraceError> {
        let take = |range: std::ops::Range<usize>| -> Result<&[u8], TraceError> {
            rest.get(range).ok_or(TraceError::Truncated)
        };
        let read_u32_at = |at: usize| -> Result<u32, TraceError> {
            Ok(u32::from_le_bytes(
                take(at..at + 4)?.try_into().expect("4 bytes"),
            ))
        };
        let read_u64_at = |at: usize| -> Result<u64, TraceError> {
            Ok(u64::from_le_bytes(
                take(at..at + 8)?.try_into().expect("8 bytes"),
            ))
        };
        let version = read_u32_at(0)?;
        if version != ADJB_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: version,
                supported: ADJB_VERSION,
            });
        }
        let payload_start = 4usize;
        let n64 = read_u64_at(payload_start)?;
        let n = usize::try_from(n64).map_err(|_| TraceError::Truncated)?;
        let pairs_start = payload_start + 8;
        let pairs_len = n.checked_mul(8).ok_or(TraceError::Truncated)?;
        let runs_at = pairs_start
            .checked_add(pairs_len)
            .ok_or(TraceError::Truncated)?;
        let r64 = read_u64_at(runs_at)?;
        let runs = usize::try_from(r64).map_err(|_| TraceError::Truncated)?;
        let lens_start = runs_at + 8;
        let lens_len = runs.checked_mul(4).ok_or(TraceError::Truncated)?;
        let payload_end = lens_start
            .checked_add(lens_len)
            .ok_or(TraceError::Truncated)?;
        let payload = take(payload_start..payload_end)?;
        let expected = read_u64_at(payload_end)?;
        let actual = checksum64(payload);
        if actual != expected {
            return Err(TraceError::ChecksumMismatch { expected, actual });
        }
        let run_total: u64 = take(lens_start..payload_end)?
            .chunks_exact(4)
            .map(|c| u64::from(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .sum();
        if run_total != n64 {
            return Err(TraceError::InconsistentRuns {
                items: n64,
                run_total,
            });
        }
        Ok(Self::decode_pairs(take(pairs_start..runs_at)?, n))
    }

    /// Decode the `(u32 src, u32 dst)` little-endian pair region into items.
    ///
    /// On little-endian targets `StreamItem`'s `repr(C)` layout *is* the
    /// on-disk encoding, so the whole region is materialized with one
    /// `memcpy` instead of a bounds-checked per-pair push loop — the
    /// dominant cost of `.adjb` decode on 10⁸-item traces. Other targets
    /// keep the portable per-pair loop.
    fn decode_pairs(pairs: &[u8], n: usize) -> Vec<StreamItem> {
        debug_assert_eq!(pairs.len(), n * 8);
        #[cfg(target_endian = "little")]
        {
            let mut items = Vec::<StreamItem>::with_capacity(n);
            // SAFETY: `StreamItem` is `repr(C)` over two `repr(transparent)`
            // u32 newtypes (size 8, no padding, every bit pattern valid),
            // the source region holds exactly `n` such 8-byte records, and
            // the destination allocation holds `n` items. Byte-wise copy is
            // value-preserving because the encoding is little-endian.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    pairs.as_ptr(),
                    items.as_mut_ptr().cast::<u8>(),
                    n * 8,
                );
                items.set_len(n);
            }
            items
        }
        #[cfg(not(target_endian = "little"))]
        {
            let mut items = Vec::with_capacity(n);
            for pair in pairs.chunks_exact(8) {
                let src = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
                let dst = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
                items.push(StreamItem::new(VertexId(src), VertexId(dst)));
            }
            items
        }
    }

    /// Parse the text form, reusing one line buffer across the whole file
    /// instead of allocating a `String` per line.
    fn parse_text<R: Read>(reader: R) -> Result<Vec<StreamItem>, TraceError> {
        let mut items = Vec::new();
        let mut buf = BufReader::new(reader);
        let mut line = String::new();
        let mut lineno = 0usize;
        loop {
            line.clear();
            if buf.read_line(&mut line).map_err(TraceError::Io)? == 0 {
                break;
            }
            lineno += 1;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.split_whitespace();
            let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(TraceError::Malformed { line: lineno });
            };
            let (Ok(a), Ok(b)) = (a.parse::<u32>(), b.parse::<u32>()) else {
                return Err(TraceError::Malformed { line: lineno });
            };
            items.push(StreamItem::new(VertexId(a), VertexId(b)));
        }
        Ok(items)
    }

    /// Serialize the trace in the binary `.adjb` container (see the module
    /// docs for the layout). A trace written here and loaded back through
    /// [`ItemTrace::read`] compares equal item for item.
    pub fn write_adjb<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut payload =
            Vec::with_capacity(8 + self.items.len() * 8 + 8 + self.items.len() / 2 * 4);
        payload.extend_from_slice(&(self.items.len() as u64).to_le_bytes());
        for it in &self.items {
            payload.extend_from_slice(&it.src.0.to_le_bytes());
            payload.extend_from_slice(&it.dst.0.to_le_bytes());
        }
        let mut run_lens: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < self.items.len() {
            let j = crate::runner::find_run_end(&self.items, i);
            let len = u32::try_from(j - i).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "adjacency list run exceeds u32 items",
                )
            })?;
            run_lens.push(len);
            i = j;
        }
        payload.extend_from_slice(&(run_lens.len() as u64).to_le_bytes());
        for len in &run_lens {
            payload.extend_from_slice(&len.to_le_bytes());
        }
        w.write_all(&ADJB_MAGIC)?;
        w.write_all(&ADJB_VERSION.to_le_bytes())?;
        w.write_all(&payload)?;
        w.write_all(&checksum64(&payload).to_le_bytes())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// The items.
    pub fn items(&self) -> &[StreamItem] {
        &self.items
    }

    /// Consume the trace, yielding the items without copying.
    pub fn into_items(self) -> Vec<StreamItem> {
        self.items
    }

    /// Drive a multi-pass algorithm over the trace, replaying it for each
    /// pass, reporting failures as typed [`RunError`]s instead of panicking.
    /// Whole adjacency-list runs are delivered as slices through
    /// [`MultiPassAlgorithm::feed_slice`].
    pub fn try_run<A: MultiPassAlgorithm>(
        &self,
        algo: A,
    ) -> Result<(A::Output, RunReport), RunError> {
        run_slice_passes(algo, |_pass| self.items.as_slice())
    }

    /// Drive a multi-pass algorithm over the trace, replaying it for each
    /// pass and reporting peak state, exactly like
    /// [`crate::runner::Runner::run`] does for generated streams.
    pub fn run<A: MultiPassAlgorithm>(&self, algo: A) -> (A::Output, RunReport) {
        self.try_run(algo)
            .unwrap_or_else(|e| panic!("stream validation failed: {e}"))
    }
}

/// Backoff/retry policy for [`RetryingSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to at least 1).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry thereafter.
    pub initial_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A single attempt — no retries, no sleeping.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// `retries` retries after the initial attempt.
    pub fn with_retries(retries: usize) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (0-based): exponential doubling
    /// clamped to `max_backoff`, scaled by a multiplicative jitter in
    /// `[½, 1]` drawn from a deterministic xorshift stream so concurrent
    /// retriers desynchronize without nondeterminism in tests.
    fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << retry.min(20))
            .min(self.max_backoff);
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let frac = 0.5 + 0.5 * (*rng >> 11) as f64 / (1u64 << 53) as f64;
        base.mul_f64(frac)
    }
}

/// Terminal outcome of a retried trace load.
#[derive(Debug)]
pub enum RetryError {
    /// A failure retrying cannot fix (malformed line, promise violation).
    Permanent(TraceError),
    /// The retry budget ran out; `last` is the final transient failure.
    GaveUp {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: usize,
        /// The error from the last attempt.
        last: TraceError,
    },
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Permanent(e) => write!(f, "permanent trace failure: {e}"),
            RetryError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for RetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetryError::Permanent(e) | RetryError::GaveUp { last: e, .. } => Some(e),
        }
    }
}

/// A trace source that retries transient I/O failures.
///
/// Wraps a reader *factory* (each attempt re-opens the source from the
/// start, since a partially consumed reader is not resumable) and retries
/// [`TraceError::Io`] failures — of either the open or the read — with
/// bounded exponential backoff and deterministic jitter. Failures that a
/// retry cannot fix ([`TraceError::Malformed`], [`TraceError::Invalid`])
/// surface immediately as [`RetryError::Permanent`].
pub struct RetryingSource<F> {
    open: F,
    policy: RetryPolicy,
    sleeper: Box<dyn FnMut(Duration)>,
}

impl<F> RetryingSource<F> {
    /// Wrap `open` with the default policy (4 attempts, 10 ms → 500 ms).
    pub fn new(open: F) -> Self {
        Self::with_policy(open, RetryPolicy::default())
    }

    /// Wrap `open` with an explicit policy.
    pub fn with_policy(open: F, policy: RetryPolicy) -> Self {
        RetryingSource {
            open,
            policy,
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// Replace the backoff sleep with `sleeper`. Production code keeps the
    /// default [`std::thread::sleep`]; tests inject a recorder so retry
    /// schedules can be asserted deterministically without real
    /// wall-clock sleeping.
    pub fn with_sleeper(mut self, sleeper: impl FnMut(Duration) + 'static) -> Self {
        self.sleeper = Box::new(sleeper);
        self
    }

    /// Load and validate a trace, retrying transient failures. On success
    /// returns the trace and the number of attempts used (1 = no retries).
    pub fn read_trace<R: Read>(self) -> Result<(ItemTrace, usize), RetryError>
    where
        F: FnMut() -> std::io::Result<R>,
    {
        self.run_attempts(ItemTrace::read)
    }

    /// Like [`Self::read_trace`] but skipping promise validation.
    pub fn read_trace_unchecked<R: Read>(self) -> Result<(ItemTrace, usize), RetryError>
    where
        F: FnMut() -> std::io::Result<R>,
    {
        self.run_attempts(ItemTrace::read_unchecked)
    }

    /// Like [`Self::read_trace`]/[`read_trace_unchecked`] but for openers
    /// yielding the source's complete bytes (e.g. `std::fs::read`): decode
    /// happens in place via [`ItemTrace::from_bytes`], so a binary `.adjb`
    /// source costs one exact-size byte buffer plus the item vector —
    /// instead of the byte buffer, a second drain copy through the generic
    /// reader path, *and* the item vector.
    pub fn read_trace_bytes(self, validate: bool) -> Result<(ItemTrace, usize), RetryError>
    where
        F: FnMut() -> std::io::Result<Vec<u8>>,
    {
        if validate {
            self.run_attempts(|bytes: Vec<u8>| ItemTrace::from_bytes(&bytes))
        } else {
            self.run_attempts(|bytes: Vec<u8>| ItemTrace::from_bytes_unchecked(&bytes))
        }
    }

    fn run_attempts<R>(
        mut self,
        parse: impl Fn(R) -> Result<ItemTrace, TraceError>,
    ) -> Result<(ItemTrace, usize), RetryError>
    where
        F: FnMut() -> std::io::Result<R>,
    {
        let mut rng = self.policy.jitter_seed | 1;
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                (self.sleeper)(self.policy.backoff(attempt as u32 - 1, &mut rng));
            }
            let reader = match (self.open)() {
                Ok(r) => r,
                Err(e) => {
                    last = Some(TraceError::Io(e));
                    continue;
                }
            };
            match parse(reader) {
                Ok(trace) => return Ok((trace, attempt + 1)),
                Err(TraceError::Io(e)) => last = Some(TraceError::Io(e)),
                Err(permanent) => return Err(RetryError::Permanent(permanent)),
            }
        }
        Err(RetryError::GaveUp {
            attempts,
            last: last.expect("every failed attempt records an error"),
        })
    }
}

/// Load a trace file with retries — the file-backed convenience entry the
/// CLI uses. `validate` selects promise validation on or off.
///
/// The file is slurped with one exact-size `std::fs::read` per attempt and
/// decoded in place through [`ItemTrace::from_bytes`]: binary `.adjb` files
/// skip the generic reader drain that used to buffer the payload a second
/// time before decoding.
pub fn read_trace_file_with_retry(
    path: &std::path::Path,
    policy: RetryPolicy,
    validate: bool,
) -> Result<(ItemTrace, usize), RetryError> {
    RetryingSource::with_policy(|| std::fs::read(path), policy).read_trace_bytes(validate)
}

/// A fault-injection shim: hands out readers over fixed bytes where the
/// first `failures` reader *instances* fail their first `read` call with a
/// chosen [`std::io::ErrorKind`]. The failure budget is shared (atomically)
/// across clones, so a [`RetryingSource`] factory closure can call
/// [`FlakySource::reader`] per attempt and observe exactly `failures`
/// transient errors before the source heals.
#[derive(Debug, Clone)]
pub struct FlakySource {
    data: Arc<[u8]>,
    remaining_failures: Arc<AtomicUsize>,
    kind: std::io::ErrorKind,
}

impl FlakySource {
    /// A source over `data` whose first `failures` readers fail.
    pub fn new(data: &[u8], failures: usize, kind: std::io::ErrorKind) -> Self {
        FlakySource {
            data: data.into(),
            remaining_failures: Arc::new(AtomicUsize::new(failures)),
            kind,
        }
    }

    /// Failures not yet consumed.
    pub fn failures_left(&self) -> usize {
        self.remaining_failures.load(Ordering::SeqCst)
    }

    /// Open a reader, consuming one failure token if any remain.
    pub fn reader(&self) -> FlakyReader {
        let fail = self
            .remaining_failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        FlakyReader {
            data: Arc::clone(&self.data),
            pos: 0,
            fail,
            kind: self.kind,
        }
    }
}

/// Reader handed out by [`FlakySource`]; fails its first `read` call if it
/// holds a failure token.
#[derive(Debug)]
pub struct FlakyReader {
    data: Arc<[u8]>,
    pos: usize,
    fail: bool,
    kind: std::io::ErrorKind,
}

impl Read for FlakyReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.fail {
            self.fail = false;
            return Err(std::io::Error::new(self.kind, "injected transient fault"));
        }
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::order::StreamOrder;
    use adjstream_graph::gen;

    #[test]
    fn trace_roundtrips_generated_stream() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnm(25, 90, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(25, 4));
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        assert_eq!(trace.edges(), 90);
        assert_eq!(trace.len(), 180);
    }

    #[test]
    fn rejects_invalid_traces() {
        let items = vec![
            StreamItem::new(VertexId(0), VertexId(1)),
            StreamItem::new(VertexId(0), VertexId(2)),
        ];
        assert!(matches!(
            ItemTrace::new(items),
            Err(StreamError::MissingReverse { .. })
        ));
    }

    #[test]
    fn parses_text_form() {
        let text = "# comment\n0 1\n0 2\n1 0\n2 0\n";
        let trace = ItemTrace::read(text.as_bytes()).unwrap();
        assert_eq!(trace.edges(), 2);
        let bad = ItemTrace::read("0 x\n".as_bytes());
        assert!(matches!(bad, Err(TraceError::Malformed { line: 1 })));
    }

    #[test]
    fn parses_crlf_line_endings() {
        let text = "# comment\r\n0 1\r\n1 0\r\n";
        let trace = ItemTrace::read(text.as_bytes()).unwrap();
        assert_eq!(trace.edges(), 1);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn rejects_vertex_ids_overflowing_u32() {
        let text = "0 4294967296\n"; // u32::MAX + 1
        assert!(matches!(
            ItemTrace::read(text.as_bytes()),
            Err(TraceError::Malformed { line: 1 })
        ));
        // u32::MAX itself is in range (parse succeeds; the lone item then
        // fails stream validation, not parsing).
        let edge = "0 4294967295\n4294967295 0\n";
        assert_eq!(ItemTrace::read(edge.as_bytes()).unwrap().edges(), 1);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(matches!(
            ItemTrace::read("0 1 junk\n1 0\n".as_bytes()),
            Err(TraceError::Malformed { line: 1 })
        ));
        assert!(matches!(
            ItemTrace::read("0 1\n1 0 0\n".as_bytes()),
            Err(TraceError::Malformed { line: 2 })
        ));
    }

    #[test]
    fn unchecked_constructors_accept_malformed_streams() {
        let t = ItemTrace::read_unchecked("0 1\n0 1\n0 0\n".as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        let t2 = ItemTrace::new_unchecked(vec![StreamItem::new(VertexId(0), VertexId(0))]);
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn binary_roundtrip_preserves_items() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::gnm(40, 120, &mut rng);
        let s = AdjListStream::new(&g, StreamOrder::shuffled(40, 11));
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        let mut bytes = Vec::new();
        trace.write_adjb(&mut bytes).unwrap();
        assert_eq!(&bytes[..8], &ADJB_MAGIC);
        let back = ItemTrace::read(bytes.as_slice()).unwrap();
        assert_eq!(back.items(), trace.items());
        assert_eq!(back.edges(), trace.edges());
        // The zero-copy slice entry decodes identically, in both formats.
        let zero_copy = ItemTrace::from_bytes(&bytes).unwrap();
        assert_eq!(zero_copy.items(), trace.items());
        let text: String = trace
            .items()
            .iter()
            .map(|it| format!("{} {}\n", it.src.0, it.dst.0))
            .collect();
        let from_text = ItemTrace::from_bytes(text.as_bytes()).unwrap();
        assert_eq!(from_text.items(), trace.items());
    }

    #[test]
    fn binary_roundtrip_of_empty_trace() {
        let trace = ItemTrace::new(Vec::new()).unwrap();
        let mut bytes = Vec::new();
        trace.write_adjb(&mut bytes).unwrap();
        let back = ItemTrace::read(bytes.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    fn sample_adjb() -> Vec<u8> {
        let trace = ItemTrace::read("0 1\n0 2\n1 0\n2 0\n".as_bytes()).unwrap();
        let mut bytes = Vec::new();
        trace.write_adjb(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn binary_rejects_unsupported_version() {
        let mut bytes = sample_adjb();
        bytes[8] = 99; // version u32 LE low byte
        assert!(matches!(
            ItemTrace::read(bytes.as_slice()),
            Err(TraceError::UnsupportedVersion {
                found: 99,
                supported: ADJB_VERSION
            })
        ));
    }

    #[test]
    fn binary_rejects_flipped_payload_byte_as_checksum_mismatch() {
        let mut bytes = sample_adjb();
        let mid = 12 + (bytes.len() - 12) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            ItemTrace::read(bytes.as_slice()),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn binary_rejects_truncation_at_every_prefix() {
        let bytes = sample_adjb();
        for cut in 8..bytes.len() {
            let err = ItemTrace::read(&bytes[..cut]).expect_err("prefix must not parse");
            assert!(
                matches!(err, TraceError::Truncated),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn binary_rejects_inconsistent_run_lengths() {
        // Rebuild the container with a run-length table that does not sum
        // to the item count, keeping the checksum valid so only the run
        // check can fire.
        let items: u64 = 4;
        let mut payload = Vec::new();
        payload.extend_from_slice(&items.to_le_bytes());
        for (s, d) in [(0u32, 1u32), (0, 2), (1, 0), (2, 0)] {
            payload.extend_from_slice(&s.to_le_bytes());
            payload.extend_from_slice(&d.to_le_bytes());
        }
        payload.extend_from_slice(&2u64.to_le_bytes()); // two runs...
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes()); // ...summing to 5
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&ADJB_MAGIC);
        bytes.extend_from_slice(&ADJB_VERSION.to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
        assert!(matches!(
            ItemTrace::read(bytes.as_slice()),
            Err(TraceError::InconsistentRuns {
                items: 4,
                run_total: 5
            })
        ));
    }

    #[test]
    fn sniffing_still_accepts_short_text_inputs() {
        // Shorter than the 8-byte magic probe.
        let trace = ItemTrace::read("0 1\n1 0".as_bytes()).unwrap();
        assert_eq!(trace.edges(), 1);
        assert!(ItemTrace::read("".as_bytes()).unwrap().is_empty());
    }

    // Real-scale backoffs on purpose: every retry test injects a recording
    // sleeper, so none of them spend wall-clock time sleeping.
    fn fast_policy(max_attempts: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 7,
        }
    }

    /// A sleeper that records the requested durations instead of sleeping.
    fn recording_sleeper() -> (
        std::rc::Rc<std::cell::RefCell<Vec<Duration>>>,
        impl FnMut(Duration),
    ) {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = std::rc::Rc::clone(&log);
        (log, move |d| sink.borrow_mut().push(d))
    }

    #[test]
    fn retrying_source_survives_transient_faults() {
        let src = FlakySource::new(b"0 1\n1 0\n", 2, std::io::ErrorKind::ConnectionReset);
        let (sleeps, rec) = recording_sleeper();
        let (trace, attempts) = RetryingSource::with_policy(|| Ok(src.reader()), fast_policy(4))
            .with_sleeper(rec)
            .read_trace()
            .expect("2 faults fit in a 4-attempt budget");
        assert_eq!(trace.edges(), 1);
        assert_eq!(attempts, 3, "two failed attempts, then success");
        assert_eq!(src.failures_left(), 0);
        assert_eq!(sleeps.borrow().len(), 2, "one backoff per failed attempt");
    }

    #[test]
    fn retrying_source_gives_up_with_a_typed_error() {
        let src = FlakySource::new(b"0 1\n1 0\n", 10, std::io::ErrorKind::TimedOut);
        let (sleeps, rec) = recording_sleeper();
        let err = RetryingSource::with_policy(|| Ok(src.reader()), fast_policy(3))
            .with_sleeper(rec)
            .read_trace()
            .expect_err("10 faults exhaust a 3-attempt budget");
        match err {
            RetryError::GaveUp { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(last, TraceError::Io(_)));
            }
            other => panic!("expected GaveUp, got {other}"),
        }
        assert_eq!(src.failures_left(), 7, "only 3 tokens were consumed");
        assert_eq!(sleeps.borrow().len(), 2);
    }

    #[test]
    fn retry_schedule_is_seeded_and_deterministic() {
        let run = |seed: u64| {
            let src = FlakySource::new(b"0 1\n1 0\n", 3, std::io::ErrorKind::ConnectionReset);
            let mut policy = fast_policy(4);
            policy.jitter_seed = seed;
            let (sleeps, rec) = recording_sleeper();
            RetryingSource::with_policy(|| Ok(src.reader()), policy)
                .with_sleeper(rec)
                .read_trace()
                .expect("3 faults fit in a 4-attempt budget");
            let schedule = sleeps.borrow().clone();
            schedule
        };
        let a = run(123);
        let b = run(123);
        let c = run(456);
        assert_eq!(a, b, "same seed, same recorded schedule");
        assert_ne!(a, c, "a different seed perturbs the jitter");
        assert_eq!(a.len(), 3);
        // The recorded schedule is exactly the policy's backoff stream.
        let mut policy = fast_policy(4);
        policy.jitter_seed = 123;
        let mut rng = policy.jitter_seed | 1;
        let want: Vec<Duration> = (0..3).map(|r| policy.backoff(r, &mut rng)).collect();
        assert_eq!(a, want);
    }

    #[test]
    fn malformed_input_is_permanent_and_never_retried() {
        let src = FlakySource::new(b"0 junk\n", 0, std::io::ErrorKind::TimedOut);
        let err = RetryingSource::with_policy(|| Ok(src.reader()), fast_policy(5))
            .read_trace()
            .expect_err("malformed line");
        assert!(matches!(
            err,
            RetryError::Permanent(TraceError::Malformed { line: 1 })
        ));
        // Promise violations are permanent too.
        let src = FlakySource::new(b"0 1\n0 2\n", 0, std::io::ErrorKind::TimedOut);
        let err = RetryingSource::with_policy(|| Ok(src.reader()), fast_policy(5))
            .read_trace()
            .expect_err("invalid stream");
        assert!(matches!(err, RetryError::Permanent(TraceError::Invalid(_))));
        // ... unless validation is skipped, in which case the load succeeds.
        let src = FlakySource::new(b"0 1\n0 2\n", 1, std::io::ErrorKind::TimedOut);
        let (_sleeps, rec) = recording_sleeper();
        let (trace, attempts) = RetryingSource::with_policy(|| Ok(src.reader()), fast_policy(5))
            .with_sleeper(rec)
            .read_trace_unchecked()
            .expect("unchecked read tolerates promise violations");
        assert_eq!(trace.len(), 2);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn failed_opens_are_retried_like_failed_reads() {
        let opens = AtomicUsize::new(0);
        let (_sleeps, rec) = recording_sleeper();
        let (trace, attempts) = RetryingSource::with_policy(
            || {
                if opens.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        "not there yet",
                    ))
                } else {
                    Ok(&b"0 1\n1 0\n"[..])
                }
            },
            fast_policy(2),
        )
        .with_sleeper(rec)
        .read_trace()
        .expect("second open succeeds");
        assert_eq!(trace.edges(), 1);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn backoff_doubles_clamps_and_jitters_deterministically() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 42,
        };
        let mut rng_a = p.jitter_seed | 1;
        let mut rng_b = p.jitter_seed | 1;
        for retry in 0..8 {
            let a = p.backoff(retry, &mut rng_a);
            let b = p.backoff(retry, &mut rng_b);
            assert_eq!(a, b, "same seed, same schedule");
            let base = Duration::from_millis(8)
                .saturating_mul(1 << retry)
                .min(Duration::from_millis(40));
            assert!(a <= base, "jitter never exceeds the clamped base");
            assert!(a >= base / 2, "jitter keeps at least half the base");
        }
        // Huge retry indices must not overflow the shift.
        let _ = p.backoff(1000, &mut rng_a);
    }

    #[test]
    fn file_backed_retry_helper_reads_real_files() {
        let dir = std::env::temp_dir().join(format!("adjstream-retry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        std::fs::write(&path, "0 1\n1 0\n").unwrap();
        let (trace, attempts) =
            read_trace_file_with_retry(&path, RetryPolicy::none(), true).expect("file exists");
        assert_eq!(trace.edges(), 1);
        assert_eq!(attempts, 1);
        let missing = dir.join("nope.txt");
        let err =
            read_trace_file_with_retry(&missing, fast_policy(2), true).expect_err("missing file");
        assert!(matches!(err, RetryError::GaveUp { attempts: 2, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_policy_constructors() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::with_retries(0).max_attempts, 1);
        assert_eq!(RetryPolicy::with_retries(3).max_attempts, 4);
        assert_eq!(
            RetryPolicy::with_retries(usize::MAX).max_attempts,
            usize::MAX
        );
    }

    #[test]
    fn runs_algorithms_identically_to_the_runner() {
        use crate::runner::{PassOrders, Runner};
        use crate::SpaceUsage;
        struct ListCounter {
            lists: usize,
            items: usize,
        }
        impl SpaceUsage for ListCounter {
            fn space_bytes(&self) -> usize {
                16
            }
        }
        impl MultiPassAlgorithm for ListCounter {
            type Output = (usize, usize);
            fn passes(&self) -> usize {
                2
            }
            fn begin_pass(&mut self, _p: usize) {}
            fn begin_list(&mut self, _o: VertexId) {
                self.lists += 1;
            }
            fn item(&mut self, _s: VertexId, _d: VertexId) {
                self.items += 1;
            }
            fn finish(self) -> (usize, usize) {
                (self.lists, self.items)
            }
        }
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(20, 60, &mut rng);
        let order = StreamOrder::shuffled(20, 7);
        let s = AdjListStream::new(&g, order.clone());
        let trace = ItemTrace::new(s.collect_items()).unwrap();
        let (from_trace, rep_t) = trace.run(ListCounter { lists: 0, items: 0 });
        let (from_runner, rep_r) = Runner::run(
            &g,
            ListCounter { lists: 0, items: 0 },
            &PassOrders::Same(order),
        );
        assert_eq!(from_trace, from_runner);
        assert_eq!(rep_t.items_processed, rep_r.items_processed);
        assert_eq!(rep_t.peak_state_bytes, rep_r.peak_state_bytes);
    }
}

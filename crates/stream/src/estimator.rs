//! Estimator amplification.
//!
//! Theorems 3.7 and 4.6 both turn a constant-success-probability estimator
//! into a `1 − δ` one by running `Θ(log 1/δ)` independent copies and taking
//! the median. These helpers implement that (plus mean / median-of-means,
//! used by the harness for variance diagnostics).

/// Median of a sample (average of the two central order statistics for even
/// lengths). Panics on an empty slice.
///
/// NaN runs are excluded before taking the order statistics: one degenerate
/// repetition must not crash or poison the amplified estimate (the whole
/// point of the median is robustness to a bad minority of runs). If *every*
/// value is NaN there is no information to amplify and the result is NaN.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Arithmetic mean. Panics on an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty sample");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample variance (unbiased, `n−1` denominator); 0 for singletons.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Median-of-means: split into `groups` contiguous groups, average each,
/// take the median of the averages. `groups` is clamped to the sample size.
pub fn median_of_means(values: &[f64], groups: usize) -> f64 {
    assert!(!values.is_empty(), "median_of_means of empty sample");
    let groups = groups.clamp(1, values.len());
    let means: Vec<f64> = values
        .chunks(values.len().div_ceil(groups))
        .map(mean)
        .collect();
    median(&means)
}

/// Number of repetitions `D·log(1/δ)` the theorems prescribe for failure
/// probability `δ`, with the constant chosen so a per-run success
/// probability of 2/3 amplifies correctly (Chernoff); always odd so the
/// median is a sample point.
pub fn repetitions_for_confidence(delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
    let r = (18.0 * (1.0 / delta).ln()).ceil() as usize;
    let r = r.max(1);
    if r.is_multiple_of(2) {
        r + 1
    } else {
        r
    }
}

/// Relative error `|estimate − truth| / truth`; if `truth` is 0, returns 0
/// when the estimate is also 0 and `+∞` otherwise.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn median_robust_to_outliers() {
        let vals = [10.0, 11.0, 9.0, 10.5, 1e9];
        assert!((median(&vals) - 10.5).abs() < 1e-9);
    }

    #[test]
    fn mean_and_variance() {
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&vals), 5.0);
        assert!((variance(&vals) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn median_of_means_reduces_outlier_pull() {
        let mut vals = vec![10.0; 30];
        vals.push(1e12);
        let mom = median_of_means(&vals, 5);
        assert!(mom < 100.0, "mom={mom}");
    }

    #[test]
    fn repetition_count_grows_with_confidence() {
        let r1 = repetitions_for_confidence(0.1);
        let r2 = repetitions_for_confidence(0.01);
        assert!(r2 > r1);
        assert_eq!(r1 % 2, 1);
        assert_eq!(r2 % 2, 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }

    #[test]
    fn median_ignores_nan_runs() {
        assert_eq!(median(&[3.0, f64::NAN, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[f64::NAN, 7.0]), 7.0);
        // Infinities are legitimate order statistics, not dropped.
        assert_eq!(median(&[f64::INFINITY, 1.0, 2.0]), 2.0);
    }

    #[test]
    fn median_of_all_nans_is_nan() {
        assert!(median(&[f64::NAN, f64::NAN]).is_nan());
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(
            relative_error(110.0, 100.0),
            0.1_f64.max(0.0999999999999999)
        );
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}

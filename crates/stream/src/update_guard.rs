//! Guarded update ingestion: online validation of insert/delete streams
//! with an explicit degradation policy.
//!
//! The dynamic counterpart of [`crate::guard`]. TRIÈST-FD is *tolerant* of
//! invalid deletions — a delete of a dead edge silently becomes `d_o` debt,
//! skewing `p₃` forever after — which is exactly why it must never see one
//! un-vetted. [`GuardedUpdate`] wraps any [`UpdateAlgorithm`] and replays
//! graph semantics alongside it (the live-edge set plus the timestamp
//! high-water mark), classifying every event before it is forwarded:
//!
//! * **Strict** — the first violation poisons the guard: a typed
//!   [`UpdateViolation`] (with the 0-based event position) is returned and
//!   nothing further reaches the inner algorithm.
//! * **Repair** — semantic violations (duplicate insert, dead delete) are
//!   dropped; timestamp regressions are clamped to the high-water mark and
//!   the event is applied. The inner algorithm sees a valid stream.
//! * **Observe** — violations are counted but every event is forwarded
//!   verbatim; the inner algorithm's tolerance is on its own.
//!
//! In every mode the guard's own live-set bookkeeping follows the
//! *repaired* semantics, so one violation never cascades into spurious
//! detections downstream. [`UpdateGuardStats`] reconciles exactly against
//! an [`UpdateFaultPlan`](crate::update_fault::UpdateFaultPlan)'s
//! expected-detection ledger.

use std::fmt;
use std::io::{self, Read, Write};

use adjstream_graph::EdgeKey;

use crate::checkpoint::{
    corrupt, read_u64, read_u8, read_usize, write_u64, write_u8, write_usize, Checkpoint,
};
use crate::guard::GuardPolicy;
use crate::hashing::FastSet;
use crate::meter::{PeakTracker, SpaceUsage};
use crate::update::{UpdateAlgorithm, UpdateBatchReport, UpdateEvent, UpdateOp, UpdateRunReport};

/// A violation of update-stream semantics, with the event position where
/// it was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateViolation {
    /// An insertion of an edge that is already live.
    DuplicateInsert {
        /// 0-based event position.
        position: usize,
        /// The re-inserted edge.
        edge: EdgeKey,
    },
    /// A deletion of an edge that is not live.
    DeadDelete {
        /// 0-based event position.
        position: usize,
        /// The edge the deletion targeted.
        edge: EdgeKey,
    },
    /// A timestamp below the stream's high-water mark.
    TimestampRegression {
        /// 0-based event position.
        position: usize,
        /// The high-water mark at that point.
        previous: u64,
        /// The regressing timestamp.
        found: u64,
    },
}

impl UpdateViolation {
    /// The 0-based event position of the violation.
    pub fn position(&self) -> usize {
        match self {
            UpdateViolation::DuplicateInsert { position, .. }
            | UpdateViolation::DeadDelete { position, .. }
            | UpdateViolation::TimestampRegression { position, .. } => *position,
        }
    }
}

impl fmt::Display for UpdateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateViolation::DuplicateInsert { position, edge } => {
                write!(f, "event {position}: insert of live edge {edge}")
            }
            UpdateViolation::DeadDelete { position, edge } => {
                write!(f, "event {position}: delete of dead edge {edge}")
            }
            UpdateViolation::TimestampRegression {
                position,
                previous,
                found,
            } => write!(
                f,
                "event {position}: timestamp {found} regresses below {previous}"
            ),
        }
    }
}

impl std::error::Error for UpdateViolation {}

/// Counters a [`GuardedUpdate`] accumulates while vetting events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateGuardStats {
    /// Events seen (valid or not).
    pub events: usize,
    /// Total violations detected.
    pub detections: usize,
    /// Duplicate-insert detections.
    pub duplicate_inserts: usize,
    /// Dead-delete detections.
    pub dead_deletes: usize,
    /// Timestamp-regression detections.
    pub ts_regressions: usize,
    /// Events dropped (Repair mode only).
    pub dropped: usize,
    /// Timestamps clamped to the high-water mark (Repair mode only).
    pub repaired_ts: usize,
}

/// Wrap an [`UpdateAlgorithm`] with online update-semantics validation and
/// a [`GuardPolicy`]. See the module docs for the per-policy behavior.
pub struct GuardedUpdate<A> {
    inner: A,
    policy: GuardPolicy,
    /// Packed keys of edges currently live under repaired semantics.
    live: FastSet<u64>,
    /// Timestamp high-water mark.
    last_ts: u64,
    /// Whether any event has been seen (distinguishes `last_ts == 0`).
    seen: bool,
    /// Events seen so far; the position assigned to the next event.
    position: usize,
    stats: UpdateGuardStats,
    /// Strict mode's poison: the first violation, after which nothing is
    /// forwarded.
    fatal: Option<UpdateViolation>,
}

impl<A: UpdateAlgorithm> GuardedUpdate<A> {
    /// Guard `inner` under `policy`.
    pub fn new(inner: A, policy: GuardPolicy) -> Self {
        GuardedUpdate {
            inner,
            policy,
            live: FastSet::default(),
            last_ts: 0,
            seen: false,
            position: 0,
            stats: UpdateGuardStats::default(),
            fatal: None,
        }
    }

    /// The guard's policy.
    pub fn policy(&self) -> GuardPolicy {
        self.policy
    }

    /// Accumulated counters.
    pub fn stats(&self) -> UpdateGuardStats {
        self.stats
    }

    /// Strict mode's first violation, if one poisoned the guard.
    pub fn fatal(&self) -> Option<UpdateViolation> {
        self.fatal
    }

    /// Number of edges live under repaired semantics.
    pub fn live_edges(&self) -> usize {
        self.live.len()
    }

    /// Borrow the guarded algorithm.
    pub fn inner_ref(&self) -> &A {
        &self.inner
    }

    /// Mutably borrow the guarded algorithm (for checkpoint plumbing; the
    /// guard's bookkeeping is bypassed, so don't feed it events this way).
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwrap the guarded algorithm.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Classify `ev` without applying it.
    fn classify(&self, ev: &UpdateEvent, position: usize) -> Option<UpdateViolation> {
        if self.seen && ev.ts < self.last_ts {
            return Some(UpdateViolation::TimestampRegression {
                position,
                previous: self.last_ts,
                found: ev.ts,
            });
        }
        let key = ev.edge.pack();
        match ev.op {
            UpdateOp::Insert if self.live.contains(&key) => {
                Some(UpdateViolation::DuplicateInsert {
                    position,
                    edge: ev.edge,
                })
            }
            UpdateOp::Delete if !self.live.contains(&key) => Some(UpdateViolation::DeadDelete {
                position,
                edge: ev.edge,
            }),
            _ => None,
        }
    }

    fn count(&mut self, v: &UpdateViolation) {
        self.stats.detections += 1;
        match v {
            UpdateViolation::DuplicateInsert { .. } => self.stats.duplicate_inserts += 1,
            UpdateViolation::DeadDelete { .. } => self.stats.dead_deletes += 1,
            UpdateViolation::TimestampRegression { .. } => self.stats.ts_regressions += 1,
        }
    }

    /// Apply a valid (or already-vetted) event to the live set and the
    /// inner algorithm, at an effective timestamp.
    fn forward(&mut self, ev: &UpdateEvent, ts: u64) {
        match ev.op {
            UpdateOp::Insert => {
                self.live.insert(ev.edge.pack());
                self.inner.insert(ev.edge, ts);
            }
            UpdateOp::Delete => {
                self.live.remove(&ev.edge.pack());
                self.inner.delete(ev.edge, ts);
            }
        }
    }

    /// Vet and apply one event. `Err` is only returned under
    /// [`GuardPolicy::Strict`]; once it has been returned the guard is
    /// poisoned and every further call returns the same violation.
    pub fn apply_event(&mut self, ev: &UpdateEvent) -> Result<(), UpdateViolation> {
        if let Some(fatal) = self.fatal {
            return Err(fatal);
        }
        let position = self.position;
        self.position += 1;
        self.stats.events += 1;

        // Timestamp check first, then semantics at the effective timestamp.
        let mut ts = ev.ts;
        if self.seen && ev.ts < self.last_ts {
            let v = UpdateViolation::TimestampRegression {
                position,
                previous: self.last_ts,
                found: ev.ts,
            };
            self.count(&v);
            match self.policy {
                GuardPolicy::Strict => {
                    self.fatal = Some(v);
                    return Err(v);
                }
                GuardPolicy::Repair => {
                    self.stats.repaired_ts += 1;
                    ts = self.last_ts;
                }
                GuardPolicy::Observe => {}
            }
        }

        let semantic = {
            let probe = UpdateEvent { ts, ..*ev };
            // Re-classify at the effective timestamp so a repaired clamp
            // does not re-trigger the regression arm.
            match self.classify(&probe, position) {
                Some(UpdateViolation::TimestampRegression { .. }) => None,
                other => other,
            }
        };
        self.seen = true;
        self.last_ts = self.last_ts.max(ts);
        match semantic {
            None => {
                self.forward(ev, ts);
                Ok(())
            }
            Some(v) => {
                self.count(&v);
                match self.policy {
                    GuardPolicy::Strict => {
                        self.fatal = Some(v);
                        Err(v)
                    }
                    GuardPolicy::Repair => {
                        self.stats.dropped += 1;
                        Ok(())
                    }
                    GuardPolicy::Observe => {
                        // Forward verbatim; the live set keeps repaired
                        // semantics (inserting a live edge or deleting a
                        // dead one leaves it unchanged).
                        match ev.op {
                            UpdateOp::Insert => self.inner.insert(ev.edge, ts),
                            UpdateOp::Delete => self.inner.delete(ev.edge, ts),
                        }
                        Ok(())
                    }
                }
            }
        }
    }
}

impl<A: UpdateAlgorithm> SpaceUsage for GuardedUpdate<A> {
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes() + self.live.len() * 8 + 8 * 8
    }
}

impl<A: UpdateAlgorithm> UpdateAlgorithm for GuardedUpdate<A> {
    fn insert(&mut self, e: EdgeKey, ts: u64) {
        let _ = self.apply_event(&UpdateEvent {
            op: UpdateOp::Insert,
            edge: e,
            ts,
        });
    }

    fn delete(&mut self, e: EdgeKey, ts: u64) {
        let _ = self.apply_event(&UpdateEvent {
            op: UpdateOp::Delete,
            edge: e,
            ts,
        });
    }

    fn estimate(&self) -> f64 {
        self.inner.estimate()
    }
}

impl<A: UpdateAlgorithm + Checkpoint> Checkpoint for GuardedUpdate<A> {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        crate::guard::encode_policy(w, self.policy)?;
        write_u8(w, u8::from(self.seen))?;
        write_u64(w, self.last_ts)?;
        write_usize(w, self.position)?;
        for v in [
            self.stats.events,
            self.stats.detections,
            self.stats.duplicate_inserts,
            self.stats.dead_deletes,
            self.stats.ts_regressions,
            self.stats.dropped,
            self.stats.repaired_ts,
        ] {
            write_usize(w, v)?;
        }
        // Deterministic layout: live keys sorted.
        let mut keys: Vec<u64> = self.live.iter().copied().collect();
        keys.sort_unstable();
        write_usize(w, keys.len())?;
        for k in keys {
            write_u64(w, k)?;
        }
        // A strict guard checkpoints only before its first violation.
        if self.fatal.is_some() {
            return Err(corrupt("cannot checkpoint a poisoned guard"));
        }
        self.inner.save(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let policy = crate::guard::decode_policy(r)?;
        let seen = read_u8(r)? != 0;
        let last_ts = read_u64(r)?;
        let position = read_usize(r)?;
        let mut stats = [0usize; 7];
        for v in &mut stats {
            *v = read_usize(r)?;
        }
        let n = read_usize(r)?;
        let mut live = FastSet::default();
        for _ in 0..n {
            if !live.insert(read_u64(r)?) {
                return Err(corrupt("duplicate live edge in guard checkpoint"));
            }
        }
        Ok(GuardedUpdate {
            inner: A::restore(r)?,
            policy,
            live,
            last_ts,
            seen,
            position,
            stats: UpdateGuardStats {
                events: stats[0],
                detections: stats[1],
                duplicate_inserts: stats[2],
                dead_deletes: stats[3],
                ts_regressions: stats[4],
                dropped: stats[5],
                repaired_ts: stats[6],
            },
            fatal: None,
        })
    }
}

/// Drive a guarded algorithm over a raw (possibly invalid) event sequence
/// in contiguous batches, mirroring
/// [`run_update_batches`](crate::update::run_update_batches). Under
/// [`GuardPolicy::Strict`] the first violation aborts the drive with the
/// typed violation; Repair and Observe always complete.
pub fn run_guarded_updates<A: UpdateAlgorithm>(
    events: &[UpdateEvent],
    batch_size: usize,
    guard: &mut GuardedUpdate<A>,
) -> Result<UpdateRunReport, UpdateViolation> {
    let mut peak = PeakTracker::new();
    peak.observe(guard.space_bytes());
    let mut previous = guard.estimate();
    let mut batches = Vec::new();
    for (batch, chunk) in events.chunks(batch_size.max(1)).enumerate() {
        let mut inserts = 0usize;
        for ev in chunk {
            if ev.op == UpdateOp::Insert {
                inserts += 1;
            }
            guard.apply_event(ev)?;
        }
        peak.observe(guard.space_bytes());
        let estimate = guard.estimate();
        batches.push(UpdateBatchReport {
            batch,
            events: chunk.len(),
            inserts,
            deletes: chunk.len() - inserts,
            ts_end: chunk.last().expect("chunks are non-empty").ts,
            estimate,
            delta: estimate - previous,
        });
        previous = estimate;
    }
    Ok(UpdateRunReport {
        batches,
        events: events.len(),
        peak_state_bytes: peak.peak(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update_fault::{UpdateFaultKind, UpdateFaultPlan};

    /// Exact live-edge counter (same shape as the update-module test
    /// algorithm) — lets assertions see exactly what reached the inner
    /// algorithm.
    #[derive(Default)]
    struct EdgeCounter {
        live: std::collections::HashSet<u64>,
        ops: usize,
    }

    impl SpaceUsage for EdgeCounter {
        fn space_bytes(&self) -> usize {
            self.live.len() * 8
        }
    }

    impl UpdateAlgorithm for EdgeCounter {
        fn insert(&mut self, e: EdgeKey, _ts: u64) {
            self.ops += 1;
            self.live.insert(e.pack());
        }
        fn delete(&mut self, e: EdgeKey, _ts: u64) {
            self.ops += 1;
            self.live.remove(&e.pack());
        }
        fn estimate(&self) -> f64 {
            self.live.len() as f64
        }
    }

    fn valid_events() -> Vec<UpdateEvent> {
        vec![
            UpdateEvent::insert(0, 1, 0),
            UpdateEvent::insert(1, 2, 1),
            UpdateEvent::delete(0, 1, 2),
            UpdateEvent::insert(0, 1, 3),
            UpdateEvent::insert(2, 3, 4),
        ]
    }

    #[test]
    fn clean_stream_passes_through_unchanged() {
        for policy in [
            GuardPolicy::Strict,
            GuardPolicy::Repair,
            GuardPolicy::Observe,
        ] {
            let mut g = GuardedUpdate::new(EdgeCounter::default(), policy);
            let report = run_guarded_updates(&valid_events(), 2, &mut g).unwrap();
            assert_eq!(report.events, 5);
            assert_eq!(g.stats().detections, 0);
            assert_eq!(g.inner_ref().ops, 5);
            assert_eq!(g.estimate(), 3.0);
            assert_eq!(g.live_edges(), 3);
        }
    }

    #[test]
    fn strict_poisons_on_first_violation_with_position() {
        let mut events = valid_events();
        events.insert(3, UpdateEvent::delete(0, 1, 2)); // re-delete dead {0,1}
        let mut g = GuardedUpdate::new(EdgeCounter::default(), GuardPolicy::Strict);
        let err = run_guarded_updates(&events, 2, &mut g).unwrap_err();
        assert_eq!(
            err,
            UpdateViolation::DeadDelete {
                position: 3,
                edge: EdgeKey::new(0.into(), 1.into())
            }
        );
        assert_eq!(g.fatal(), Some(err));
        // Nothing after the violation reached the inner algorithm.
        assert_eq!(g.inner_ref().ops, 3);
        // The poison is sticky.
        assert!(g.apply_event(&UpdateEvent::insert(7, 8, 9)).is_err());
        assert_eq!(g.inner_ref().ops, 3);
    }

    #[test]
    fn repair_drops_semantic_violations_and_clamps_ts() {
        let mut events = valid_events();
        events.insert(2, UpdateEvent::insert(0, 1, 1)); // duplicate insert
        events.push(UpdateEvent::insert(4, 5, 1)); // ts regression (hwm 4)
        let mut g = GuardedUpdate::new(EdgeCounter::default(), GuardPolicy::Repair);
        let report = run_guarded_updates(&events, 3, &mut g).unwrap();
        assert_eq!(report.events, 7);
        let stats = g.stats();
        assert_eq!(stats.detections, 2);
        assert_eq!(stats.duplicate_inserts, 1);
        assert_eq!(stats.ts_regressions, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.repaired_ts, 1);
        // The dropped duplicate never reached the inner algorithm; the
        // clamped insert did.
        assert_eq!(g.inner_ref().ops, 6);
        assert_eq!(g.estimate(), 4.0);
    }

    #[test]
    fn observe_counts_but_forwards_everything() {
        let mut events = valid_events();
        events.insert(3, UpdateEvent::delete(0, 1, 2));
        let mut g = GuardedUpdate::new(EdgeCounter::default(), GuardPolicy::Observe);
        run_guarded_updates(&events, 4, &mut g).unwrap();
        assert_eq!(g.stats().detections, 1);
        assert_eq!(g.stats().dead_deletes, 1);
        assert_eq!(g.stats().dropped, 0);
        assert_eq!(g.inner_ref().ops, 6, "all events forwarded");
    }

    #[test]
    fn repair_reconciles_against_fault_plans() {
        use crate::update::{churn, ChurnConfig};
        let g = adjstream_graph::gen::disjoint_cliques(4, 6);
        let stream = churn(
            &g,
            &ChurnConfig {
                churn_events: 150,
                delete_fraction: 0.6,
                seed: 13,
            },
        );
        let plan = UpdateFaultPlan::new(99)
            .with(UpdateFaultKind::DeleteDead, 2)
            .with(UpdateFaultKind::DuplicateInsert, 1)
            .with(UpdateFaultKind::OpFlip, 1)
            .with(UpdateFaultKind::TimestampRegression, 1);
        let corrupted = plan.apply(&stream);
        assert!(corrupted.skipped().is_empty());
        let mut guard = GuardedUpdate::new(EdgeCounter::default(), GuardPolicy::Repair);
        run_guarded_updates(corrupted.events(), 32, &mut guard).unwrap();
        assert_eq!(
            guard.stats().detections,
            corrupted.expected_detections(),
            "stats reconcile with the plan ledger"
        );
        // A clean replay of the same base stream sees zero detections and
        // the same final live count as the repaired corrupted replay.
        let mut clean = GuardedUpdate::new(EdgeCounter::default(), GuardPolicy::Repair);
        run_guarded_updates(stream.events(), 32, &mut clean).unwrap();
        assert_eq!(clean.stats().detections, 0);
    }

    #[test]
    fn checkpoint_round_trips_mid_stream() {
        let events = valid_events();
        let mut g = GuardedUpdate::new(EdgeCounter::default(), GuardPolicy::Repair);
        for ev in &events[..3] {
            g.apply_event(ev).unwrap();
        }
        // EdgeCounter has no Checkpoint impl; use stats-only assertions via
        // a checkpointable inner in the core crate's tests. Here, exercise
        // the frame around a trivial inner.
        struct Null;
        impl SpaceUsage for Null {
            fn space_bytes(&self) -> usize {
                0
            }
        }
        impl UpdateAlgorithm for Null {
            fn insert(&mut self, _e: EdgeKey, _ts: u64) {}
            fn delete(&mut self, _e: EdgeKey, _ts: u64) {}
            fn estimate(&self) -> f64 {
                0.0
            }
        }
        impl Checkpoint for Null {
            fn save(&self, w: &mut dyn Write) -> io::Result<()> {
                write_u8(w, 42)
            }
            fn restore(r: &mut dyn Read) -> io::Result<Self> {
                if read_u8(r)? == 42 {
                    Ok(Null)
                } else {
                    Err(corrupt("bad null payload"))
                }
            }
        }
        let mut g = GuardedUpdate::new(Null, GuardPolicy::Repair);
        for ev in &events[..3] {
            g.apply_event(ev).unwrap();
        }
        let mut buf = Vec::new();
        g.save(&mut buf).unwrap();
        let mut restored: GuardedUpdate<Null> = GuardedUpdate::restore(&mut &buf[..]).unwrap();
        assert_eq!(restored.stats(), g.stats());
        assert_eq!(restored.live_edges(), g.live_edges());
        // The restored guard detects the same violation the original would.
        let bad = UpdateEvent::delete(0, 1, 2);
        restored.apply_event(&bad).unwrap();
        g.apply_event(&bad).unwrap();
        assert_eq!(restored.stats(), g.stats());
        // Truncated payloads are rejected, not panicked on.
        assert!(GuardedUpdate::<Null>::restore(&mut &buf[..buf.len() / 2]).is_err());
    }
}

//! Stream orderings.
//!
//! An adjacency list stream is determined by (a) the order in which vertex
//! adjacency lists appear and (b) the order of neighbors within each list.
//! Both are adversarial in the model, so experiments exercise several
//! layouts; the Section 3 algorithm additionally requires pass 2 to repeat
//! pass 1's order, which replaying the same [`StreamOrder`] guarantees.

use adjstream_graph::VertexId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::hashing::SplitMix64;

/// How neighbors are ordered inside one adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithinListOrder {
    /// Ascending by vertex id (the CSR's native order).
    Sorted,
    /// Descending by vertex id.
    Reversed,
    /// Per-list pseudo-random shuffle derived from this seed and the list's
    /// owner, so replaying the order reproduces the exact same stream.
    Shuffled(u64),
}

/// A complete layout for one pass: the sequence of adjacency lists plus the
/// within-list order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOrder {
    lists: Vec<VertexId>,
    within: WithinListOrder,
}

impl StreamOrder {
    /// Lists in ascending vertex order, neighbors sorted.
    pub fn natural(n: usize) -> Self {
        StreamOrder {
            lists: (0..n as u32).map(VertexId).collect(),
            within: WithinListOrder::Sorted,
        }
    }

    /// Lists in descending vertex order, neighbors descending.
    pub fn reversed(n: usize) -> Self {
        StreamOrder {
            lists: (0..n as u32).rev().map(VertexId).collect(),
            within: WithinListOrder::Reversed,
        }
    }

    /// Uniformly random list order and per-list shuffles, derived
    /// deterministically from `seed`.
    pub fn shuffled(n: usize, seed: u64) -> Self {
        let mut lists: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        lists.shuffle(&mut rng);
        StreamOrder {
            lists,
            within: WithinListOrder::Shuffled(SplitMix64::new(seed).mix(0x5741_7448)),
        }
    }

    /// An explicit, possibly adversarial layout. `lists` must be a
    /// permutation of `0..n` for the graph it is used with; the stream
    /// generator checks this.
    pub fn custom(lists: Vec<VertexId>, within: WithinListOrder) -> Self {
        StreamOrder { lists, within }
    }

    /// The adjacency list sequence.
    pub fn lists(&self) -> &[VertexId] {
        &self.lists
    }

    /// The within-list ordering policy.
    pub fn within(&self) -> WithinListOrder {
        self.within
    }

    /// Arrival position of every vertex: `positions()[v] = i` iff `v`'s list
    /// is the `i`-th to appear. Used by tests and exact reference
    /// computations (streaming algorithms must *not* materialize this).
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![u32::MAX; self.lists.len()];
        for (i, v) in self.lists.iter().enumerate() {
            pos[v.index()] = i as u32;
        }
        pos
    }

    /// Materialize the neighbor order for `owner`'s list given its sorted
    /// CSR neighbors.
    pub(crate) fn arrange_list(&self, owner: VertexId, sorted: &[VertexId]) -> Vec<VertexId> {
        let mut nb = sorted.to_vec();
        match self.within {
            WithinListOrder::Sorted => {}
            WithinListOrder::Reversed => nb.reverse(),
            WithinListOrder::Shuffled(seed) => {
                let mut rng = StdRng::seed_from_u64(SplitMix64::new(seed).mix(owner.0 as u64 + 1));
                nb.shuffle(&mut rng);
            }
        }
        nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_positions() {
        let o = StreamOrder::natural(4);
        assert_eq!(o.positions(), vec![0, 1, 2, 3]);
        assert_eq!(o.lists().len(), 4);
    }

    #[test]
    fn reversed_positions() {
        let o = StreamOrder::reversed(4);
        assert_eq!(o.positions(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn shuffled_is_permutation_and_deterministic() {
        let o1 = StreamOrder::shuffled(50, 9);
        let o2 = StreamOrder::shuffled(50, 9);
        assert_eq!(o1, o2);
        let mut sorted: Vec<u32> = o1.lists().iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let o3 = StreamOrder::shuffled(50, 10);
        assert_ne!(o1, o3);
    }

    #[test]
    fn arrange_list_policies() {
        let owner = VertexId(3);
        let nb: Vec<VertexId> = [1u32, 4, 7, 9].into_iter().map(VertexId).collect();
        let sorted = StreamOrder::natural(10).arrange_list(owner, &nb);
        assert_eq!(sorted, nb);
        let rev = StreamOrder::reversed(10).arrange_list(owner, &nb);
        assert_eq!(rev, nb.iter().rev().copied().collect::<Vec<_>>());
        let sh1 = StreamOrder::shuffled(10, 5).arrange_list(owner, &nb);
        let sh2 = StreamOrder::shuffled(10, 5).arrange_list(owner, &nb);
        assert_eq!(sh1, sh2);
        let mut back = sh1.clone();
        back.sort_unstable();
        assert_eq!(back, nb);
    }
}

//! Edge-list → `.adjb` import: streaming container assembly.
//!
//! [`adjstream_graph::import`] turns a SNAP-style edge list into grouped
//! adjacency lists in bounded memory; this module is the other half — it
//! writes those lists straight into the checksummed `.adjb` container
//! ([`crate::trace`]) without ever materializing the item vector. The pair
//! region is spooled to a temp file while the lists stream through (the
//! item count, which the container's header needs, is only known at the
//! end); finalization then writes magic + version, re-reads the spool
//! through the incremental [`Checksum64`] hasher into the output, appends
//! the run-length region, and seals the payload checksum. Peak memory is
//! the importer's own bound plus `O(lists)` for the run lengths.
//!
//! The output is written atomically (temp file + rename), and its bytes
//! are a pure function of the input text and [`ImportConfig::seed`]: the
//! importer's list order is seed-keyed and bucket-count-independent, and
//! the container encodes nothing else.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use adjstream_graph::import::{import_edge_list, ImportConfig, ImportError, ImportStats};

use crate::hashing::Checksum64;
use crate::trace::{ADJB_MAGIC, ADJB_VERSION};

/// Why an edge-list → `.adjb` import failed.
#[derive(Debug)]
pub enum AdjbImportError {
    /// The parse/grouping phase rejected the input.
    Import(ImportError),
    /// Container assembly I/O failed.
    Io(io::Error),
}

impl std::fmt::Display for AdjbImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdjbImportError::Import(e) => e.fmt(f),
            AdjbImportError::Io(e) => write!(f, "adjb assembly I/O error: {e}"),
        }
    }
}

impl std::error::Error for AdjbImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdjbImportError::Import(e) => Some(e),
            AdjbImportError::Io(e) => Some(e),
        }
    }
}

impl From<ImportError> for AdjbImportError {
    fn from(e: ImportError) -> Self {
        AdjbImportError::Import(e)
    }
}

impl From<io::Error> for AdjbImportError {
    fn from(e: io::Error) -> Self {
        AdjbImportError::Io(e)
    }
}

/// What an import produced.
#[derive(Debug, Clone)]
pub struct ImportReport {
    /// Parse/grouping counters from the importer.
    pub stats: ImportStats,
    /// `original_ids[dense] = raw`: the id densification map.
    pub original_ids: Vec<u64>,
    /// The sealed payload checksum — also the last 8 bytes of the file.
    /// Two imports of the same input with the same seed produce the same
    /// checksum (and the same bytes).
    pub checksum: u64,
    /// Total bytes written to the output file.
    pub bytes_written: u64,
}

/// Import a SNAP-style edge list into a `.adjb` trace at `out`, streaming:
/// the edge set is never held in memory. See the module docs for the
/// assembly pipeline and the determinism contract.
pub fn import_edge_list_to_adjb<R: BufRead>(
    input: R,
    out: &Path,
    cfg: &ImportConfig,
) -> Result<ImportReport, AdjbImportError> {
    // Spool the pair region next to the output so the final copy and the
    // rename stay on one filesystem.
    let spool_path = sibling(out, ".pairs.tmp");
    let tmp_out_path = sibling(out, ".tmp");
    let result = assemble(input, cfg, &spool_path, &tmp_out_path, out);
    let _ = std::fs::remove_file(&spool_path);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_out_path);
    }
    result
}

fn sibling(out: &Path, suffix: &str) -> PathBuf {
    let mut name = out
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "adjb-import".into());
    name.push(suffix);
    out.with_file_name(name)
}

fn assemble<R: BufRead>(
    input: R,
    cfg: &ImportConfig,
    spool_path: &Path,
    tmp_out_path: &Path,
    out: &Path,
) -> Result<ImportReport, AdjbImportError> {
    let spool_file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(spool_path)?;
    let mut spool = BufWriter::new(spool_file);
    let mut run_lens: Vec<u32> = Vec::new();
    let (stats, original_ids) = import_edge_list(input, cfg, |owner, neighbors| {
        let mut rec = [0u8; 8];
        for nb in neighbors {
            rec[..4].copy_from_slice(&owner.0.to_le_bytes());
            rec[4..].copy_from_slice(&nb.0.to_le_bytes());
            spool.write_all(&rec).map_err(ImportError::Io)?;
        }
        // The importer emits each owner exactly once with a non-empty
        // list, so every list is one same-source run.
        run_lens.push(neighbors.len() as u32);
        Ok(())
    })?;

    let mut spool = spool
        .into_inner()
        .map_err(|e| io::Error::from(e.error().kind()))?;
    spool.flush()?;
    spool.seek(SeekFrom::Start(0))?;
    let mut spool = BufReader::new(spool);

    // Payload = items u64 · pairs · runs u64 · run lengths, hashed
    // incrementally while it is written.
    let mut w = BufWriter::new(File::create(tmp_out_path)?);
    let mut hasher = Checksum64::new();
    let mut bytes_written = 0u64;
    let mut emit =
        |w: &mut BufWriter<File>, hasher: &mut Checksum64, bytes: &[u8]| -> io::Result<()> {
            hasher.update(bytes);
            bytes_written += bytes.len() as u64;
            w.write_all(bytes)
        };

    w.write_all(&ADJB_MAGIC)?;
    w.write_all(&ADJB_VERSION.to_le_bytes())?;
    emit(&mut w, &mut hasher, &stats.items.to_le_bytes())?;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = spool.read(&mut buf)?;
        if n == 0 {
            break;
        }
        emit(&mut w, &mut hasher, &buf[..n])?;
    }
    emit(&mut w, &mut hasher, &(run_lens.len() as u64).to_le_bytes())?;
    for len in &run_lens {
        emit(&mut w, &mut hasher, &len.to_le_bytes())?;
    }
    let checksum = hasher.finalize();
    let total = bytes_written + (ADJB_MAGIC.len() + 4 + 8) as u64;
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    w.into_inner()
        .map_err(|e| io::Error::from(e.error().kind()))?
        .sync_all()?;
    std::fs::rename(tmp_out_path, out)?;

    Ok(ImportReport {
        stats,
        original_ids,
        checksum,
        bytes_written: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ItemTrace;
    use crate::validate::validate_stream;
    use adjstream_graph::import::{DupPolicy, SelfLoopPolicy};
    use std::io::Cursor;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adjb-import-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn import_round_trips_through_the_trace_reader() {
        let text = "# snap header\n10 20\n20 30\n30 10\n40 10\n";
        let out = tmp("roundtrip.adjb");
        let report =
            import_edge_list_to_adjb(Cursor::new(text), &out, &ImportConfig::default()).unwrap();
        assert_eq!(report.stats.items, 8);
        assert_eq!(report.original_ids, vec![10, 20, 30, 40]);
        let trace = ItemTrace::read(File::open(&out).unwrap()).unwrap();
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.edges(), 4);
        assert!(validate_stream(trace.items().iter().copied()).is_ok());
        assert_eq!(std::fs::metadata(&out).unwrap().len(), report.bytes_written);
    }

    #[test]
    fn same_input_and_seed_produce_identical_bytes() {
        let text = "1 2\n2 3\n3 4\n4 1\n1 3\n";
        let (a, b, c) = (tmp("det-a.adjb"), tmp("det-b.adjb"), tmp("det-c.adjb"));
        let cfg = ImportConfig {
            buckets: 4,
            ..Default::default()
        };
        let ra = import_edge_list_to_adjb(Cursor::new(text), &a, &cfg).unwrap();
        let rb = import_edge_list_to_adjb(Cursor::new(text), &b, &cfg).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert_eq!(ra.checksum, rb.checksum);
        // A different bucket count must not change a single byte.
        let cfg1 = ImportConfig {
            buckets: 1,
            ..cfg.clone()
        };
        import_edge_list_to_adjb(Cursor::new(text), &c, &cfg1).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&c).unwrap());
        // A different seed permutes the list order (and thus the bytes).
        let cfg2 = ImportConfig { seed: 7, ..cfg };
        import_edge_list_to_adjb(Cursor::new(text), &c, &cfg2).unwrap();
        assert_ne!(std::fs::read(&a).unwrap(), std::fs::read(&c).unwrap());
    }

    #[test]
    fn kept_violations_survive_the_container_round_trip() {
        let text = "1 1\n1 2\n1 2\n";
        let cfg = ImportConfig {
            dups: DupPolicy::Keep,
            self_loops: SelfLoopPolicy::Keep,
            ..Default::default()
        };
        let out = tmp("violations.adjb");
        let report = import_edge_list_to_adjb(Cursor::new(text), &out, &cfg).unwrap();
        assert_eq!(report.stats.items, 5); // loop + 2×(1→2) + 2×(2→1)
        let trace = ItemTrace::read_unchecked(File::open(&out).unwrap()).unwrap();
        assert_eq!(trace.len(), 5);
        assert!(validate_stream(trace.items().iter().copied()).is_err());
    }

    #[test]
    fn failed_imports_leave_no_output_file() {
        let out = tmp("failed.adjb");
        let err = import_edge_list_to_adjb(
            Cursor::new("1 2\nbroken line\n"),
            &out,
            &ImportConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, AdjbImportError::Import(_)));
        assert!(!out.exists());
    }
}

//! Stream items.

use adjstream_graph::{EdgeKey, VertexId};

/// One element of an adjacency list stream: the ordered pair `xy`, meaning
/// "`y` occurs in the adjacency list of `x`".
///
/// Every undirected edge `{x, y}` contributes two items over the course of a
/// pass: `xy` inside `x`'s list and `yx` inside `y`'s list.
///
/// `repr(C)` pins the layout to two consecutive `u32`s (`src` then `dst`),
/// exactly the on-disk pair encoding of the `.adjb` container, so
/// little-endian targets can reinterpret a mapped pair region as
/// `&[StreamItem]` instead of decoding it pair by pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct StreamItem {
    /// The vertex whose adjacency list this item belongs to.
    pub src: VertexId,
    /// The neighbor being reported.
    pub dst: VertexId,
}

impl StreamItem {
    /// Construct an item. A self-loop (`src == dst`) is representable so the
    /// validator can *reject* malformed streams, but [`StreamItem::edge`]
    /// panics on one in debug builds.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        StreamItem { src, dst }
    }

    /// Canonical key of the underlying undirected edge.
    #[inline]
    pub fn edge(self) -> EdgeKey {
        EdgeKey::new(self.src, self.dst)
    }

    /// The reversed item `yx` (the edge's other appearance).
    #[inline]
    pub fn reversed(self) -> Self {
        StreamItem {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl std::fmt::Debug for StreamItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→{}", self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        let a = StreamItem::new(VertexId(5), VertexId(2));
        let b = a.reversed();
        assert_eq!(a.edge(), b.edge());
        assert_eq!(b.src, VertexId(2));
        assert_eq!(b.reversed(), a);
    }
}

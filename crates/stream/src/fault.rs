//! Deterministic, seed-driven fault injection for adjacency list streams.
//!
//! Robustness claims are only testable if malformed inputs are *replayable*:
//! a [`FaultPlan`] describes which promise violations to inject and is fully
//! determined by a `u64` seed, so any failing case reproduces from two
//! numbers (seed, plan). Plans compose — request several fault kinds and
//! counts — and [`FaultPlan::apply`] returns a [`CorruptedStream`] that
//! records every injection along with the number of validator detections it
//! is expected to cause, so tests can reconcile a
//! [`GuardStats`](crate::runner::GuardStats) against the plan exactly.
//!
//! Faults are applied in a fixed canonical order (truncate, corrupt, drop,
//! duplicate, self-loop, split, reorder) chosen so the expected-detection
//! arithmetic of one fault is not silently altered by another; a fault whose
//! preconditions cannot be met (e.g. splitting when only one list exists) is
//! recorded in [`CorruptedStream::skipped`] rather than injected partially.

use std::collections::{HashMap, HashSet};

use adjstream_graph::VertexId;

use crate::hashing::SplitMix64;
use crate::item::StreamItem;
use crate::runner::{run_item_passes, MultiPassAlgorithm, RunError, RunReport};
use crate::validate::pack_edge;

/// The classes of promise violation a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Remove one direction of an edge → `MissingReverse` for the survivor.
    DropDirection,
    /// Repeat an item inside its list → `DuplicateNeighbor`.
    DuplicateItem,
    /// Move a list suffix elsewhere in the stream → `ListNotContiguous`,
    /// plus one `MissingReverse` per displaced item once the segment is
    /// dropped.
    SplitList,
    /// Insert `vv` inside `v`'s list → `SelfLoop`.
    InjectSelfLoop,
    /// Rewrite one item's neighbor to a fresh vertex id → two
    /// `MissingReverse` (the orphaned original reverse and the fabricated
    /// edge).
    CorruptVertex,
    /// Drop a run of items from the end of the stream → one
    /// `MissingReverse` per half-dropped edge.
    TruncateTail,
    /// Swap two adjacent lists in the replay used for passes ≥ 2 →
    /// `PassOrderChanged` for order-sensitive algorithms.
    ReorderPass,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::DropDirection => "drop-direction",
            FaultKind::DuplicateItem => "duplicate-item",
            FaultKind::SplitList => "split-list",
            FaultKind::InjectSelfLoop => "self-loop",
            FaultKind::CorruptVertex => "corrupt-vertex",
            FaultKind::TruncateTail => "truncate-tail",
            FaultKind::ReorderPass => "reorder-pass",
        };
        f.write_str(s)
    }
}

impl FaultKind {
    /// Parse the CLI spelling produced by [`Display`](std::fmt::Display).
    pub fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "drop-direction" => FaultKind::DropDirection,
            "duplicate-item" => FaultKind::DuplicateItem,
            "split-list" => FaultKind::SplitList,
            "self-loop" => FaultKind::InjectSelfLoop,
            "corrupt-vertex" => FaultKind::CorruptVertex,
            "truncate-tail" => FaultKind::TruncateTail,
            "reorder-pass" => FaultKind::ReorderPass,
            _ => return None,
        })
    }

    /// Every fault kind, in canonical application order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::TruncateTail,
        FaultKind::CorruptVertex,
        FaultKind::DropDirection,
        FaultKind::DuplicateItem,
        FaultKind::InjectSelfLoop,
        FaultKind::SplitList,
        FaultKind::ReorderPass,
    ];
}

/// A seeded, composable recipe of promise violations.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    counts: HashMap<FaultKind, usize>,
}

impl FaultPlan {
    /// An empty plan drawing all randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            counts: HashMap::new(),
        }
    }

    /// Request `count` more injections of `kind` (builder style).
    pub fn with(mut self, kind: FaultKind, count: usize) -> Self {
        *self.counts.entry(kind).or_insert(0) += count;
        self
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of injections requested for `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total injections requested.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Corrupt `items` (a valid stream) according to the plan.
    pub fn apply(&self, items: &[StreamItem]) -> CorruptedStream {
        Injector::new(self, items.to_vec()).run()
    }
}

/// One successfully injected fault.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// Detections an exact validator is expected to raise for this fault
    /// (counting the end-of-pass `MissingReverse` cascade of dropped
    /// segments, see the per-kind docs on [`FaultKind`]).
    pub expected_detections: usize,
    /// Human-readable account (vertices/positions involved).
    pub description: String,
}

/// A corrupted stream plus the ledger of what was done to it.
#[derive(Debug, Clone)]
pub struct CorruptedStream {
    items: Vec<StreamItem>,
    reordered: Option<Vec<StreamItem>>,
    injected: Vec<InjectedFault>,
    skipped: Vec<FaultKind>,
}

impl CorruptedStream {
    /// The corrupted item sequence (as seen by pass 1).
    pub fn items(&self) -> &[StreamItem] {
        &self.items
    }

    /// The item sequence replayed in pass `pass` (differs from
    /// [`items`](Self::items) only when a [`FaultKind::ReorderPass`] fault
    /// was injected and `pass ≥ 1`).
    pub fn items_for_pass(&self, pass: usize) -> &[StreamItem] {
        match (&self.reordered, pass) {
            (Some(r), p) if p > 0 => r,
            _ => &self.items,
        }
    }

    /// Ledger of injected faults.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// Requested faults whose preconditions the stream could not meet.
    pub fn skipped(&self) -> &[FaultKind] {
        &self.skipped
    }

    /// Sum of per-fault expected detections.
    pub fn expected_detections(&self) -> usize {
        self.injected.iter().map(|f| f.expected_detections).sum()
    }

    /// Drive `algo` over the corrupted stream (per-pass replay included),
    /// degrading to a typed error rather than panicking.
    pub fn try_run<A: MultiPassAlgorithm>(
        &self,
        algo: A,
    ) -> Result<(A::Output, RunReport), RunError> {
        run_item_passes(algo, |pass| self.items_for_pass(pass).iter().copied())
    }
}

/// Working state of one `FaultPlan::apply` call.
struct Injector<'p> {
    plan: &'p FaultPlan,
    rng: SplitMix64,
    items: Vec<StreamItem>,
    /// Canonical edges already consumed by drop/corrupt faults.
    used_edges: HashSet<u64>,
    /// List owners already targeted by duplicate/self-loop/split faults.
    touched_lists: HashSet<u32>,
    fresh_id: u32,
    injected: Vec<InjectedFault>,
    skipped: Vec<FaultKind>,
}

impl<'p> Injector<'p> {
    fn new(plan: &'p FaultPlan, items: Vec<StreamItem>) -> Self {
        let fresh_id = items
            .iter()
            .map(|i| i.src.0.max(i.dst.0))
            .max()
            .map_or(0, |m| m.saturating_add(1));
        Injector {
            plan,
            rng: SplitMix64::new(plan.seed),
            items,
            used_edges: HashSet::new(),
            touched_lists: HashSet::new(),
            fresh_id,
            injected: Vec::new(),
            skipped: Vec::new(),
        }
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.rng.next_u64() % n as u64) as usize
    }

    /// Contiguous runs of equal source: `(owner, start, end_exclusive)`.
    fn lists(&self) -> Vec<(VertexId, usize, usize)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.items.len() {
            let owner = self.items[i].src;
            let start = i;
            while i < self.items.len() && self.items[i].src == owner {
                i += 1;
            }
            out.push((owner, start, i));
        }
        out
    }

    /// How many directions of each canonical edge are currently present.
    fn edge_counts(&self) -> HashMap<u64, usize> {
        let mut c = HashMap::new();
        for it in &self.items {
            *c.entry(pack_edge(it.src, it.dst)).or_insert(0) += 1;
        }
        c
    }

    /// Pick an item index whose edge still has both directions present and
    /// was not already targeted. `None` when no candidate survives 64 draws.
    fn pick_intact_item(&mut self) -> Option<usize> {
        if self.items.is_empty() {
            return None;
        }
        let counts = self.edge_counts();
        for _ in 0..64 {
            let i = self.below(self.items.len());
            let key = pack_edge(self.items[i].src, self.items[i].dst);
            if counts.get(&key) == Some(&2) && !self.used_edges.contains(&key) {
                return Some(i);
            }
        }
        None
    }

    fn run(mut self) -> CorruptedStream {
        for kind in FaultKind::ALL {
            for _ in 0..self.plan.count(kind) {
                let ok = match kind {
                    FaultKind::TruncateTail => self.truncate_tail(),
                    FaultKind::CorruptVertex => self.corrupt_vertex(),
                    FaultKind::DropDirection => self.drop_direction(),
                    FaultKind::DuplicateItem => self.duplicate_item(),
                    FaultKind::InjectSelfLoop => self.inject_self_loop(),
                    FaultKind::SplitList => self.split_list(),
                    FaultKind::ReorderPass => true, // handled after the loop
                };
                if !ok {
                    self.skipped.push(kind);
                }
            }
        }
        let reordered = if self.plan.count(FaultKind::ReorderPass) > 0 {
            self.reorder_replay()
        } else {
            None
        };
        CorruptedStream {
            items: self.items,
            reordered,
            injected: self.injected,
            skipped: self.skipped,
        }
    }

    fn record(&mut self, kind: FaultKind, expected_detections: usize, description: String) {
        self.injected.push(InjectedFault {
            kind,
            expected_detections,
            description,
        });
    }

    fn truncate_tail(&mut self) -> bool {
        if self.items.len() < 2 {
            return false;
        }
        let max_cut = (self.items.len() / 10).max(1);
        let k = 1 + self.below(max_cut);
        let cut = self.items.len() - k;
        self.items.truncate(cut);
        // Half-dropped edges: directions remaining odd after the cut.
        let widowed = self.edge_counts().values().filter(|&&c| c == 1).count();
        self.record(
            FaultKind::TruncateTail,
            widowed,
            format!("truncated {k} tail items ({widowed} edges lost one direction)"),
        );
        true
    }

    fn corrupt_vertex(&mut self) -> bool {
        let Some(i) = self.pick_intact_item() else {
            return false;
        };
        let old = self.items[i];
        let w = VertexId(self.fresh_id);
        self.fresh_id = self.fresh_id.saturating_add(1);
        self.items[i] = StreamItem::new(old.src, w);
        self.used_edges.insert(pack_edge(old.src, old.dst));
        self.used_edges.insert(pack_edge(old.src, w));
        self.record(
            FaultKind::CorruptVertex,
            2,
            format!(
                "item {i}: rewrote {}→{} as {}→{}",
                old.src, old.dst, old.src, w
            ),
        );
        true
    }

    fn drop_direction(&mut self) -> bool {
        let Some(i) = self.pick_intact_item() else {
            return false;
        };
        let victim = self.items.remove(i);
        self.used_edges.insert(pack_edge(victim.src, victim.dst));
        self.record(
            FaultKind::DropDirection,
            1,
            format!("dropped {}→{} (item {i})", victim.src, victim.dst),
        );
        true
    }

    fn duplicate_item(&mut self) -> bool {
        if self.items.is_empty() {
            return false;
        }
        let candidates: Vec<usize> = (0..self.items.len())
            .filter(|&i| !self.touched_lists.contains(&self.items[i].src.0))
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[self.below(candidates.len())];
        let copy = self.items[i];
        self.items.insert(i + 1, copy);
        self.touched_lists.insert(copy.src.0);
        self.record(
            FaultKind::DuplicateItem,
            1,
            format!("duplicated {}→{} at item {}", copy.src, copy.dst, i + 1),
        );
        true
    }

    fn inject_self_loop(&mut self) -> bool {
        let lists = self.lists();
        let candidates: Vec<&(VertexId, usize, usize)> = lists
            .iter()
            .filter(|(o, _, _)| !self.touched_lists.contains(&o.0))
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let &&(owner, start, end) = &candidates[self.below(candidates.len())];
        // Insert strictly inside or at the end of the run so the run stays
        // one contiguous block of `owner`.
        let pos = start + 1 + self.below(end - start);
        self.items.insert(pos, StreamItem::new(owner, owner));
        self.touched_lists.insert(owner.0);
        self.record(
            FaultKind::InjectSelfLoop,
            1,
            format!("inserted self-loop {owner}→{owner} at item {pos}"),
        );
        true
    }

    fn split_list(&mut self) -> bool {
        let lists = self.lists();
        if lists.len() < 2 {
            return false;
        }
        let last_owner = lists.last().unwrap().0;
        let candidates: Vec<&(VertexId, usize, usize)> = lists
            .iter()
            .filter(|(o, s, e)| e - s >= 2 && !self.touched_lists.contains(&o.0))
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let &&(owner, start, end) = &candidates[self.below(candidates.len())];
        let split_at = start + 1 + self.below(end - start - 1);
        let suffix: Vec<StreamItem> = self.items.drain(split_at..end).collect();
        let n = suffix.len();
        // The *resumption* — the segment a repairing guard drops — is
        // whichever part of the list comes second in the corrupted stream.
        let (detect_at, displaced);
        if owner == last_owner {
            // Move the suffix to the front; the original prefix, later in
            // the stream, becomes the non-contiguous resumption.
            detect_at = n + start;
            displaced = split_at - start;
            for (k, it) in suffix.into_iter().enumerate() {
                self.items.insert(k, it);
            }
        } else {
            // Move the suffix to the very end; the suffix is the
            // resumption.
            detect_at = self.items.len();
            displaced = n;
            self.items.extend(suffix);
        }
        self.touched_lists.insert(owner.0);
        // One contiguity detection plus, once the displaced segment is
        // dropped by a repairing guard, one MissingReverse per displaced
        // item whose partner stayed behind.
        self.record(
            FaultKind::SplitList,
            1 + displaced,
            format!("split list of {owner}: {displaced} displaced items, resumption at item {detect_at}"),
        );
        true
    }

    fn reorder_replay(&mut self) -> Option<Vec<StreamItem>> {
        let lists = self.lists();
        if lists.len() < 2 {
            self.skipped.push(FaultKind::ReorderPass);
            return None;
        }
        let i = self.below(lists.len() - 1);
        let (a, b) = (lists[i], lists[i + 1]);
        let mut replay = Vec::with_capacity(self.items.len());
        replay.extend_from_slice(&self.items[..a.1]);
        replay.extend_from_slice(&self.items[b.1..b.2]);
        replay.extend_from_slice(&self.items[a.1..a.2]);
        replay.extend_from_slice(&self.items[b.2..]);
        self.record(
            FaultKind::ReorderPass,
            1,
            format!(
                "passes ≥ 2 replay lists {} and {} swapped (list indices {i}, {})",
                a.0,
                b.0,
                i + 1
            ),
        );
        Some(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::order::StreamOrder;
    use crate::validate::{validate_stream, StreamError};
    use adjstream_graph::gen;

    fn clean_items(n: usize, m: usize, seed: u64) -> Vec<StreamItem> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnm(n, m, &mut rng);
        AdjListStream::new(&g, StreamOrder::shuffled(n, seed ^ 1)).collect_items()
    }

    #[test]
    fn plans_are_replayable() {
        let items = clean_items(20, 60, 3);
        let plan = FaultPlan::new(42)
            .with(FaultKind::DropDirection, 2)
            .with(FaultKind::InjectSelfLoop, 1);
        let a = plan.apply(&items);
        let b = plan.apply(&items);
        assert_eq!(a.items(), b.items());
        assert_eq!(a.injected().len(), b.injected().len());
        assert_eq!(a.injected().len(), 3);
        assert!(a.skipped().is_empty());
    }

    #[test]
    fn different_seeds_give_different_corruption() {
        let items = clean_items(20, 60, 3);
        let a = FaultPlan::new(1)
            .with(FaultKind::DropDirection, 1)
            .apply(&items);
        let b = FaultPlan::new(2)
            .with(FaultKind::DropDirection, 1)
            .apply(&items);
        // Not guaranteed in general, but these seeds pick different items.
        assert_ne!(a.items(), b.items());
    }

    #[test]
    fn empty_plan_is_identity() {
        let items = clean_items(15, 40, 9);
        let c = FaultPlan::new(7).apply(&items);
        assert_eq!(c.items(), &items[..]);
        assert!(c.injected().is_empty());
        assert_eq!(c.expected_detections(), 0);
        assert_eq!(c.items_for_pass(1), c.items());
    }

    #[test]
    fn each_kind_breaks_validation_with_the_right_error() {
        type ErrCheck = fn(&StreamError) -> bool;
        let items = clean_items(24, 70, 11);
        let expect: [(FaultKind, ErrCheck); 5] = [
            (FaultKind::DropDirection, |e| {
                matches!(e, StreamError::MissingReverse { .. })
            }),
            (FaultKind::DuplicateItem, |e| {
                matches!(e, StreamError::DuplicateNeighbor { .. })
            }),
            (FaultKind::SplitList, |e| {
                matches!(e, StreamError::ListNotContiguous { .. })
            }),
            (FaultKind::InjectSelfLoop, |e| {
                matches!(e, StreamError::SelfLoop { .. })
            }),
            (FaultKind::CorruptVertex, |e| {
                matches!(e, StreamError::MissingReverse { .. })
            }),
        ];
        for (kind, check) in expect {
            for seed in 0..5 {
                let c = FaultPlan::new(seed).with(kind, 1).apply(&items);
                assert!(c.skipped().is_empty(), "{kind} skipped at seed {seed}");
                let err = validate_stream(c.items().iter().copied())
                    .expect_err(&format!("{kind} seed {seed} should invalidate"));
                assert!(check(&err), "{kind} seed {seed} gave {err}");
            }
        }
    }

    #[test]
    fn truncate_tail_detections_match_validator() {
        for seed in 0..8 {
            let items = clean_items(18, 50, seed + 100);
            let c = FaultPlan::new(seed)
                .with(FaultKind::TruncateTail, 1)
                .apply(&items);
            let widowed = c.expected_detections();
            // Count unmatched directions directly.
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for it in c.items() {
                *counts.entry(pack_edge(it.src, it.dst)).or_insert(0) += 1;
            }
            let actual = counts.values().filter(|&&v| v == 1).count();
            assert_eq!(widowed, actual, "seed {seed}");
        }
    }

    #[test]
    fn reorder_replay_permutes_lists_only() {
        let items = clean_items(16, 40, 21);
        let c = FaultPlan::new(5)
            .with(FaultKind::ReorderPass, 1)
            .apply(&items);
        assert!(c.skipped().is_empty());
        // Pass 0 untouched; replay is a permutation of the same items.
        assert_eq!(c.items_for_pass(0), &items[..]);
        let replay = c.items_for_pass(1);
        assert_ne!(replay, &items[..]);
        let mut a = items.clone();
        let mut b = replay.to_vec();
        a.sort_by_key(|i| (i.src.0, i.dst.0));
        b.sort_by_key(|i| (i.src.0, i.dst.0));
        assert_eq!(a, b);
        // The replay is still a valid adjacency-list stream on its own.
        assert!(validate_stream(replay.iter().copied()).is_ok());
    }

    #[test]
    fn composed_plans_account_for_all_faults() {
        let items = clean_items(40, 200, 33);
        let plan = FaultPlan::new(77)
            .with(FaultKind::DropDirection, 3)
            .with(FaultKind::DuplicateItem, 2)
            .with(FaultKind::InjectSelfLoop, 2)
            .with(FaultKind::CorruptVertex, 1);
        let c = plan.apply(&items);
        assert!(c.skipped().is_empty());
        assert_eq!(c.injected().len(), 8);
        // 3×1 + 2×1 + 2×1 + 1×2
        assert_eq!(c.expected_detections(), 9);
    }
}

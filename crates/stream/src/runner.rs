//! Driving multi-pass algorithms over adjacency list streams.

use adjstream_graph::{Graph, VertexId};

use crate::adjlist::AdjListStream;
use crate::meter::{PeakTracker, SpaceUsage};
use crate::order::StreamOrder;

/// A streaming algorithm taking one or more passes over an adjacency list
/// stream.
///
/// The driver announces list boundaries because the model makes them
/// observable: a list boundary is exactly a change of the source vertex in
/// the item sequence, which any algorithm can detect with `O(log n)` state.
/// Receiving explicit `begin_list`/`end_list` calls keeps each algorithm free
/// of that boilerplate without granting it any extra power.
pub trait MultiPassAlgorithm: SpaceUsage {
    /// What the algorithm returns after its final pass.
    type Output;

    /// Number of passes required.
    fn passes(&self) -> usize;

    /// Whether later passes must replay pass 1's order (true for the
    /// Section 3 triangle algorithm, false for the Section 4 4-cycle one).
    fn requires_same_order(&self) -> bool {
        false
    }

    /// Called once at the start of pass `pass` (0-based).
    fn begin_pass(&mut self, pass: usize);

    /// A new adjacency list (owned by `owner`) is starting.
    fn begin_list(&mut self, owner: VertexId) {
        let _ = owner;
    }

    /// One stream item `src → dst` (always within `src`'s list).
    fn item(&mut self, src: VertexId, dst: VertexId);

    /// The current adjacency list (owned by `owner`) ended.
    fn end_list(&mut self, owner: VertexId) {
        let _ = owner;
    }

    /// The current pass ended.
    fn end_pass(&mut self, pass: usize) {
        let _ = pass;
    }

    /// Consume the algorithm and produce its output.
    fn finish(self) -> Self::Output;
}

/// Stream layouts for each pass.
#[derive(Debug, Clone)]
pub enum PassOrders {
    /// Every pass replays the same layout.
    Same(StreamOrder),
    /// One layout per pass (length must equal the algorithm's pass count).
    PerPass(Vec<StreamOrder>),
}

impl PassOrders {
    fn order_for(&self, pass: usize) -> &StreamOrder {
        match self {
            PassOrders::Same(o) => o,
            PassOrders::PerPass(os) => &os[pass],
        }
    }

    fn is_same_order(&self) -> bool {
        match self {
            PassOrders::Same(_) => true,
            PassOrders::PerPass(os) => os.windows(2).all(|w| w[0] == w[1]),
        }
    }
}

/// Execution summary of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// High-water mark of the algorithm's reported state, in bytes, sampled
    /// at every adjacency-list boundary.
    pub peak_state_bytes: usize,
    /// Total stream items processed across all passes.
    pub items_processed: usize,
    /// Number of passes executed.
    pub passes: usize,
}

/// Drives algorithms over graphs and records space usage.
#[derive(Debug, Default, Clone, Copy)]
pub struct Runner;

impl Runner {
    /// Run `algo` to completion over `graph` streamed per `orders`.
    ///
    /// Panics if the algorithm requires identical pass orders and `orders`
    /// provides differing ones — that would silently violate the algorithm's
    /// correctness contract.
    pub fn run<A: MultiPassAlgorithm>(
        graph: &Graph,
        mut algo: A,
        orders: &PassOrders,
    ) -> (A::Output, RunReport) {
        if algo.requires_same_order() {
            assert!(
                orders.is_same_order(),
                "algorithm requires identical pass orders"
            );
        }
        if let PassOrders::PerPass(os) = orders {
            assert_eq!(os.len(), algo.passes(), "one order per pass required");
        }
        let mut peak = PeakTracker::new();
        let mut items = 0usize;
        let passes = algo.passes();
        for pass in 0..passes {
            let stream = AdjListStream::new(graph, orders.order_for(pass).clone());
            algo.begin_pass(pass);
            for (owner, neighbors) in stream.lists() {
                algo.begin_list(owner);
                for w in neighbors {
                    algo.item(owner, w);
                    items += 1;
                }
                algo.end_list(owner);
                peak.observe(algo.space_bytes());
            }
            algo.end_pass(pass);
            peak.observe(algo.space_bytes());
        }
        (
            algo.finish(),
            RunReport {
                peak_state_bytes: peak.peak(),
                items_processed: items,
                passes,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;

    /// Counts edges (items / 2) in one pass; state is one counter.
    struct EdgeCounter {
        items: usize,
    }

    impl SpaceUsage for EdgeCounter {
        fn space_bytes(&self) -> usize {
            std::mem::size_of::<usize>()
        }
    }

    impl MultiPassAlgorithm for EdgeCounter {
        type Output = usize;
        fn passes(&self) -> usize {
            1
        }
        fn begin_pass(&mut self, _pass: usize) {}
        fn item(&mut self, _src: VertexId, _dst: VertexId) {
            self.items += 1;
        }
        fn finish(self) -> usize {
            self.items / 2
        }
    }

    /// Records per-pass list boundary sequences to verify replay semantics.
    struct BoundaryRecorder {
        passes: usize,
        same_order: bool,
        seen: Vec<Vec<VertexId>>,
    }

    impl SpaceUsage for BoundaryRecorder {
        fn space_bytes(&self) -> usize {
            self.seen.iter().map(|v| v.len() * 4).sum()
        }
    }

    impl MultiPassAlgorithm for BoundaryRecorder {
        type Output = Vec<Vec<VertexId>>;
        fn passes(&self) -> usize {
            self.passes
        }
        fn requires_same_order(&self) -> bool {
            self.same_order
        }
        fn begin_pass(&mut self, _pass: usize) {
            self.seen.push(Vec::new());
        }
        fn item(&mut self, _src: VertexId, _dst: VertexId) {}
        fn begin_list(&mut self, owner: VertexId) {
            self.seen.last_mut().unwrap().push(owner);
        }
        fn finish(self) -> Self::Output {
            self.seen
        }
    }

    #[test]
    fn edge_counter_counts() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(40, 111, &mut rng);
        let (m, report) = Runner::run(
            &g,
            EdgeCounter { items: 0 },
            &PassOrders::Same(StreamOrder::shuffled(40, 3)),
        );
        assert_eq!(m, 111);
        assert_eq!(report.items_processed, 222);
        assert_eq!(report.passes, 1);
        assert_eq!(report.peak_state_bytes, 8);
    }

    #[test]
    fn same_order_replays_identically() {
        let g = gen::complete(6);
        let (seen, _) = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: true,
                seen: Vec::new(),
            },
            &PassOrders::Same(StreamOrder::shuffled(6, 17)),
        );
        assert_eq!(seen[0], seen[1]);
    }

    #[test]
    fn per_pass_orders_differ() {
        let g = gen::complete(6);
        let (seen, _) = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: false,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(6), StreamOrder::reversed(6)]),
        );
        assert_ne!(seen[0], seen[1]);
        assert_eq!(seen[0], seen[1].iter().rev().copied().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "identical pass orders")]
    fn same_order_requirement_is_enforced() {
        let g = gen::complete(4);
        let _ = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: true,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(4), StreamOrder::reversed(4)]),
        );
    }

    #[test]
    #[should_panic(expected = "one order per pass")]
    fn per_pass_length_is_enforced() {
        let g = gen::complete(4);
        let _ = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: false,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(4)]),
        );
    }
}

//! Driving multi-pass algorithms over adjacency list streams.
//!
//! All entry points — [`Runner`] for generated streams, [`run_item_passes`]
//! for raw per-pass item sequences, and [`crate::trace::ItemTrace`] for
//! validated traces — share one pass driver, [`drive_pass`]: it detects list
//! boundaries, announces them to the algorithm, samples peak state at every
//! boundary, and aborts with a typed [`RunError`] if the algorithm (e.g. a
//! [`crate::guard::Guarded`] wrapper in strict mode) reports a fatal stream
//! violation. The panicking entry points are thin wrappers over the fallible
//! ones.

use adjstream_graph::{Graph, VertexId};

use crate::adjlist::AdjListStream;
use crate::item::StreamItem;
use crate::meter::{PeakTracker, SpaceUsage};
use crate::obs::{Metrics, MetricsSnapshot, ObsCounters, RunObserver};
use crate::order::StreamOrder;
use crate::validate::StreamError;

/// A streaming algorithm taking one or more passes over an adjacency list
/// stream.
///
/// The driver announces list boundaries because the model makes them
/// observable: a list boundary is exactly a change of the source vertex in
/// the item sequence, which any algorithm can detect with `O(log n)` state.
/// Receiving explicit `begin_list`/`end_list` calls keeps each algorithm free
/// of that boilerplate without granting it any extra power.
pub trait MultiPassAlgorithm: SpaceUsage {
    /// What the algorithm returns after its final pass.
    type Output;

    /// Number of passes required.
    fn passes(&self) -> usize;

    /// Whether later passes must replay pass 1's order (true for the
    /// Section 3 triangle algorithm, false for the Section 4 4-cycle one).
    fn requires_same_order(&self) -> bool {
        false
    }

    /// Called once at the start of pass `pass` (0-based).
    fn begin_pass(&mut self, pass: usize);

    /// A new adjacency list (owned by `owner`) is starting.
    fn begin_list(&mut self, owner: VertexId) {
        let _ = owner;
    }

    /// One stream item `src → dst` (always within `src`'s list).
    fn item(&mut self, src: VertexId, dst: VertexId);

    /// A run of consecutive items sharing one source vertex, delivered
    /// between that list's `begin_list` and `end_list`.
    ///
    /// Contract: every element of `items` has the same `src`, and `items`
    /// is exactly the contiguous stretch of the current list the driver
    /// chose to batch (drivers deliver whole lists, but implementations
    /// must not assume that — a repair guard may forward a list in
    /// several admitted segments). The default delegates to
    /// [`item`](Self::item) per element, so per-item and slice dispatch
    /// are observationally identical for every implementation; algorithms
    /// with a cheaper batched path (e.g. one hash probe per run instead
    /// of per item) override it.
    fn feed_slice(&mut self, items: &[StreamItem]) {
        for it in items {
            self.item(it.src, it.dst);
        }
    }

    /// The current adjacency list (owned by `owner`) ended.
    fn end_list(&mut self, owner: VertexId) {
        let _ = owner;
    }

    /// The current pass ended.
    fn end_pass(&mut self, pass: usize) {
        let _ = pass;
    }

    /// A fatal stream violation this algorithm wants the run aborted for.
    ///
    /// Fallible drivers poll this after every item and pass boundary; a
    /// `Some` stops the run with [`RunError::Invalid`]. Plain algorithms
    /// never abort (the default); [`crate::guard::Guarded`] overrides this
    /// to surface validation failures under the strict policy.
    fn abort_error(&self) -> Option<StreamError> {
        None
    }

    /// A run-level (not stream-level) reason to abort, polled at the same
    /// points as [`abort_error`](Self::abort_error) and returned verbatim.
    ///
    /// Plain algorithms never abort (the default). The batched engine's
    /// fan-out overrides this to surface deadline expiry and aggregate
    /// space-budget violations, which are properties of the *execution*,
    /// not of the stream.
    fn abort_run(&self) -> Option<RunError> {
        None
    }

    /// Ingestion-guard statistics to publish in the [`RunReport`], if this
    /// algorithm collects any (see [`crate::guard::Guarded`]).
    fn guard_stats(&self) -> Option<GuardStats> {
        None
    }

    /// Sampler/watcher lifecycle counters to publish in a
    /// [`MetricsSnapshot`], if this algorithm accumulates any.
    ///
    /// The counters must be deterministic properties of the run —
    /// maintained whether or not a metrics sink is attached — so
    /// observability can never change what a run computes. Wrappers
    /// ([`crate::guard::Guarded`], multi-level fan-outs) delegate or merge.
    fn obs_counters(&self) -> Option<ObsCounters> {
        None
    }

    /// Consume the algorithm and produce its output.
    fn finish(self) -> Self::Output;
}

/// Stream layouts for each pass.
#[derive(Debug, Clone)]
pub enum PassOrders {
    /// Every pass replays the same layout.
    Same(StreamOrder),
    /// One layout per pass (length must equal the algorithm's pass count).
    PerPass(Vec<StreamOrder>),
}

impl PassOrders {
    pub(crate) fn order_for(&self, pass: usize) -> &StreamOrder {
        match self {
            PassOrders::Same(o) => o,
            PassOrders::PerPass(os) => &os[pass],
        }
    }

    pub(crate) fn is_same_order(&self) -> bool {
        match self {
            PassOrders::Same(_) => true,
            PassOrders::PerPass(os) => os.windows(2).all(|w| w[0] == w[1]),
        }
    }

    /// Check this layout against an algorithm's pass contract: a
    /// [`PassOrders::PerPass`] list must have one order per pass, and an
    /// algorithm that [requires identical pass
    /// orders](MultiPassAlgorithm::requires_same_order) must not be given
    /// differing ones. Shared by [`Runner`] and the batched engine
    /// ([`crate::batch::BatchRunner`]).
    pub fn check(&self, passes: usize, requires_same_order: bool) -> Result<(), RunError> {
        if requires_same_order && !self.is_same_order() {
            return Err(RunError::OrderMismatch);
        }
        if let PassOrders::PerPass(os) = self {
            if os.len() != passes {
                return Err(RunError::WrongOrderCount {
                    expected: passes,
                    got: os.len(),
                });
            }
        }
        Ok(())
    }
}

/// Why a fallible run stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The algorithm requires identical pass orders but the supplied orders
    /// differ.
    OrderMismatch,
    /// [`PassOrders::PerPass`] length does not match the pass count.
    WrongOrderCount {
        /// Passes the algorithm takes.
        expected: usize,
        /// Orders supplied.
        got: usize,
    },
    /// The stream violated the adjacency-list promise (reported by a
    /// guarded algorithm running under the strict policy).
    Invalid {
        /// 0-based pass the violation surfaced in.
        pass: usize,
        /// The violation itself (carries the item position when one exists).
        error: StreamError,
    },
    /// A batched run was given no instances to drive.
    EmptyBatch,
    /// A batched run's instances disagree on their pass contract (pass
    /// count or same-order requirement); one shared stream cannot serve
    /// them all.
    MixedPassContracts,
    /// The run's wall-clock deadline expired before the final pass
    /// completed.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// The live state summed across all batch instances exceeded the
    /// aggregate space budget at a pass boundary.
    SpaceBudgetExceeded {
        /// Bytes in use across live instances when the check fired.
        used: usize,
        /// The configured aggregate limit in bytes.
        limit: usize,
    },
    /// A checkpoint could not be written, read, or applied.
    Checkpoint {
        /// Human-readable description of the checkpoint failure.
        message: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::OrderMismatch => write!(f, "algorithm requires identical pass orders"),
            RunError::WrongOrderCount { expected, got } => {
                write!(
                    f,
                    "one order per pass required: expected {expected}, got {got}"
                )
            }
            RunError::Invalid { pass, error } => {
                write!(f, "invalid stream in pass {}: {error}", pass + 1)
            }
            RunError::EmptyBatch => write!(f, "batch has no instances to run"),
            RunError::MixedPassContracts => {
                write!(f, "batch instances must share one pass contract")
            }
            RunError::DeadlineExceeded { limit_ms } => {
                write!(f, "run exceeded its {limit_ms} ms deadline")
            }
            RunError::SpaceBudgetExceeded { used, limit } => write!(
                f,
                "aggregate state of {used} bytes exceeds the {limit}-byte budget"
            ),
            RunError::Checkpoint { message } => write!(f, "checkpoint failure: {message}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Counters published by an ingestion guard (see [`crate::guard::Guarded`]).
///
/// Detection/repair counters tally *distinct* faults, counted in the first
/// pass only — a fault repaired again on replay in later passes is not
/// recounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Promise violations detected (first pass).
    pub faults_detected: usize,
    /// Items dropped to restore the promise (first pass).
    pub items_repaired: usize,
    /// Edges found unmatched at the end of the first pass and suppressed in
    /// later passes.
    pub edges_quarantined: usize,
    /// Peak bytes of validator + guard bookkeeping, separated out so
    /// experiments can distinguish algorithm state from guard overhead.
    pub validator_peak_bytes: usize,
}

/// Execution summary of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// High-water mark of the algorithm's reported state, in bytes, sampled
    /// at every adjacency-list boundary.
    pub peak_state_bytes: usize,
    /// Total stream items processed across all passes.
    pub items_processed: usize,
    /// Number of passes executed.
    pub passes: usize,
    /// Ingestion-guard counters, when the algorithm was wrapped in one.
    pub guard: Option<GuardStats>,
    /// Structured observations of the run — `Some` only for the
    /// `*_observed` entry points given an enabled [`Metrics`] sink. The
    /// deterministic fields (`peak_state_bytes`, per-pass items/lists,
    /// sampler counters, guard counters) duplicate what the report and
    /// algorithm already expose; wall times are the only
    /// non-reproducible content.
    pub metrics: Option<MetricsSnapshot>,
}

/// Drive one pass of `items` through `algo`: announce the pass and every
/// list boundary, sample peak state at each boundary, and poll
/// [`MultiPassAlgorithm::abort_error`] and
/// [`MultiPassAlgorithm::abort_run`] after every item and at pass end.
///
/// This is the single boundary-detection loop every runner in this crate
/// uses; `items` may be any item sequence, including malformed ones fed to
/// a [`crate::guard::Guarded`] algorithm.
pub fn drive_pass<A, I>(
    algo: &mut A,
    pass: usize,
    items: I,
    peak: &mut PeakTracker,
    processed: &mut usize,
) -> Result<(), RunError>
where
    A: MultiPassAlgorithm,
    I: IntoIterator<Item = StreamItem>,
{
    drive_pass_observed(
        algo,
        pass,
        items,
        peak,
        processed,
        &mut RunObserver::disabled(),
    )
}

/// [`drive_pass`] with an attached [`RunObserver`]. The observer is
/// consulted only at the boundaries where the driver already samples
/// state, so a disabled observer keeps the unobserved hot path.
pub(crate) fn drive_pass_observed<A, I>(
    algo: &mut A,
    pass: usize,
    items: I,
    peak: &mut PeakTracker,
    processed: &mut usize,
    obs: &mut RunObserver,
) -> Result<(), RunError>
where
    A: MultiPassAlgorithm,
    I: IntoIterator<Item = StreamItem>,
{
    obs.begin_pass(pass, *processed);
    algo.begin_pass(pass);
    let mut current: Option<VertexId> = None;
    for item in items {
        if current != Some(item.src) {
            if let Some(prev) = current {
                algo.end_list(prev);
                let bytes = algo.space_bytes();
                peak.observe(bytes);
                obs.boundary(bytes, *processed);
            }
            algo.begin_list(item.src);
            current = Some(item.src);
        }
        algo.item(item.src, item.dst);
        *processed += 1;
        if let Some(error) = algo.abort_error() {
            return Err(RunError::Invalid { pass, error });
        }
        if let Some(err) = algo.abort_run() {
            return Err(err);
        }
    }
    if let Some(prev) = current {
        algo.end_list(prev);
        let bytes = algo.space_bytes();
        peak.observe(bytes);
        obs.boundary(bytes, *processed);
    }
    algo.end_pass(pass);
    let bytes = algo.space_bytes();
    peak.observe(bytes);
    obs.end_pass(bytes, *processed);
    if let Some(error) = algo.abort_error() {
        return Err(RunError::Invalid { pass, error });
    }
    if let Some(err) = algo.abort_run() {
        return Err(err);
    }
    Ok(())
}

/// Drive one pass of `items` through `algo` with slice-batched dispatch:
/// split `items` into maximal runs of one source vertex and deliver each
/// run through [`MultiPassAlgorithm::feed_slice`] between its list
/// boundaries.
///
/// Callback order, boundary placement, and the peak-state sampling points
/// are identical to [`drive_pass`]; only the granularity of delivery and
/// abort polling changes (per run instead of per item). Outputs and
/// [`RunReport`]s therefore match `drive_pass` bit for bit on successful
/// runs. On aborting runs the surfaced error is the same — an algorithm
/// that latches a fatal error ignores later input (see
/// [`crate::guard::Guarded`]) — though the abort may be detected a few
/// items later, after the offending run completes.
pub fn drive_pass_slice<A>(
    algo: &mut A,
    pass: usize,
    items: &[StreamItem],
    peak: &mut PeakTracker,
    processed: &mut usize,
) -> Result<(), RunError>
where
    A: MultiPassAlgorithm,
{
    drive_pass_slice_observed(
        algo,
        pass,
        items,
        peak,
        processed,
        &mut RunObserver::disabled(),
    )
}

/// [`drive_pass_slice`] with an attached [`RunObserver`]; same
/// boundary-only consultation contract as [`drive_pass_observed`].
pub(crate) fn drive_pass_slice_observed<A>(
    algo: &mut A,
    pass: usize,
    items: &[StreamItem],
    peak: &mut PeakTracker,
    processed: &mut usize,
    obs: &mut RunObserver,
) -> Result<(), RunError>
where
    A: MultiPassAlgorithm,
{
    obs.begin_pass(pass, *processed);
    algo.begin_pass(pass);
    let mut start = 0usize;
    while start < items.len() {
        let src = items[start].src;
        let end = find_run_end(items, start);
        algo.begin_list(src);
        algo.feed_slice(&items[start..end]);
        *processed += end - start;
        obs.slice();
        algo.end_list(src);
        let bytes = algo.space_bytes();
        peak.observe(bytes);
        obs.boundary(bytes, *processed);
        if let Some(error) = algo.abort_error() {
            return Err(RunError::Invalid { pass, error });
        }
        if let Some(err) = algo.abort_run() {
            return Err(err);
        }
        start = end;
    }
    algo.end_pass(pass);
    let bytes = algo.space_bytes();
    peak.observe(bytes);
    obs.end_pass(bytes, *processed);
    if let Some(error) = algo.abort_error() {
        return Err(RunError::Invalid { pass, error });
    }
    if let Some(err) = algo.abort_run() {
        return Err(err);
    }
    Ok(())
}

/// End (exclusive) of the maximal same-source run starting at `start`.
///
/// This boundary scan is the per-item hot loop of slice dispatch — every
/// trace item is examined here exactly once per pass. The body compares
/// eight sources per iteration with the branch hoisted out of the lane:
/// each lane folds its mismatch bit into a mask, and the single branch per
/// 8-item block tests the mask. On long runs (the common case for dense
/// adjacency lists) this retires ~1 branch per 8 items instead of 1 per
/// item, and the compiler is free to vectorize the compare/shift lanes.
#[inline]
pub(crate) fn find_run_end(items: &[StreamItem], start: usize) -> usize {
    let src = items[start].src;
    let mut i = start + 1;
    while i + 8 <= items.len() {
        let mut mask = 0u32;
        for lane in 0..8 {
            mask |= u32::from(items[i + lane].src != src) << lane;
        }
        if mask != 0 {
            return i + mask.trailing_zeros() as usize;
        }
        i += 8;
    }
    while i < items.len() && items[i].src == src {
        i += 1;
    }
    i
}

/// Run `algo` over explicit per-pass item sequences produced by
/// `items_for_pass` (called once per pass, 0-based).
///
/// This is the entry point for streams that exist only as raw items — e.g.
/// corrupted sequences from [`crate::fault::FaultPlan`], which may replay
/// *differently* per pass to model reorder faults.
pub fn run_item_passes<A, F, I>(
    algo: A,
    items_for_pass: F,
) -> Result<(A::Output, RunReport), RunError>
where
    A: MultiPassAlgorithm,
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = StreamItem>,
{
    run_item_passes_observed(algo, items_for_pass, &Metrics::disabled())
}

/// [`run_item_passes`] reporting into a [`Metrics`] sink: with an enabled
/// sink the returned [`RunReport::metrics`] carries the run's snapshot
/// and the sink absorbs it; with a disabled sink this *is*
/// [`run_item_passes`] — outputs and reports are bit-for-bit identical.
pub fn run_item_passes_observed<A, F, I>(
    mut algo: A,
    mut items_for_pass: F,
    sink: &Metrics,
) -> Result<(A::Output, RunReport), RunError>
where
    A: MultiPassAlgorithm,
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = StreamItem>,
{
    let mut peak = PeakTracker::new();
    let mut processed = 0usize;
    let mut obs = RunObserver::for_sink(sink);
    let passes = algo.passes();
    for pass in 0..passes {
        drive_pass_observed(
            &mut algo,
            pass,
            items_for_pass(pass),
            &mut peak,
            &mut processed,
            &mut obs,
        )?;
    }
    Ok(finish_run(algo, peak, processed, passes, obs, sink))
}

/// Package a completed run: pull guard stats and sampler counters through
/// the trait hooks, fold the observer into a snapshot, and absorb it into
/// the sink.
fn finish_run<A: MultiPassAlgorithm>(
    algo: A,
    peak: PeakTracker,
    processed: usize,
    passes: usize,
    obs: RunObserver,
    sink: &Metrics,
) -> (A::Output, RunReport) {
    let guard = algo.guard_stats();
    let counters = algo.obs_counters();
    let metrics = obs.into_snapshot(peak.peak(), processed, guard, counters);
    if let Some(snap) = &metrics {
        sink.absorb(snap);
    }
    (
        algo.finish(),
        RunReport {
            peak_state_bytes: peak.peak(),
            items_processed: processed,
            passes,
            guard,
            metrics,
        },
    )
}

/// Run `algo` over explicit per-pass item slices with slice-batched
/// dispatch ([`drive_pass_slice`]) — the sequential counterpart of
/// [`run_item_passes`] for materialized streams such as
/// [`crate::trace::ItemTrace`] replays.
///
/// `items_for_pass` is called once per pass and may return anything that
/// derefs to a slice (a borrowed `&[StreamItem]`, a `Vec`, …).
pub fn run_slice_passes<A, F, I>(
    algo: A,
    items_for_pass: F,
) -> Result<(A::Output, RunReport), RunError>
where
    A: MultiPassAlgorithm,
    F: FnMut(usize) -> I,
    I: AsRef<[StreamItem]>,
{
    run_slice_passes_observed(algo, items_for_pass, &Metrics::disabled())
}

/// [`run_slice_passes`] reporting into a [`Metrics`] sink — the
/// slice-dispatch counterpart of [`run_item_passes_observed`], with the
/// same disabled-sink identity guarantee.
pub fn run_slice_passes_observed<A, F, I>(
    mut algo: A,
    mut items_for_pass: F,
    sink: &Metrics,
) -> Result<(A::Output, RunReport), RunError>
where
    A: MultiPassAlgorithm,
    F: FnMut(usize) -> I,
    I: AsRef<[StreamItem]>,
{
    let mut peak = PeakTracker::new();
    let mut processed = 0usize;
    let mut obs = RunObserver::for_sink(sink);
    let passes = algo.passes();
    for pass in 0..passes {
        let items = items_for_pass(pass);
        drive_pass_slice_observed(
            &mut algo,
            pass,
            items.as_ref(),
            &mut peak,
            &mut processed,
            &mut obs,
        )?;
    }
    Ok(finish_run(algo, peak, processed, passes, obs, sink))
}

/// Drives algorithms over graphs and records space usage.
#[derive(Debug, Default, Clone, Copy)]
pub struct Runner;

impl Runner {
    /// Run `algo` to completion over `graph` streamed per `orders`,
    /// reporting failures as typed [`RunError`]s instead of panicking.
    pub fn try_run<A: MultiPassAlgorithm>(
        graph: &Graph,
        algo: A,
        orders: &PassOrders,
    ) -> Result<(A::Output, RunReport), RunError> {
        Self::try_run_observed(graph, algo, orders, &Metrics::disabled())
    }

    /// [`Runner::try_run`] reporting into a [`Metrics`] sink: an enabled
    /// sink fills [`RunReport::metrics`] and absorbs the run's snapshot; a
    /// disabled sink reproduces [`Runner::try_run`] bit for bit.
    pub fn try_run_observed<A: MultiPassAlgorithm>(
        graph: &Graph,
        mut algo: A,
        orders: &PassOrders,
        sink: &Metrics,
    ) -> Result<(A::Output, RunReport), RunError> {
        orders.check(algo.passes(), algo.requires_same_order())?;
        let mut peak = PeakTracker::new();
        let mut processed = 0usize;
        let mut obs = RunObserver::for_sink(sink);
        let passes = algo.passes();
        for pass in 0..passes {
            let stream = AdjListStream::new(graph, orders.order_for(pass).clone());
            drive_pass_observed(
                &mut algo,
                pass,
                stream.items(),
                &mut peak,
                &mut processed,
                &mut obs,
            )?;
        }
        Ok(finish_run(algo, peak, processed, passes, obs, sink))
    }

    /// Run `algo` to completion over `graph` streamed per `orders`.
    ///
    /// Panics if the algorithm requires identical pass orders and `orders`
    /// provides differing ones — that would silently violate the algorithm's
    /// correctness contract. Prefer [`Runner::try_run`] when the input is
    /// not known to be well-formed.
    pub fn run<A: MultiPassAlgorithm>(
        graph: &Graph,
        algo: A,
        orders: &PassOrders,
    ) -> (A::Output, RunReport) {
        match Self::try_run(graph, algo, orders) {
            Ok(out) => out,
            Err(e @ RunError::OrderMismatch) => {
                panic!("algorithm requires identical pass orders: {e}")
            }
            Err(e @ RunError::WrongOrderCount { .. }) => {
                panic!("one order per pass required: {e}")
            }
            Err(e) => panic!("stream validation failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;

    /// Counts edges (items / 2) in one pass; state is one counter.
    struct EdgeCounter {
        items: usize,
    }

    impl SpaceUsage for EdgeCounter {
        fn space_bytes(&self) -> usize {
            std::mem::size_of::<usize>()
        }
    }

    impl MultiPassAlgorithm for EdgeCounter {
        type Output = usize;
        fn passes(&self) -> usize {
            1
        }
        fn begin_pass(&mut self, _pass: usize) {}
        fn item(&mut self, _src: VertexId, _dst: VertexId) {
            self.items += 1;
        }
        fn finish(self) -> usize {
            self.items / 2
        }
    }

    /// Records per-pass list boundary sequences to verify replay semantics.
    struct BoundaryRecorder {
        passes: usize,
        same_order: bool,
        seen: Vec<Vec<VertexId>>,
    }

    impl SpaceUsage for BoundaryRecorder {
        fn space_bytes(&self) -> usize {
            self.seen.iter().map(|v| v.len() * 4).sum()
        }
    }

    impl MultiPassAlgorithm for BoundaryRecorder {
        type Output = Vec<Vec<VertexId>>;
        fn passes(&self) -> usize {
            self.passes
        }
        fn requires_same_order(&self) -> bool {
            self.same_order
        }
        fn begin_pass(&mut self, _pass: usize) {
            self.seen.push(Vec::new());
        }
        fn item(&mut self, _src: VertexId, _dst: VertexId) {}
        fn begin_list(&mut self, owner: VertexId) {
            self.seen.last_mut().unwrap().push(owner);
        }
        fn finish(self) -> Self::Output {
            self.seen
        }
    }

    #[test]
    fn edge_counter_counts() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(40, 111, &mut rng);
        let (m, report) = Runner::run(
            &g,
            EdgeCounter { items: 0 },
            &PassOrders::Same(StreamOrder::shuffled(40, 3)),
        );
        assert_eq!(m, 111);
        assert_eq!(report.items_processed, 222);
        assert_eq!(report.passes, 1);
        assert_eq!(report.peak_state_bytes, 8);
        assert_eq!(report.guard, None);
    }

    #[test]
    fn same_order_replays_identically() {
        let g = gen::complete(6);
        let (seen, _) = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: true,
                seen: Vec::new(),
            },
            &PassOrders::Same(StreamOrder::shuffled(6, 17)),
        );
        assert_eq!(seen[0], seen[1]);
    }

    #[test]
    fn per_pass_orders_differ() {
        let g = gen::complete(6);
        let (seen, _) = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: false,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(6), StreamOrder::reversed(6)]),
        );
        assert_ne!(seen[0], seen[1]);
        assert_eq!(seen[0], seen[1].iter().rev().copied().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "identical pass orders")]
    fn same_order_requirement_is_enforced() {
        let g = gen::complete(4);
        let _ = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: true,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(4), StreamOrder::reversed(4)]),
        );
    }

    #[test]
    #[should_panic(expected = "one order per pass")]
    fn per_pass_length_is_enforced() {
        let g = gen::complete(4);
        let _ = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: false,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(4)]),
        );
    }

    #[test]
    fn try_run_returns_typed_errors() {
        let g = gen::complete(4);
        let r = Runner::try_run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: true,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(4), StreamOrder::reversed(4)]),
        );
        assert_eq!(r.unwrap_err(), RunError::OrderMismatch);
        let r = Runner::try_run(
            &g,
            BoundaryRecorder {
                passes: 2,
                same_order: false,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![StreamOrder::natural(4)]),
        );
        assert_eq!(
            r.unwrap_err(),
            RunError::WrongOrderCount {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn equal_per_pass_orders_count_as_same() {
        // An algorithm requiring identical orders accepts PerPass entries
        // that are all equal — equality of layout is what matters, not the
        // enum variant used to express it.
        let g = gen::complete(5);
        let order = StreamOrder::shuffled(5, 9);
        let (seen, report) = Runner::run(
            &g,
            BoundaryRecorder {
                passes: 3,
                same_order: true,
                seen: Vec::new(),
            },
            &PassOrders::PerPass(vec![order.clone(), order.clone(), order]),
        );
        assert_eq!(seen[0], seen[1]);
        assert_eq!(seen[1], seen[2]);
        assert_eq!(report.passes, 3);
    }

    #[test]
    fn run_item_passes_allows_per_pass_divergence() {
        use crate::item::StreamItem;
        let p0 = vec![
            StreamItem::new(VertexId(0), VertexId(1)),
            StreamItem::new(VertexId(1), VertexId(0)),
        ];
        let p1: Vec<StreamItem> = p0.iter().rev().copied().collect();
        let passes = [p0, p1];
        let (seen, report) = run_item_passes(
            BoundaryRecorder {
                passes: 2,
                same_order: false,
                seen: Vec::new(),
            },
            |p| passes[p].clone(),
        )
        .unwrap();
        assert_eq!(seen[0], vec![VertexId(0), VertexId(1)]);
        assert_eq!(seen[1], vec![VertexId(1), VertexId(0)]);
        assert_eq!(report.items_processed, 4);
    }
}

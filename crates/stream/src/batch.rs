//! Stream-once batched execution: fan one stream replay out to many
//! algorithm instances, with per-instance fault isolation.
//!
//! The amplification layer (Theorems 3.7 and 4.6) runs `Θ(log 1/δ)`
//! independent repetitions of the same multi-pass algorithm, and the
//! guess-and-verify driver multiplies that by `O(log T)` guess levels. The
//! sequential driver replays the full adjacency-list stream for every
//! repetition of every level — pass-wasteful in exactly the sense the model
//! charges for. [`BatchRunner`] restores pass-optimality: each pass's item
//! sequence is generated **once** and every item is fanned out to all `R`
//! resident [`MultiPassAlgorithm`] instances, so the whole batch costs as
//! many stream passes as a *single* instance would.
//!
//! Execution model:
//!
//! * With `threads ≤ 1` the instances are driven inline, in index order, by
//!   the same boundary-detecting loop ([`drive_pass`]) the sequential
//!   [`Runner`](crate::runner::Runner) uses.
//! * With `threads > 1` the instances are sharded across worker threads
//!   (contiguous index ranges, mirroring `median_of_runs`' chunking). The
//!   driving thread batches stream events into chunks and broadcasts each
//!   chunk to every worker over a bounded channel — a full worker exerts
//!   backpressure on the stream generator instead of buffering unboundedly.
//!   Workers exist per pass: at every pass boundary the instances return to
//!   the driving thread, which is what makes boundary checkpoints and
//!   aggregate budget checks possible at any thread count.
//!
//! Because every instance observes the identical event sequence in either
//! mode, batched execution is **bitwise reproducible** against the
//! sequential driver: an instance seeded `s` produces the same output here
//! as it does under `Runner::run` on the same graph and order.
//!
//! # Fault isolation and budgets
//!
//! Replay through an instance is wrapped in `catch_unwind`, so a panicking
//! instance is *quarantined* — its slot in [`BatchOutcome::outputs`] becomes
//! `None`, its [`InstanceReport::outcome`] records the panic message, and
//! every other instance keeps running and stays bit-for-bit reproducible.
//! The same per-instance quarantine applies to [`Budget::max_bytes_per_instance`]
//! overruns, checked at the exact boundaries where the sequential runner
//! samples state size. Batch-wide limits ([`Budget::max_total_bytes`],
//! [`Budget::deadline`]) abort the whole run with a typed [`RunError`] —
//! they bound the *process*, which no per-instance quarantine can do.
//!
//! # Checkpoint / resume
//!
//! [`BatchRunner::try_run_checkpointed`] writes a checkpoint of the whole
//! batch (every live instance, every quarantined outcome, the shared guard)
//! at each interior pass boundary, atomically, via
//! [`crate::checkpoint::write_checkpoint_file`]. A run killed between passes
//! is picked up by [`BatchRunner::resume`], which replays only the remaining
//! passes and produces bit-for-bit the per-instance outputs of an
//! uninterrupted run. (`stream_generations` counts regeneration work and
//! will differ on a resumed run; the determinism contract covers outputs.)
//!
//! Ingestion guarding composes at the *stream* level, not per instance:
//! [`BatchConfig::guard`] wraps the fan-out itself in a single
//! [`Guarded`] adapter, so one [`OnlineValidator`] vets each item once
//! before it is broadcast (the repair policy's dropped items simply never
//! reach any instance). Running `R` validators for `R` instances of the
//! same stream would multiply validation cost and memory for no extra
//! information.
//!
//! Space note: for replayed passes over the same [`StreamOrder`], the
//! engine materializes one pass's items (`2m` items, 8 bytes each) so later
//! passes and later levels never regenerate the stream. This buffer is
//! harness state, not algorithm state — it is never reported through
//! [`SpaceUsage`], exactly as the sequential `AdjListStream` generator's
//! internal state is not.
//!
//! [`OnlineValidator`]: crate::validate::OnlineValidator

use std::any::Any;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use adjstream_graph::{Graph, VertexId};

use crate::adjlist::AdjListStream;
use crate::checkpoint::{
    read_bytes, read_checkpoint_file, read_u32, read_u8, read_usize, write_bytes,
    write_checkpoint_file, write_u32, write_u8, write_usize, Checkpoint,
};
use crate::guard::{decode_mode, decode_policy, encode_mode, encode_policy, GuardPolicy, Guarded};
use crate::item::StreamItem;
use crate::meter::{vec_bytes, PeakTracker, SpaceUsage};
use crate::obs::{Metrics, MetricsSnapshot, ObsCounters, PassMetrics};
use crate::order::StreamOrder;
use crate::runner::{
    drive_pass, drive_pass_slice, GuardStats, MultiPassAlgorithm, PassOrders, RunError,
};
use crate::validate::ValidatorMode;

/// Resource limits enforced on a batched run.
///
/// `None` in any slot means unlimited. Per-instance limits quarantine the
/// offending instance (the rest of the batch keeps running); batch-wide
/// limits abort the whole run with a typed [`RunError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Per-instance state ceiling in bytes, checked where the sequential
    /// runner samples state size (every list and pass boundary). An
    /// instance exceeding it is quarantined with
    /// [`InstanceOutcome::BudgetExceeded`].
    pub max_bytes_per_instance: Option<usize>,
    /// Aggregate ceiling over all live instances' state, checked at every
    /// pass boundary. Exceeding it fails the run with
    /// [`RunError::SpaceBudgetExceeded`].
    pub max_total_bytes: Option<usize>,
    /// Wall-clock deadline for the whole run, checked at chunk granularity.
    /// Exceeding it fails the run with [`RunError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

/// Knobs for a batched run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads the instances are sharded over; `0` or `1` drives
    /// them inline on the calling thread.
    pub threads: usize,
    /// Stream events buffered per replay chunk. Inline mode replays each
    /// full chunk through one instance at a time, so larger chunks keep an
    /// instance's state hot in cache across many events instead of touching
    /// all `R` states per event; threaded mode ships whole chunks over the
    /// channels, amortizing send overhead. Smaller chunks tighten
    /// backpressure and shrink the buffer. The default trades ~2 MiB of
    /// buffer for near-saturated replay throughput.
    pub chunk_events: usize,
    /// Bounded-channel depth per worker, in chunks.
    pub channel_depth: usize,
    /// Deliver whole adjacency-list runs through
    /// [`MultiPassAlgorithm::feed_slice`] instead of one
    /// [`MultiPassAlgorithm::item`] call per item (the default). Slice and
    /// per-item dispatch are observationally identical — `feed_slice`'s
    /// default is a per-item loop and native overrides must match it — so
    /// this knob exists for differential tests and benchmarks, not as a
    /// compatibility escape hatch.
    pub slice_dispatch: bool,
    /// Wrap the *shared stream* in one [`Guarded`] validator with this
    /// policy and mode. `None` trusts the stream (the graph-backed
    /// generator always satisfies the promise).
    pub guard: Option<(GuardPolicy, ValidatorMode)>,
    /// Resource limits; default unlimited.
    pub budget: Budget,
    /// Collect structured run metrics into [`BatchReport::metrics`].
    /// Default off; turning it on never changes what the run computes.
    pub metrics: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            threads: 1,
            chunk_events: 128 * 1024,
            channel_depth: 4,
            slice_dispatch: true,
            guard: None,
            budget: Budget::default(),
            metrics: false,
        }
    }
}

impl BatchConfig {
    /// Config with `threads` workers and every other knob at its default.
    pub fn with_threads(threads: usize) -> Self {
        BatchConfig {
            threads,
            ..BatchConfig::default()
        }
    }
}

/// How one instance of a batched run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceOutcome {
    /// Ran to completion; its output occupies its slot in
    /// [`BatchOutcome::outputs`].
    Ok,
    /// Aborted with a typed error (its own guard, if it carried one).
    Failed {
        /// The abort error.
        error: RunError,
    },
    /// Panicked mid-replay and was quarantined; the rest of the batch was
    /// unaffected.
    Panicked {
        /// Panic payload, when it was a string (the common `panic!` case).
        message: String,
    },
    /// Exceeded [`Budget::max_bytes_per_instance`] and was quarantined.
    BudgetExceeded {
        /// State size observed at the boundary that tripped the limit.
        peak_bytes: usize,
        /// The configured per-instance limit.
        limit: usize,
    },
}

/// Per-instance execution summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceReport {
    /// Worker shard the instance ran on (0 in inline mode).
    pub shard: usize,
    /// High-water mark of this instance's reported state, sampled at every
    /// adjacency-list boundary (same sampling points as the sequential
    /// runner).
    pub peak_state_bytes: usize,
    /// Items delivered to this instance across all passes (delivery stops
    /// at quarantine).
    pub items: usize,
    /// How the instance ended.
    pub outcome: InstanceOutcome,
    /// Deterministic observability counters the instance's algorithm
    /// reported via [`MultiPassAlgorithm::obs_counters`], if any.
    pub counters: Option<ObsCounters>,
}

/// Execution summary of a batched run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Instances fanned out to.
    pub instances: usize,
    /// Worker threads actually used (after clamping to the instance count).
    pub threads: usize,
    /// Stream passes executed — for the whole batch, not per instance.
    pub passes: usize,
    /// Items driven through the shared stream, summed over passes. Each
    /// item is counted once here no matter how many instances consumed it.
    pub stream_items: usize,
    /// Times a pass's item sequence was actually generated from the graph;
    /// replayed passes over an identical order reuse the materialized
    /// buffer and do not count.
    pub stream_generations: usize,
    /// Total item deliveries across instances (≈ `stream_items ×
    /// instances`, minus items a shared repair guard dropped before
    /// fan-out and items quarantined instances never received).
    pub items_fanned_out: usize,
    /// Per-instance diagnostics, in instance order.
    pub per_instance: Vec<InstanceReport>,
    /// Counters of the shared-stream guard, when one was configured.
    pub guard: Option<GuardStats>,
    /// `Some(p)` when this run was restored from a checkpoint taken after
    /// `p` completed passes.
    pub resumed_from: Option<usize>,
    /// Aggregate structured metrics, collected when
    /// [`BatchConfig::metrics`] was set.
    pub metrics: Option<MetricsSnapshot>,
}

impl BatchReport {
    /// Instances that ran to completion ([`InstanceOutcome::Ok`]).
    pub fn survivors(&self) -> usize {
        self.per_instance
            .iter()
            .filter(|r| r.outcome == InstanceOutcome::Ok)
            .count()
    }
}

/// A batched run's outputs plus its report.
#[derive(Debug, Clone)]
pub struct BatchOutcome<T> {
    /// Instance outputs, in the order the instances were supplied. `None`
    /// marks a quarantined instance; its [`InstanceReport::outcome`] says
    /// why.
    pub outputs: Vec<Option<T>>,
    /// Execution summary.
    pub report: BatchReport,
}

/// One stream event, as broadcast to every instance. Mirrors the calls
/// [`drive_pass`] / [`drive_pass_slice`] make on a [`MultiPassAlgorithm`].
#[derive(Debug, Clone, Copy)]
enum Event {
    BeginPass(usize),
    BeginList(VertexId),
    Item(VertexId, VertexId),
    /// A same-source run, stored as a range into the carrying [`Chunk`]'s
    /// item buffer; delivered via [`MultiPassAlgorithm::feed_slice`].
    Run {
        start: usize,
        len: usize,
    },
    EndList(VertexId),
    EndPass(usize),
}

/// A broadcast unit: buffered events plus the item buffer that the chunk's
/// [`Event::Run`] ranges index into. Per-item dispatch leaves `items`
/// empty; slice dispatch leaves `events` holding one `Run` per forwarded
/// segment instead of one `Item` per item.
#[derive(Debug, Default)]
struct Chunk {
    events: Vec<Event>,
    items: Vec<StreamItem>,
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Liveness of one instance mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
enum InstanceStatus {
    Live,
    Failed(RunError),
    Panicked(String),
    OverBudget { peak_bytes: usize, limit: usize },
}

/// An instance plus its driver-side bookkeeping. Applying events through
/// this struct reproduces `drive_pass`'s per-instance behavior exactly:
/// peak state sampled at list and pass boundaries, abort polled after every
/// item and at pass end, budget checked at the sampling points.
struct InstanceState<A: MultiPassAlgorithm> {
    /// Position in the caller's instance vector (stable across sharding).
    index: usize,
    shard: usize,
    algo: Option<A>,
    peak: PeakTracker,
    items: usize,
    pass: usize,
    byte_limit: Option<usize>,
    status: InstanceStatus,
}

impl<A: MultiPassAlgorithm> InstanceState<A> {
    fn new(algo: A, index: usize, byte_limit: Option<usize>) -> Self {
        InstanceState {
            index,
            shard: 0,
            algo: Some(algo),
            peak: PeakTracker::new(),
            items: 0,
            pass: 0,
            byte_limit,
            status: InstanceStatus::Live,
        }
    }

    fn is_live(&self) -> bool {
        self.status == InstanceStatus::Live
    }

    /// Observe the instance's state size at a boundary, quarantining it if
    /// the per-instance budget is exceeded.
    fn observe_bytes(&mut self, bytes: usize) {
        self.peak.observe(bytes);
        if let Some(limit) = self.byte_limit {
            if bytes > limit && self.is_live() {
                self.status = InstanceStatus::OverBudget {
                    peak_bytes: bytes,
                    limit,
                };
            }
        }
    }

    fn apply(&mut self, ev: Event, chunk_items: &[StreamItem]) {
        if !self.is_live() {
            return;
        }
        let Some(algo) = self.algo.as_mut() else {
            return;
        };
        match ev {
            Event::BeginPass(p) => {
                self.pass = p;
                algo.begin_pass(p);
            }
            Event::BeginList(owner) => algo.begin_list(owner),
            Event::Item(src, dst) => {
                algo.item(src, dst);
                self.items += 1;
                if let Some(error) = algo.abort_error() {
                    self.status = InstanceStatus::Failed(RunError::Invalid {
                        pass: self.pass,
                        error,
                    });
                }
            }
            Event::Run { start, len } => {
                algo.feed_slice(&chunk_items[start..start + len]);
                self.items += len;
                // Same abort granularity as `drive_pass_slice`: per run.
                if let Some(error) = algo.abort_error() {
                    self.status = InstanceStatus::Failed(RunError::Invalid {
                        pass: self.pass,
                        error,
                    });
                }
            }
            Event::EndList(owner) => {
                algo.end_list(owner);
                let bytes = algo.space_bytes();
                self.observe_bytes(bytes);
            }
            Event::EndPass(p) => {
                algo.end_pass(p);
                let bytes = algo.space_bytes();
                if let Some(error) = algo.abort_error() {
                    self.peak.observe(bytes);
                    self.status = InstanceStatus::Failed(RunError::Invalid {
                        pass: self.pass,
                        error,
                    });
                } else {
                    self.observe_bytes(bytes);
                }
            }
        }
    }

    /// Replay a chunk with panic isolation: a panicking instance is marked
    /// [`InstanceStatus::Panicked`] and its algorithm is dropped (itself
    /// under `catch_unwind`, in case the poisoned state panics on drop);
    /// every other instance is untouched.
    fn apply_chunk(&mut self, chunk: &Chunk) {
        if !self.is_live() {
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            for &ev in &chunk.events {
                self.apply(ev, &chunk.items);
            }
        }));
        if let Err(payload) = result {
            self.status = InstanceStatus::Panicked(panic_message(payload));
        }
        if !self.is_live() {
            let algo = self.algo.take();
            let _ = catch_unwind(AssertUnwindSafe(move || drop(algo)));
        }
    }

    /// Finish the instance, producing its report and (for survivors) its
    /// output. `finish()` itself runs under `catch_unwind`.
    fn into_parts(mut self) -> (InstanceReport, Option<A::Output>) {
        let counters = self.algo.as_ref().and_then(|a| a.obs_counters());
        let (outcome, output) = match self.status {
            InstanceStatus::Live => {
                let algo = self.algo.take().expect("live instance has an algorithm");
                match catch_unwind(AssertUnwindSafe(move || algo.finish())) {
                    Ok(out) => (InstanceOutcome::Ok, Some(out)),
                    Err(payload) => (
                        InstanceOutcome::Panicked {
                            message: panic_message(payload),
                        },
                        None,
                    ),
                }
            }
            InstanceStatus::Failed(error) => (InstanceOutcome::Failed { error }, None),
            InstanceStatus::Panicked(message) => (InstanceOutcome::Panicked { message }, None),
            InstanceStatus::OverBudget { peak_bytes, limit } => {
                (InstanceOutcome::BudgetExceeded { peak_bytes, limit }, None)
            }
        };
        (
            InstanceReport {
                shard: self.shard,
                peak_state_bytes: self.peak.peak(),
                items: self.items,
                outcome,
                counters,
            },
            output,
        )
    }
}

/// The per-pass worker crew: event broadcast channels in, finished
/// instance states out.
struct PassWorkers<A: MultiPassAlgorithm> {
    senders: Vec<crossbeam::channel::Sender<Arc<Chunk>>>,
    done: crossbeam::channel::Receiver<Vec<InstanceState<A>>>,
}

/// The fan-out itself, viewed as one [`MultiPassAlgorithm`] so the shared
/// [`drive_pass`] loop (and a shared [`Guarded`] wrapper) can drive it.
/// Unlike a plain algorithm it owns its instances *between* passes — worker
/// crews exist only while a pass is in flight — which is what lets the
/// engine checkpoint and budget-check at boundaries.
struct FanOut<A: MultiPassAlgorithm> {
    passes: usize,
    same_order: bool,
    chunk_events: usize,
    buf: Vec<Event>,
    /// Item buffer the current chunk's [`Event::Run`] ranges index into.
    item_buf: Vec<StreamItem>,
    states: Vec<InstanceState<A>>,
    workers: Option<PassWorkers<A>>,
    /// Wall-clock deadline plus the configured limit in ms (for the error).
    deadline: Option<(Instant, u64)>,
    /// Batch-fatal condition (deadline); polled by the driver via
    /// [`MultiPassAlgorithm::abort_run`].
    fatal: Option<RunError>,
}

impl<A: MultiPassAlgorithm> FanOut<A> {
    /// Both backends buffer events into chunks instead of touching every
    /// instance per event: replaying a chunk against one instance at a time
    /// keeps that instance's sample structures hot in cache, where
    /// per-event interleaving across `R` instances thrashes it (measured
    /// ~5× slower at 55 resident triangle instances). Instances are
    /// independent, so chunked delivery is observationally identical.
    fn emit(&mut self, ev: Event) {
        self.buf.push(ev);
        // Slice dispatch packs many items behind one `Run` event, so the
        // item buffer needs its own trigger to keep chunk memory bounded by
        // the same knob.
        if self.buf.len() >= self.chunk_events || self.item_buf.len() >= self.chunk_events {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.fatal.is_none() {
            if let Some((t, limit_ms)) = self.deadline {
                if Instant::now() >= t {
                    self.fatal = Some(RunError::DeadlineExceeded { limit_ms });
                }
            }
        }
        if self.fatal.is_some() {
            // The run is aborting; replaying further events is wasted work.
            self.buf.clear();
            self.item_buf.clear();
            return;
        }
        match &self.workers {
            Some(workers) => {
                let chunk = Arc::new(Chunk {
                    events: std::mem::take(&mut self.buf),
                    items: std::mem::take(&mut self.item_buf),
                });
                for tx in &workers.senders {
                    // A send fails only if the worker died; worker panics
                    // resurface at scope join, so dropping here is safe.
                    let _ = tx.send(Arc::clone(&chunk));
                }
            }
            None => {
                let chunk = Chunk {
                    events: std::mem::take(&mut self.buf),
                    items: std::mem::take(&mut self.item_buf),
                };
                for st in self.states.iter_mut() {
                    st.apply_chunk(&chunk);
                }
                // Hand the allocations back for the next chunk.
                self.buf = chunk.events;
                self.item_buf = chunk.items;
                self.buf.clear();
                self.item_buf.clear();
            }
        }
    }

    /// Tear down the pass's worker crew (if any) and take the instances
    /// back. Always restores `states` sorted by instance index, so the
    /// boundary view is identical at every thread count.
    fn join_pass_workers(&mut self) {
        self.buf.clear();
        self.item_buf.clear();
        if let Some(workers) = self.workers.take() {
            drop(workers.senders);
            let mut all: Vec<InstanceState<A>> = Vec::new();
            while let Ok(states) = workers.done.recv() {
                all.extend(states);
            }
            all.sort_by_key(|st| st.index);
            self.states = all;
        }
    }

    /// Aggregate live state across instances, for the batch-wide budget.
    fn total_live_bytes(&self) -> usize {
        self.states
            .iter()
            .filter(|st| st.is_live())
            .filter_map(|st| st.algo.as_ref().map(|a| a.space_bytes()))
            .sum()
    }
}

impl<A: MultiPassAlgorithm> SpaceUsage for FanOut<A> {
    /// Only the driver-side chunk buffer. Instance state is sampled
    /// per-instance inside [`InstanceState::apply`] (that is what the
    /// [`BatchReport`] publishes); summing `R` instances here would make
    /// the shared driver's boundary sampling O(R·state) per list, which
    /// measurably dominates whole runs.
    fn space_bytes(&self) -> usize {
        vec_bytes(&self.buf) + vec_bytes(&self.item_buf)
    }
}

impl<A: MultiPassAlgorithm> MultiPassAlgorithm for FanOut<A> {
    /// Never produced through `finish` — the engine disassembles the
    /// fan-out at the end of the last pass instead, because instance
    /// outcomes must survive the [`Guarded`] wrapper (whose `finish`
    /// consumes the wrapper around this type).
    type Output = ();

    fn passes(&self) -> usize {
        self.passes
    }

    fn requires_same_order(&self) -> bool {
        self.same_order
    }

    fn begin_pass(&mut self, pass: usize) {
        self.emit(Event::BeginPass(pass));
    }

    fn begin_list(&mut self, owner: VertexId) {
        self.emit(Event::BeginList(owner));
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.emit(Event::Item(src, dst));
    }

    fn feed_slice(&mut self, items: &[StreamItem]) {
        if items.is_empty() {
            return;
        }
        let start = self.item_buf.len();
        self.item_buf.extend_from_slice(items);
        self.emit(Event::Run {
            start,
            len: items.len(),
        });
    }

    fn end_list(&mut self, owner: VertexId) {
        self.emit(Event::EndList(owner));
    }

    fn end_pass(&mut self, pass: usize) {
        self.emit(Event::EndPass(pass));
        self.flush();
    }

    fn abort_run(&self) -> Option<RunError> {
        self.fatal.clone()
    }

    fn finish(self) -> Self::Output {}
}

/// Where a batched run's per-pass items come from.
enum PassSource<'a> {
    /// Generate from a graph under `orders`, materializing each generated
    /// pass so identical later orders replay the buffer.
    Graph {
        graph: &'a Graph,
        orders: &'a PassOrders,
        cache: Option<(StreamOrder, Vec<StreamItem>)>,
        generations: usize,
    },
    /// Explicit per-pass sequences (corrupted streams, traces). Never
    /// cached: fault plans may replay differently per pass by design.
    Items {
        supply: Box<dyn FnMut(usize) -> Vec<StreamItem> + 'a>,
        current: Vec<StreamItem>,
        generations: usize,
    },
}

impl<'a> PassSource<'a> {
    fn items_for(&mut self, pass: usize) -> &[StreamItem] {
        match self {
            PassSource::Graph {
                graph,
                orders,
                cache,
                generations,
            } => {
                let order = orders.order_for(pass);
                let hit = cache.as_ref().is_some_and(|(o, _)| o == order);
                if !hit {
                    *generations += 1;
                    let items = AdjListStream::new(graph, order.clone()).collect_items();
                    *cache = Some((order.clone(), items));
                }
                &cache.as_ref().expect("cache populated").1
            }
            PassSource::Items {
                supply,
                current,
                generations,
            } => {
                *generations += 1;
                *current = supply(pass);
                current
            }
        }
    }

    fn generations(&self) -> usize {
        match self {
            PassSource::Graph { generations, .. } | PassSource::Items { generations, .. } => {
                *generations
            }
        }
    }
}

/// The fan-out, optionally behind the shared ingestion guard. One exists
/// per batch run, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Driven<A: MultiPassAlgorithm> {
    Plain(FanOut<A>),
    Guarded(Guarded<FanOut<A>>),
}

impl<A: MultiPassAlgorithm> Driven<A> {
    fn fanout(&self) -> &FanOut<A> {
        match self {
            Driven::Plain(f) => f,
            Driven::Guarded(g) => g.inner_ref(),
        }
    }

    fn fanout_mut(&mut self) -> &mut FanOut<A> {
        match self {
            Driven::Plain(f) => f,
            Driven::Guarded(g) => g.inner_mut(),
        }
    }

    fn drive(
        &mut self,
        pass: usize,
        items: &[StreamItem],
        slice_dispatch: bool,
        peak: &mut PeakTracker,
        processed: &mut usize,
    ) -> Result<(), RunError> {
        match (self, slice_dispatch) {
            (Driven::Plain(f), true) => drive_pass_slice(f, pass, items, peak, processed),
            (Driven::Guarded(g), true) => drive_pass_slice(g, pass, items, peak, processed),
            (Driven::Plain(f), false) => {
                drive_pass(f, pass, items.iter().copied(), peak, processed)
            }
            (Driven::Guarded(g), false) => {
                drive_pass(g, pass, items.iter().copied(), peak, processed)
            }
        }
    }

    fn guard_stats(&self) -> Option<GuardStats> {
        match self {
            Driven::Plain(_) => None,
            Driven::Guarded(g) => Some(g.stats()),
        }
    }

    /// Serialize the shared guard's cross-pass state for a checkpoint.
    fn guard_snapshot(&self) -> Result<Option<(GuardPolicy, ValidatorMode, Vec<u8>)>, RunError> {
        match self {
            Driven::Plain(_) => Ok(None),
            Driven::Guarded(g) => {
                let mut blob = Vec::new();
                g.save_guard_state(&mut blob).map_err(ckpt_err)?;
                Ok(Some((g.policy(), g.mode(), blob)))
            }
        }
    }

    fn into_fanout(self) -> FanOut<A> {
        match self {
            Driven::Plain(f) => f,
            Driven::Guarded(g) => g.into_inner(),
        }
    }
}

/// Callback invoked at interior pass boundaries by [`BatchRunner::drive`];
/// the checkpoint-writing hooks of the one-shot entry points live here.
type BoundaryHook<'a, A> = dyn FnMut(&BatchJob<A>) -> Result<(), RunError> + 'a;

/// Driver-side counters a job starts from: zero for a fresh run, the
/// checkpointed values for a restored one.
#[derive(Debug, Clone, Copy, Default)]
struct JobStart {
    completed: usize,
    processed: usize,
    driver_peak: usize,
    generations: usize,
    resumed_from: Option<usize>,
}

/// A batched run held *between* passes: the execution half of
/// [`BatchRunner`], decoupled from pass-source ownership and the
/// run-to-completion loop.
///
/// [`BatchRunner`]'s one-shot entry points construct a job and immediately
/// loop it over a graph- or item-backed pass source. A long-running host —
/// the `adjstreamd` estimation service — owns the loop itself instead: it
/// feeds each pass's items via [`BatchJob::run_pass`], persists the
/// boundary via [`BatchJob::write_checkpoint`], and may simply stop between
/// passes (preemption, eviction, daemon shutdown), picking the job back up
/// later — in the same process or after a crash — via
/// [`BatchJob::restore_from_file`]. The per-pass execution — chunked event
/// broadcast, sharded worker crews, panic quarantine, per-instance and
/// batch-wide budget checks — is the *same code path* the one-shot drivers
/// use, so stepped, suspended, and resumed runs produce bit-for-bit the
/// per-instance outputs of an uninterrupted [`BatchRunner::try_run`].
///
/// The caller contract mirrors [`BatchRunner::resume`]: the items fed to
/// each pass must describe the same stream the job was constructed (or
/// checkpointed) against, and a restored job's [`BatchConfig`] must request
/// the same guard configuration.
pub struct BatchJob<A: MultiPassAlgorithm> {
    driven: Driven<A>,
    total_passes: usize,
    same_order: bool,
    completed: usize,
    cfg: BatchConfig,
    threads: usize,
    shard_size: usize,
    peak: PeakTracker,
    processed: usize,
    base_generations: usize,
    source_generations: usize,
    resumed_from: Option<usize>,
    sink: Metrics,
    pass_metrics: Vec<PassMetrics>,
}

impl<A: MultiPassAlgorithm> BatchJob<A> {
    /// Build a job over `instances` under `cfg`. All instances must agree
    /// on `passes()` and `requires_same_order()`; an empty batch returns
    /// [`RunError::EmptyBatch`] and disagreeing instances return
    /// [`RunError::MixedPassContracts`]. No pass runs yet.
    pub fn new(instances: Vec<A>, cfg: &BatchConfig) -> Result<Self, RunError> {
        let contract = BatchRunner::contract(&instances)?;
        let states = BatchRunner::make_states(instances, cfg);
        let sink = Metrics::from_flag(cfg.metrics);
        Self::assemble(states, contract, cfg, JobStart::default(), None, sink)
    }

    fn assemble(
        mut states: Vec<InstanceState<A>>,
        (total_passes, same_order): (usize, bool),
        cfg: &BatchConfig,
        start: JobStart,
        guard_blob: Option<Vec<u8>>,
        sink: Metrics,
    ) -> Result<Self, RunError> {
        let n = states.len();
        let threads = cfg.threads.clamp(1, n.max(1));
        let shard_size = n.div_ceil(threads.max(1)).max(1);
        for (i, st) in states.iter_mut().enumerate() {
            st.shard = if threads > 1 { i / shard_size } else { 0 };
        }
        let deadline = cfg.budget.deadline.and_then(|d| {
            let limit_ms = u64::try_from(d.as_millis()).unwrap_or(u64::MAX);
            Instant::now().checked_add(d).map(|t| (t, limit_ms))
        });
        let fanout = FanOut {
            passes: total_passes,
            same_order,
            chunk_events: cfg.chunk_events.max(1),
            buf: Vec::with_capacity(cfg.chunk_events.min(1 << 20)),
            item_buf: Vec::new(),
            states,
            workers: None,
            deadline,
            fatal: None,
        };
        let driven = match cfg.guard {
            None => Driven::Plain(fanout),
            Some((policy, mode)) => {
                let mut g = Guarded::with_validator(fanout, policy, mode);
                if let Some(blob) = &guard_blob {
                    g.restore_guard_state(&mut blob.as_slice())
                        .map_err(ckpt_err)?;
                }
                Driven::Guarded(g)
            }
        };
        let mut peak = PeakTracker::new();
        peak.observe(start.driver_peak);
        Ok(BatchJob {
            driven,
            total_passes,
            same_order,
            completed: start.completed,
            cfg: cfg.clone(),
            threads,
            shard_size,
            peak,
            processed: start.processed,
            base_generations: start.generations,
            source_generations: 0,
            resumed_from: start.resumed_from,
            sink,
            pass_metrics: Vec::new(),
        })
    }

    /// Restore a suspended job from the raw checkpoint `payload` (the
    /// decoded contents of a file written by
    /// [`BatchJob::write_checkpoint`]). `cfg` must request the same guard
    /// configuration the checkpointed run used; mismatches return
    /// [`RunError::Checkpoint`].
    pub fn restore_from_payload(payload: &[u8], cfg: &BatchConfig) -> Result<Self, RunError>
    where
        A: Checkpoint,
    {
        Self::restore_inner(payload, cfg, Metrics::from_flag(cfg.metrics), None)
    }

    /// Restore a suspended job from the checkpoint file at `path`,
    /// verifying the container's checksum. See
    /// [`BatchJob::restore_from_payload`] for the config contract.
    pub fn restore_from_file(path: &Path, cfg: &BatchConfig) -> Result<Self, RunError>
    where
        A: Checkpoint,
    {
        let sink = Metrics::from_flag(cfg.metrics);
        let t0 = sink.is_enabled().then(Instant::now);
        let payload = read_checkpoint_file(path).map_err(ckpt_err)?;
        Self::restore_inner(&payload, cfg, sink, t0)
    }

    fn restore_inner(
        payload: &[u8],
        cfg: &BatchConfig,
        sink: Metrics,
        t0: Option<Instant>,
    ) -> Result<Self, RunError>
    where
        A: Checkpoint,
    {
        let decoded: DecodedCheckpoint<A> =
            decode_boundary(payload, cfg.budget.max_bytes_per_instance).map_err(ckpt_err)?;
        if let Some(t0) = t0 {
            sink.record_checkpoint_restore(
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        let stored_guard = decoded
            .guard
            .as_ref()
            .map(|(policy, mode, _)| (*policy, *mode));
        if cfg.guard != stored_guard {
            return Err(ckpt_err(format!(
                "guard config mismatch: checkpoint has {stored_guard:?}, config has {:?}",
                cfg.guard
            )));
        }
        let guard_blob = decoded.guard.map(|(_, _, blob)| blob);
        Self::assemble(
            decoded.states,
            (decoded.total_passes, decoded.same_order),
            cfg,
            JobStart {
                completed: decoded.completed_passes,
                processed: decoded.processed,
                driver_peak: decoded.driver_peak,
                generations: decoded.generations,
                resumed_from: Some(decoded.completed_passes),
            },
            guard_blob,
            sink,
        )
    }

    /// Total stream passes the job's algorithm contract declares.
    pub fn passes(&self) -> usize {
        self.total_passes
    }

    /// Passes completed so far (including checkpointed passes of the run
    /// this job was restored from).
    pub fn completed_passes(&self) -> usize {
        self.completed
    }

    /// Whether every pass has run; a complete job is ready to
    /// [`BatchJob::finish`].
    pub fn is_complete(&self) -> bool {
        self.completed >= self.total_passes
    }

    /// Whether every pass must replay the same stream order.
    pub fn requires_same_order(&self) -> bool {
        self.same_order
    }

    /// `Some(p)` when this job was restored from a checkpoint taken after
    /// `p` completed passes.
    pub fn resumed_from(&self) -> Option<usize> {
        self.resumed_from
    }

    /// Aggregate live state across the job's surviving instances — what a
    /// host's admission controller charges the job for between passes.
    pub fn total_live_bytes(&self) -> usize {
        self.driven.fanout().total_live_bytes()
    }

    /// Record how many times the pass source actually generated an item
    /// sequence for this job (on top of any generations already carried in
    /// the checkpoint this job was restored from). Pure accounting for
    /// [`BatchReport::stream_generations`] and the checkpoint payload;
    /// never affects what the run computes.
    pub fn set_source_generations(&mut self, generations: usize) {
        self.source_generations = generations;
    }

    /// Run the next pass, fanning `items` — that pass's full item sequence
    /// — out to every instance. On return every instance is back on the
    /// calling thread: the boundary is observable ([`BatchJob::total_live_bytes`]),
    /// persistable ([`BatchJob::write_checkpoint`]), and the host may
    /// simply stop here to preempt the job. Batch-wide budget violations
    /// (total bytes, deadline) and strict-guard aborts fail the job with a
    /// typed [`RunError`]; per-instance failures quarantine the instance
    /// and keep the job alive.
    ///
    /// # Panics
    ///
    /// Panics if the job [`is_complete`](BatchJob::is_complete).
    pub fn run_pass(&mut self, items: &[StreamItem]) -> Result<(), RunError>
    where
        A: Send,
    {
        assert!(
            !self.is_complete(),
            "run_pass on a complete job ({} of {} passes)",
            self.completed,
            self.total_passes
        );
        let pass = self.completed;
        let pass_t0 = self.sink.is_enabled().then(Instant::now);
        let items_before = self.processed;
        let scope_result = crossbeam::thread::scope(|scope| -> Result<(), RunError> {
            if self.threads > 1 {
                let depth = self.cfg.channel_depth.max(1);
                let fanout = self.driven.fanout_mut();
                let instance_states = std::mem::take(&mut fanout.states);
                let (done_tx, done_rx) = crossbeam::channel::bounded(self.threads);
                let mut senders = Vec::with_capacity(self.threads);
                let mut iter = instance_states.into_iter().peekable();
                while iter.peek().is_some() {
                    let shard_states: Vec<InstanceState<A>> =
                        iter.by_ref().take(self.shard_size).collect();
                    let (tx, rx) = crossbeam::channel::bounded::<Arc<Chunk>>(depth);
                    senders.push(tx);
                    let done_tx = done_tx.clone();
                    scope.spawn(move |_| {
                        let mut shard_states = shard_states;
                        for chunk in rx.iter() {
                            for st in shard_states.iter_mut() {
                                st.apply_chunk(&chunk);
                            }
                        }
                        let _ = done_tx.send(shard_states);
                    });
                }
                drop(done_tx);
                fanout.workers = Some(PassWorkers {
                    senders,
                    done: done_rx,
                });
            }
            let res = self.driven.drive(
                pass,
                items,
                self.cfg.slice_dispatch,
                &mut self.peak,
                &mut self.processed,
            );
            self.driven.fanout_mut().join_pass_workers();
            if let Some(t0) = pass_t0 {
                // Per-pass aggregate: `peak_bytes` is the batch's live
                // state across all instances at the boundary (the
                // residency a budget would see), not any single
                // instance's peak — those are in the per-instance
                // reports.
                self.pass_metrics.push(PassMetrics {
                    pass: pass as u32,
                    wall_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    items: (self.processed - items_before) as u64,
                    slices: 0,
                    lists: 0,
                    peak_bytes: self.driven.fanout().total_live_bytes() as u64,
                    series: Vec::new(),
                });
            }
            res
        });
        match scope_result {
            Ok(run_result) => run_result?,
            Err(panic) => std::panic::resume_unwind(panic),
        }
        // Pass boundary: every instance is back on this thread.
        if let Some(limit) = self.cfg.budget.max_total_bytes {
            let used = self.driven.fanout().total_live_bytes();
            if used > limit {
                return Err(RunError::SpaceBudgetExceeded { used, limit });
            }
        }
        self.completed = pass + 1;
        Ok(())
    }

    /// Serialize the boundary — every live instance's state, every
    /// quarantined outcome, the shared guard, the driver counters — as a
    /// checkpoint payload. Only an incomplete job has a boundary to
    /// capture; a complete job returns [`RunError::Checkpoint`].
    pub fn checkpoint_payload(&self) -> Result<Vec<u8>, RunError>
    where
        A: Checkpoint,
    {
        if self.is_complete() {
            return Err(ckpt_err("job already complete: nothing to checkpoint"));
        }
        let guard = self.driven.guard_snapshot()?;
        encode_boundary(&PassBoundary {
            completed_passes: self.completed,
            total_passes: self.total_passes,
            same_order: self.same_order,
            states: &self.driven.fanout().states,
            guard,
            processed: self.processed,
            driver_peak: self.peak.peak(),
            generations: self.base_generations + self.source_generations,
        })
        .map_err(ckpt_err)
    }

    /// Write the boundary checkpoint to `path` atomically (temp file +
    /// rename, checksummed container) — the persistence behind suspension,
    /// eviction, and crash recovery.
    pub fn write_checkpoint(&self, path: &Path) -> Result<(), RunError>
    where
        A: Checkpoint,
    {
        let t0 = self.sink.is_enabled().then(Instant::now);
        let payload = self.checkpoint_payload()?;
        write_checkpoint_file(path, &payload).map_err(ckpt_err)?;
        if let Some(t0) = t0 {
            self.sink.record_checkpoint_write(
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                payload.len() as u64,
            );
        }
        Ok(())
    }

    /// Disassemble a complete job into its outputs and report, exactly as
    /// [`BatchRunner::try_run`] would return them.
    ///
    /// # Panics
    ///
    /// Panics if the job is not [`is_complete`](BatchJob::is_complete).
    pub fn finish(self) -> BatchOutcome<A::Output> {
        assert!(
            self.is_complete(),
            "finish on an incomplete job ({} of {} passes)",
            self.completed,
            self.total_passes
        );
        let BatchJob {
            driven,
            total_passes,
            threads,
            processed,
            base_generations,
            source_generations,
            resumed_from,
            sink,
            pass_metrics,
            ..
        } = self;
        let guard = driven.guard_stats();
        let fanout = driven.into_fanout();
        let n = fanout.states.len();
        let mut outputs = Vec::with_capacity(n);
        let mut per_instance = Vec::with_capacity(n);
        let mut items_fanned_out = 0usize;
        for st in fanout.states {
            let (report, output) = st.into_parts();
            items_fanned_out += report.items;
            per_instance.push(report);
            outputs.push(output);
        }
        let metrics = sink.snapshot().map(|base| {
            let mut counters = ObsCounters::default();
            let mut instance_peak = 0usize;
            for r in &per_instance {
                if let Some(c) = &r.counters {
                    counters.merge(c);
                }
                instance_peak = instance_peak.max(r.peak_state_bytes);
            }
            MetricsSnapshot {
                schema: base.schema,
                runs: n as u64,
                passes: pass_metrics,
                counters,
                guard,
                checkpoint: base.checkpoint,
                retry: base.retry,
                peak_state_bytes: instance_peak as u64,
                items_processed: processed as u64,
            }
        });
        BatchOutcome {
            outputs,
            report: BatchReport {
                instances: n,
                threads,
                passes: total_passes,
                stream_items: processed,
                stream_generations: base_generations + source_generations,
                items_fanned_out,
                per_instance,
                guard,
                resumed_from,
                metrics,
            },
        }
    }
}

/// Everything visible at an interior pass boundary — what a checkpoint
/// captures.
struct PassBoundary<'a, A: MultiPassAlgorithm> {
    completed_passes: usize,
    total_passes: usize,
    same_order: bool,
    states: &'a [InstanceState<A>],
    guard: Option<(GuardPolicy, ValidatorMode, Vec<u8>)>,
    processed: usize,
    driver_peak: usize,
    generations: usize,
}

/// Map a checkpoint-layer failure into the run-level error space.
fn ckpt_err(e: impl std::fmt::Display) -> RunError {
    RunError::Checkpoint {
        message: e.to_string(),
    }
}

/// Runs many instances of one algorithm over a single shared stream replay.
/// See the module docs for the execution model.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchRunner;

impl BatchRunner {
    /// Run every instance in `instances` over `graph` streamed per
    /// `orders`, generating each pass once.
    ///
    /// All instances must agree on `passes()` and `requires_same_order()`
    /// (they are copies of one algorithm at different seeds); an empty
    /// batch returns [`RunError::EmptyBatch`] and disagreeing instances
    /// return [`RunError::MixedPassContracts`]. Order-contract violations
    /// return the same typed [`RunError`]s as
    /// [`Runner::try_run`](crate::runner::Runner::try_run); a strict shared
    /// guard aborts the whole batch with [`RunError::Invalid`]. Individual
    /// instance failures (panic, per-instance budget) do **not** fail the
    /// batch: the instance is quarantined, its output slot is `None`, and
    /// its [`InstanceReport::outcome`] says why.
    pub fn try_run<A>(
        graph: &Graph,
        instances: Vec<A>,
        orders: &PassOrders,
        cfg: &BatchConfig,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Send,
        A::Output: Send,
    {
        let job = BatchJob::new(instances, cfg)?;
        orders.check(job.passes(), job.requires_same_order())?;
        let mut source = PassSource::Graph {
            graph,
            orders,
            cache: None,
            generations: 0,
        };
        Self::drive(job, &mut source, None)
    }

    /// Run every instance over explicit per-pass item sequences (which may
    /// differ per pass, e.g. [`crate::fault::FaultPlan`] replays). No order
    /// contract is checked — raw item sequences carry no declared order,
    /// exactly as with [`crate::runner::run_item_passes`].
    pub fn try_run_items<A, F>(
        instances: Vec<A>,
        supply: F,
        cfg: &BatchConfig,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Send,
        A::Output: Send,
        F: FnMut(usize) -> Vec<StreamItem>,
    {
        let job = BatchJob::new(instances, cfg)?;
        let mut supply = supply;
        let mut source = PassSource::Items {
            supply: Box::new(&mut supply),
            current: Vec::new(),
            generations: 0,
        };
        Self::drive(job, &mut source, None)
    }

    /// Like [`BatchRunner::try_run`], additionally writing a checkpoint of
    /// the whole batch to `path` at every interior pass boundary (atomic
    /// write: temp file + rename). A process killed between passes leaves a
    /// complete checkpoint that [`BatchRunner::resume`] picks up.
    ///
    /// The checkpoint written at the last interior boundary is left in
    /// place after a successful run, so callers can inspect or discard it.
    pub fn try_run_checkpointed<A>(
        graph: &Graph,
        instances: Vec<A>,
        orders: &PassOrders,
        cfg: &BatchConfig,
        path: &Path,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Checkpoint + Send,
        A::Output: Send,
    {
        let job = BatchJob::new(instances, cfg)?;
        orders.check(job.passes(), job.requires_same_order())?;
        let mut source = PassSource::Graph {
            graph,
            orders,
            cache: None,
            generations: 0,
        };
        let mut hook = |job: &BatchJob<A>| job.write_checkpoint(path);
        Self::drive(job, &mut source, Some(&mut hook))
    }

    /// Resume a batch from a checkpoint written by
    /// [`BatchRunner::try_run_checkpointed`], replaying only the remaining
    /// passes. The resumed run produces bit-for-bit the per-instance
    /// outputs of the uninterrupted run and keeps checkpointing to the same
    /// `path` at later boundaries.
    ///
    /// `cfg` must request the same guard configuration the checkpointed run
    /// used (the guard's cross-pass state is part of the checkpoint);
    /// mismatches return [`RunError::Checkpoint`]. `orders` must describe
    /// the same stream — that is unverifiable from the checkpoint alone and
    /// is the caller's contract, exactly as seeds are.
    pub fn resume<A>(
        graph: &Graph,
        orders: &PassOrders,
        cfg: &BatchConfig,
        path: &Path,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Checkpoint + Send,
        A::Output: Send,
    {
        let job = BatchJob::<A>::restore_from_file(path, cfg)?;
        orders.check(job.passes(), job.requires_same_order())?;
        let mut source = PassSource::Graph {
            graph,
            orders,
            cache: None,
            generations: 0,
        };
        let mut hook = |job: &BatchJob<A>| job.write_checkpoint(path);
        Self::drive(job, &mut source, Some(&mut hook))
    }

    fn make_states<A: MultiPassAlgorithm>(
        instances: Vec<A>,
        cfg: &BatchConfig,
    ) -> Vec<InstanceState<A>> {
        let limit = cfg.budget.max_bytes_per_instance;
        instances
            .into_iter()
            .enumerate()
            .map(|(i, a)| InstanceState::new(a, i, limit))
            .collect()
    }

    fn contract<A: MultiPassAlgorithm>(instances: &[A]) -> Result<(usize, bool), RunError> {
        let Some(first) = instances.first() else {
            return Err(RunError::EmptyBatch);
        };
        let passes = first.passes();
        let same_order = first.requires_same_order();
        if instances
            .iter()
            .any(|a| a.passes() != passes || a.requires_same_order() != same_order)
        {
            return Err(RunError::MixedPassContracts);
        }
        Ok((passes, same_order))
    }

    /// Loop `job` to completion over `source`, invoking `at_boundary`
    /// (where the one-shot checkpoint hooks live) at every interior pass
    /// boundary.
    fn drive<A>(
        mut job: BatchJob<A>,
        source: &mut PassSource<'_>,
        mut at_boundary: Option<&mut BoundaryHook<'_, A>>,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Send,
        A::Output: Send,
    {
        while !job.is_complete() {
            let items = source.items_for(job.completed_passes());
            job.run_pass(items)?;
            job.set_source_generations(source.generations());
            if !job.is_complete() {
                if let Some(hook) = at_boundary.as_deref_mut() {
                    hook(&job)?;
                }
            }
        }
        Ok(job.finish())
    }
}

// ---------------------------------------------------------------------------
// Checkpoint payload encoding
// ---------------------------------------------------------------------------

const STATUS_LIVE: u8 = 0;
const STATUS_FAILED: u8 = 1;
const STATUS_PANICKED: u8 = 2;
const STATUS_OVER_BUDGET: u8 = 3;

fn encode_boundary<A>(b: &PassBoundary<'_, A>) -> io::Result<Vec<u8>>
where
    A: MultiPassAlgorithm + Checkpoint,
{
    let mut w: Vec<u8> = Vec::new();
    write_u32(&mut w, b.completed_passes as u32)?;
    write_u32(&mut w, b.total_passes as u32)?;
    write_u8(&mut w, b.same_order as u8)?;
    write_usize(&mut w, b.states.len())?;
    write_usize(&mut w, b.processed)?;
    write_usize(&mut w, b.driver_peak)?;
    write_usize(&mut w, b.generations)?;
    match &b.guard {
        None => write_u8(&mut w, 0)?,
        Some((policy, mode, blob)) => {
            write_u8(&mut w, 1)?;
            encode_policy(&mut w, *policy)?;
            encode_mode(&mut w, *mode)?;
            write_bytes(&mut w, blob)?;
        }
    }
    for st in b.states {
        write_usize(&mut w, st.items)?;
        write_usize(&mut w, st.peak.peak())?;
        match &st.status {
            InstanceStatus::Live => {
                write_u8(&mut w, STATUS_LIVE)?;
                let algo = st.algo.as_ref().ok_or_else(|| {
                    crate::checkpoint::corrupt("live instance lost its algorithm")
                })?;
                let mut blob = Vec::new();
                algo.save(&mut blob)?;
                write_bytes(&mut w, &blob)?;
            }
            InstanceStatus::Failed(error) => {
                write_u8(&mut w, STATUS_FAILED)?;
                error.save(&mut w)?;
            }
            InstanceStatus::Panicked(message) => {
                write_u8(&mut w, STATUS_PANICKED)?;
                crate::checkpoint::write_str(&mut w, message)?;
            }
            InstanceStatus::OverBudget { peak_bytes, limit } => {
                write_u8(&mut w, STATUS_OVER_BUDGET)?;
                write_usize(&mut w, *peak_bytes)?;
                write_usize(&mut w, *limit)?;
            }
        }
    }
    Ok(w)
}

struct DecodedCheckpoint<A: MultiPassAlgorithm> {
    completed_passes: usize,
    total_passes: usize,
    same_order: bool,
    processed: usize,
    driver_peak: usize,
    generations: usize,
    guard: Option<(GuardPolicy, ValidatorMode, Vec<u8>)>,
    states: Vec<InstanceState<A>>,
}

fn decode_boundary<A>(payload: &[u8], byte_limit: Option<usize>) -> io::Result<DecodedCheckpoint<A>>
where
    A: MultiPassAlgorithm + Checkpoint,
{
    let mut r: &[u8] = payload;
    let r = &mut r;
    let completed_passes = read_u32(r)? as usize;
    let total_passes = read_u32(r)? as usize;
    let same_order = read_u8(r)? != 0;
    if completed_passes >= total_passes {
        return Err(crate::checkpoint::corrupt(format!(
            "checkpoint claims {completed_passes} of {total_passes} passes completed"
        )));
    }
    let instance_count = read_usize(r)?;
    let processed = read_usize(r)?;
    let driver_peak = read_usize(r)?;
    let generations = read_usize(r)?;
    let guard = match read_u8(r)? {
        0 => None,
        1 => {
            let policy = decode_policy(r)?;
            let mode = decode_mode(r)?;
            let blob = read_bytes(r)?;
            Some((policy, mode, blob))
        }
        t => {
            return Err(crate::checkpoint::corrupt(format!(
                "bad guard presence tag {t}"
            )))
        }
    };
    let mut states = Vec::with_capacity(instance_count.min(1 << 16));
    for index in 0..instance_count {
        let items = read_usize(r)?;
        let stored_peak = read_usize(r)?;
        let tag = read_u8(r)?;
        let (status, algo) = match tag {
            STATUS_LIVE => {
                let blob = read_bytes(r)?;
                let algo = A::restore(&mut blob.as_slice())?;
                (InstanceStatus::Live, Some(algo))
            }
            STATUS_FAILED => (InstanceStatus::Failed(RunError::restore(r)?), None),
            STATUS_PANICKED => (
                InstanceStatus::Panicked(crate::checkpoint::read_str(r)?),
                None,
            ),
            STATUS_OVER_BUDGET => (
                InstanceStatus::OverBudget {
                    peak_bytes: read_usize(r)?,
                    limit: read_usize(r)?,
                },
                None,
            ),
            t => {
                return Err(crate::checkpoint::corrupt(format!(
                    "bad instance status tag {t}"
                )))
            }
        };
        let mut peak = PeakTracker::new();
        peak.observe(stored_peak);
        states.push(InstanceState {
            index,
            shard: 0,
            algo,
            peak,
            items,
            pass: completed_passes,
            byte_limit,
            status,
        });
    }
    Ok(DecodedCheckpoint {
        completed_passes,
        total_passes,
        same_order,
        processed,
        driver_peak,
        generations,
        guard,
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{read_u64, write_u64};
    use crate::fault::{FaultKind, FaultPlan};
    use crate::guard::GuardPolicy;
    use crate::runner::{run_item_passes, Runner};
    use crate::validate::{StreamError, ValidatorMode};
    use adjstream_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Seeded toy estimator: hashes every item with its seed, returning a
    /// deterministic digest — a stand-in for "same seed + same stream ⇒
    /// same output". Can be armed to panic at a given item index or to
    /// grow its reported state per item, for fault-tolerance tests.
    struct Digest {
        seed: u64,
        passes: usize,
        same_order: bool,
        acc: u64,
        items: usize,
        panic_at_item: Option<usize>,
        bytes_per_item: usize,
    }

    impl Digest {
        fn new(seed: u64, passes: usize, same_order: bool) -> Self {
            Digest {
                seed,
                passes,
                same_order,
                acc: 0,
                items: 0,
                panic_at_item: None,
                bytes_per_item: 0,
            }
        }

        fn panicking_at(mut self, item: usize) -> Self {
            self.panic_at_item = Some(item);
            self
        }

        fn growing(mut self, bytes_per_item: usize) -> Self {
            self.bytes_per_item = bytes_per_item;
            self
        }
    }

    impl SpaceUsage for Digest {
        fn space_bytes(&self) -> usize {
            32 + self.items % 7 + self.items * self.bytes_per_item
        }
    }

    impl MultiPassAlgorithm for Digest {
        type Output = u64;
        fn passes(&self) -> usize {
            self.passes
        }
        fn requires_same_order(&self) -> bool {
            self.same_order
        }
        fn begin_pass(&mut self, pass: usize) {
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(pass as u64 ^ self.seed);
        }
        fn begin_list(&mut self, owner: VertexId) {
            self.acc = self.acc.rotate_left(7) ^ (owner.0 as u64);
        }
        fn item(&mut self, src: VertexId, dst: VertexId) {
            if self.panic_at_item == Some(self.items) {
                panic!("injected panic at item {}", self.items);
            }
            self.items += 1;
            self.acc = self
                .acc
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(((src.0 as u64) << 32 | dst.0 as u64) ^ self.seed);
        }
        fn end_list(&mut self, owner: VertexId) {
            self.acc ^= (owner.0 as u64).wrapping_mul(0x9E37_79B9);
        }
        fn finish(self) -> u64 {
            self.acc
        }
    }

    impl Checkpoint for Digest {
        fn save(&self, w: &mut dyn io::Write) -> io::Result<()> {
            write_u64(w, self.seed)?;
            write_usize(w, self.passes)?;
            write_u8(w, self.same_order as u8)?;
            write_u64(w, self.acc)?;
            write_usize(w, self.items)?;
            write_u8(w, self.panic_at_item.is_some() as u8)?;
            write_usize(w, self.panic_at_item.unwrap_or(0))?;
            write_usize(w, self.bytes_per_item)
        }

        fn restore(r: &mut dyn io::Read) -> io::Result<Self> {
            let seed = read_u64(r)?;
            let passes = read_usize(r)?;
            let same_order = read_u8(r)? != 0;
            let acc = read_u64(r)?;
            let items = read_usize(r)?;
            let has_panic = read_u8(r)? != 0;
            let panic_item = read_usize(r)?;
            let bytes_per_item = read_usize(r)?;
            Ok(Digest {
                seed,
                passes,
                same_order,
                acc,
                items,
                panic_at_item: has_panic.then_some(panic_item),
                bytes_per_item,
            })
        }
    }

    fn er_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnm(40, 160, &mut rng)
    }

    fn sequential_digests(g: &Graph, orders: &PassOrders, seeds: &[u64]) -> Vec<u64> {
        seeds
            .iter()
            .map(|&s| Runner::run(g, Digest::new(s, 2, false), orders).0)
            .collect()
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "adjstream-batch-ckpt-{}-{name}",
            std::process::id()
        ));
        p
    }

    /// Run a closure with the default panic hook silenced, so injected
    /// panics don't spray backtraces over test output.
    fn quietly<T>(f: impl FnOnce() -> T) -> T {
        // Serialize hook swaps across test threads.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn batched_matches_sequential_bit_for_bit_at_any_thread_count() {
        let g = er_graph(3);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 11));
        let seeds: Vec<u64> = (100..109).collect();
        let want: Vec<Option<u64>> = sequential_digests(&g, &orders, &seeds)
            .into_iter()
            .map(Some)
            .collect();
        for threads in [1, 2, 4, 16] {
            let instances: Vec<Digest> = seeds.iter().map(|&s| Digest::new(s, 2, false)).collect();
            let out = BatchRunner::try_run(
                &g,
                instances,
                &orders,
                &BatchConfig {
                    threads,
                    chunk_events: 64,
                    ..BatchConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.outputs, want, "threads = {threads}");
            assert_eq!(out.report.instances, 9);
            assert_eq!(out.report.passes, 2);
            assert_eq!(out.report.survivors(), 9);
            assert!(out
                .report
                .per_instance
                .iter()
                .all(|r| r.outcome == InstanceOutcome::Ok));
        }
    }

    #[test]
    fn same_order_passes_generate_the_stream_once() {
        let g = er_graph(5);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 2));
        let instances: Vec<Digest> = (0..4).map(|s| Digest::new(s, 2, false)).collect();
        let out = BatchRunner::try_run(&g, instances, &orders, &BatchConfig::default()).unwrap();
        assert_eq!(out.report.stream_generations, 1);
        assert_eq!(out.report.stream_items, 2 * 2 * 160); // 2 passes × 2m
        assert_eq!(out.report.items_fanned_out, 4 * 2 * 2 * 160);
        // Differing per-pass orders regenerate.
        let orders = PassOrders::PerPass(vec![StreamOrder::natural(40), StreamOrder::reversed(40)]);
        let instances: Vec<Digest> = (0..4).map(|s| Digest::new(s, 2, false)).collect();
        let out = BatchRunner::try_run(&g, instances, &orders, &BatchConfig::default()).unwrap();
        assert_eq!(out.report.stream_generations, 2);
    }

    #[test]
    fn order_contract_errors_match_the_sequential_runner() {
        let g = er_graph(7);
        // PerPass length mismatch.
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, false)).collect();
        let err = BatchRunner::try_run(
            &g,
            instances,
            &PassOrders::PerPass(vec![StreamOrder::natural(40)]),
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::WrongOrderCount {
                expected: 2,
                got: 1
            }
        );
        // requires_same_order violated.
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, true)).collect();
        let err = BatchRunner::try_run(
            &g,
            instances,
            &PassOrders::PerPass(vec![StreamOrder::natural(40), StreamOrder::reversed(40)]),
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, RunError::OrderMismatch);
        // Equal PerPass entries satisfy the same-order requirement.
        let order = StreamOrder::shuffled(40, 4);
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, true)).collect();
        assert!(BatchRunner::try_run(
            &g,
            instances,
            &PassOrders::PerPass(vec![order.clone(), order]),
            &BatchConfig::default(),
        )
        .is_ok());
    }

    #[test]
    fn per_instance_reports_cover_every_instance() {
        let g = er_graph(9);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let instances: Vec<Digest> = (0..10).map(|s| Digest::new(s, 2, false)).collect();
        let cfg = BatchConfig::with_threads(3);
        let out = BatchRunner::try_run(&g, instances, &orders, &cfg).unwrap();
        assert_eq!(out.report.per_instance.len(), 10);
        assert_eq!(out.report.threads, 3);
        // Chunked sharding: ⌈10/3⌉ = 4 → shards 0,0,0,0,1,1,1,1,2,2.
        let shards: Vec<usize> = out.report.per_instance.iter().map(|r| r.shard).collect();
        assert_eq!(shards, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        for r in &out.report.per_instance {
            assert_eq!(r.items, 2 * 2 * 160);
            assert!(r.peak_state_bytes >= 32);
        }
    }

    #[test]
    fn shared_strict_guard_aborts_the_whole_batch_with_position() {
        let g = er_graph(13);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, 6)).collect_items();
        let c = FaultPlan::new(8)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        assert!(c.skipped().is_empty());
        for threads in [1, 4] {
            let instances: Vec<Digest> = (0..5).map(|s| Digest::new(s, 1, false)).collect();
            let cfg = BatchConfig {
                threads,
                guard: Some((GuardPolicy::Strict, ValidatorMode::Exact)),
                ..BatchConfig::default()
            };
            let err = BatchRunner::try_run_items(instances, |p| c.items_for_pass(p).to_vec(), &cfg)
                .unwrap_err();
            let RunError::Invalid { pass: 0, error } = err else {
                panic!("expected Invalid, got {err:?}");
            };
            assert!(matches!(error, StreamError::SelfLoop { .. }));
        }
    }

    #[test]
    fn shared_repair_guard_stats_match_a_sequential_guarded_run() {
        let g = er_graph(17);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, 9)).collect_items();
        let c = FaultPlan::new(21)
            .with(FaultKind::DropDirection, 2)
            .with(FaultKind::DuplicateItem, 1)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        // Sequential reference: one instance behind its own guard.
        let (_, seq_report) = run_item_passes(
            Guarded::new(Digest::new(0, 2, false), GuardPolicy::Repair),
            |p| c.items_for_pass(p).to_vec(),
        )
        .unwrap();
        let want = seq_report.guard.expect("guarded run has stats");
        for threads in [1, 3] {
            let instances: Vec<Digest> = (0..6).map(|s| Digest::new(s, 2, false)).collect();
            let cfg = BatchConfig {
                threads,
                guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
                ..BatchConfig::default()
            };
            let out = BatchRunner::try_run_items(instances, |p| c.items_for_pass(p).to_vec(), &cfg)
                .unwrap();
            let got = out.report.guard.expect("shared guard publishes stats");
            // Seeded hashing makes the validator's map capacities — and so
            // its peak bytes — a pure function of the stream, so the whole
            // stats struct is the deterministic contract.
            assert_eq!(got, want, "threads = {threads}");
            assert!(got.validator_peak_bytes > 0);
            // Repaired items never reached any instance: every instance saw
            // the same (repaired) item count.
            let per_items: Vec<usize> = out.report.per_instance.iter().map(|r| r.items).collect();
            assert!(per_items.iter().all(|&i| i == per_items[0]));
            assert!(per_items[0] < 2 * c.items().len());
        }
    }

    #[test]
    fn guarded_outputs_stay_bitwise_reproducible_across_engines() {
        let g = er_graph(23);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, 5)).collect_items();
        let c = FaultPlan::new(2)
            .with(FaultKind::DuplicateItem, 2)
            .apply(&items);
        let seeds: Vec<u64> = (40..46).collect();
        // Sequential: each instance individually guarded sees the same
        // repaired stream the shared guard produces.
        let want: Vec<Option<u64>> = seeds
            .iter()
            .map(|&s| {
                Some(
                    run_item_passes(
                        Guarded::new(Digest::new(s, 2, false), GuardPolicy::Repair),
                        |p| c.items_for_pass(p).to_vec(),
                    )
                    .unwrap()
                    .0,
                )
            })
            .collect();
        let instances: Vec<Digest> = seeds.iter().map(|&s| Digest::new(s, 2, false)).collect();
        let cfg = BatchConfig {
            threads: 4,
            chunk_events: 32,
            guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
            ..BatchConfig::default()
        };
        let out =
            BatchRunner::try_run_items(instances, |p| c.items_for_pass(p).to_vec(), &cfg).unwrap();
        assert_eq!(out.outputs, want);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let g = er_graph(1);
        let err = BatchRunner::try_run(
            &g,
            Vec::<Digest>::new(),
            &PassOrders::Same(StreamOrder::natural(40)),
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, RunError::EmptyBatch);
    }

    #[test]
    fn mixed_pass_contracts_are_a_typed_error() {
        let g = er_graph(1);
        let err = BatchRunner::try_run(
            &g,
            vec![Digest::new(0, 1, false), Digest::new(1, 2, false)],
            &PassOrders::Same(StreamOrder::natural(40)),
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, RunError::MixedPassContracts);
    }

    #[test]
    fn more_threads_than_instances_clamps() {
        let g = er_graph(2);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let instances: Vec<Digest> = (0..2).map(|s| Digest::new(s, 1, false)).collect();
        let out =
            BatchRunner::try_run(&g, instances, &orders, &BatchConfig::with_threads(8)).unwrap();
        assert_eq!(out.report.threads, 2);
        assert_eq!(out.outputs.len(), 2);
    }

    #[test]
    fn panicking_instance_is_quarantined_and_survivors_stay_bit_for_bit() {
        let g = er_graph(31);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 8));
        let seeds: Vec<u64> = (200..209).collect();
        let want = sequential_digests(&g, &orders, &seeds);
        let victim = 4usize;
        for threads in [1, 4] {
            let instances: Vec<Digest> = seeds
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let d = Digest::new(s, 2, false);
                    if i == victim {
                        // Panic mid-pass-1 (each pass delivers 2·160 items).
                        d.panicking_at(100)
                    } else {
                        d
                    }
                })
                .collect();
            let out = quietly(|| {
                BatchRunner::try_run(
                    &g,
                    instances,
                    &orders,
                    &BatchConfig {
                        threads,
                        chunk_events: 64,
                        ..BatchConfig::default()
                    },
                )
                .unwrap()
            });
            assert_eq!(out.report.survivors(), 8, "threads = {threads}");
            for (i, (output, report)) in
                out.outputs.iter().zip(&out.report.per_instance).enumerate()
            {
                if i == victim {
                    assert_eq!(*output, None);
                    let InstanceOutcome::Panicked { message } = &report.outcome else {
                        panic!("expected Panicked, got {:?}", report.outcome);
                    };
                    assert!(message.contains("injected panic"), "{message}");
                } else {
                    assert_eq!(*output, Some(want[i]), "instance {i}, threads {threads}");
                    assert_eq!(report.outcome, InstanceOutcome::Ok);
                }
            }
        }
    }

    #[test]
    fn per_instance_budget_quarantines_only_the_hog() {
        let g = er_graph(37);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let want = sequential_digests(&g, &orders, &[300, 302]);
        // Instance 1 grows 100 bytes per item; limit trips well within
        // pass 1 (2·160 items/pass).
        let instances = vec![
            Digest::new(300, 2, false),
            Digest::new(301, 2, false).growing(100),
            Digest::new(302, 2, false),
        ];
        let out = BatchRunner::try_run(
            &g,
            instances,
            &orders,
            &BatchConfig {
                budget: Budget {
                    max_bytes_per_instance: Some(5_000),
                    ..Budget::default()
                },
                ..BatchConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.report.survivors(), 2);
        assert_eq!(out.outputs[0], Some(want[0]));
        assert_eq!(out.outputs[1], None);
        assert_eq!(out.outputs[2], Some(want[1]));
        let InstanceOutcome::BudgetExceeded { peak_bytes, limit } =
            out.report.per_instance[1].outcome
        else {
            panic!("expected BudgetExceeded");
        };
        assert_eq!(limit, 5_000);
        assert!(peak_bytes > 5_000);
        // The hog stopped receiving items after quarantine.
        assert!(out.report.per_instance[1].items < out.report.per_instance[0].items);
    }

    #[test]
    fn aggregate_budget_fails_the_whole_run() {
        let g = er_graph(41);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, false)).collect();
        let err = BatchRunner::try_run(
            &g,
            instances,
            &orders,
            &BatchConfig {
                budget: Budget {
                    max_total_bytes: Some(1),
                    ..Budget::default()
                },
                ..BatchConfig::default()
            },
        )
        .unwrap_err();
        let RunError::SpaceBudgetExceeded { used, limit: 1 } = err else {
            panic!("expected SpaceBudgetExceeded, got {err:?}");
        };
        assert!(used >= 3 * 32);
    }

    #[test]
    fn zero_deadline_fails_with_deadline_exceeded() {
        let g = er_graph(43);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let instances: Vec<Digest> = (0..2).map(|s| Digest::new(s, 2, false)).collect();
        let err = BatchRunner::try_run(
            &g,
            instances,
            &orders,
            &BatchConfig {
                budget: Budget {
                    deadline: Some(Duration::ZERO),
                    ..Budget::default()
                },
                ..BatchConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, RunError::DeadlineExceeded { limit_ms: 0 });
    }

    #[test]
    fn checkpointed_run_matches_and_resumes_bit_for_bit() {
        let g = er_graph(47);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 13));
        let seeds: Vec<u64> = (500..505).collect();
        let want: Vec<Option<u64>> = sequential_digests(&g, &orders, &seeds)
            .into_iter()
            .map(Some)
            .collect();
        let path = ckpt_path("resume");
        let _ = std::fs::remove_file(&path);
        // Uninterrupted checkpointed run: outputs unchanged, checkpoint
        // file left at the pass-0/1 boundary — exactly what a process
        // killed after the boundary write would leave behind.
        let instances: Vec<Digest> = seeds.iter().map(|&s| Digest::new(s, 2, false)).collect();
        let out = BatchRunner::try_run_checkpointed(
            &g,
            instances,
            &orders,
            &BatchConfig::default(),
            &path,
        )
        .unwrap();
        assert_eq!(out.outputs, want);
        assert_eq!(out.report.resumed_from, None);
        assert!(path.exists(), "boundary checkpoint persists");
        // Resume from that checkpoint at several thread counts: pass 1
        // replays, outputs are bit-for-bit those of the full run.
        for threads in [1, 3] {
            let resumed = BatchRunner::resume::<Digest>(
                &g,
                &orders,
                &BatchConfig {
                    threads,
                    ..BatchConfig::default()
                },
                &path,
            )
            .unwrap();
            assert_eq!(resumed.outputs, want, "threads = {threads}");
            assert_eq!(resumed.report.resumed_from, Some(1));
            assert_eq!(resumed.report.passes, 2);
            assert_eq!(resumed.report.survivors(), 5);
            // All stream items (both passes) are accounted for in the
            // resumed report: pass 0's count came from the checkpoint.
            assert_eq!(resumed.report.stream_items, 2 * 2 * 160);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_preserves_quarantined_outcomes() {
        let g = er_graph(53);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 17));
        let seeds: Vec<u64> = (600..604).collect();
        let want = sequential_digests(&g, &orders, &seeds);
        let path = ckpt_path("quarantine");
        let _ = std::fs::remove_file(&path);
        let instances: Vec<Digest> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let d = Digest::new(s, 2, false);
                if i == 2 {
                    d.panicking_at(50) // dies in pass 0, before the boundary
                } else {
                    d
                }
            })
            .collect();
        let out = quietly(|| {
            BatchRunner::try_run_checkpointed(
                &g,
                instances,
                &orders,
                &BatchConfig::default(),
                &path,
            )
            .unwrap()
        });
        assert_eq!(out.report.survivors(), 3);
        let resumed =
            BatchRunner::resume::<Digest>(&g, &orders, &BatchConfig::default(), &path).unwrap();
        assert_eq!(resumed.report.survivors(), 3);
        for (i, output) in resumed.outputs.iter().enumerate() {
            if i == 2 {
                assert_eq!(*output, None);
                assert!(matches!(
                    resumed.report.per_instance[2].outcome,
                    InstanceOutcome::Panicked { .. }
                ));
            } else {
                assert_eq!(*output, Some(want[i]));
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_corrupt_and_mismatched_checkpoints() {
        let g = er_graph(59);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let path = ckpt_path("reject");
        let _ = std::fs::remove_file(&path);
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, false)).collect();
        BatchRunner::try_run_checkpointed(&g, instances, &orders, &BatchConfig::default(), &path)
            .unwrap();
        // Guard config mismatch.
        let cfg = BatchConfig {
            guard: Some((GuardPolicy::Strict, ValidatorMode::Exact)),
            ..BatchConfig::default()
        };
        let err = BatchRunner::resume::<Digest>(&g, &orders, &cfg, &path).unwrap_err();
        assert!(
            matches!(&err, RunError::Checkpoint { message } if message.contains("guard config")),
            "{err:?}"
        );
        // Flipped payload byte → checksum failure surfaces as Checkpoint.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 12] ^= 0x20;
        std::fs::write(&path, &raw).unwrap();
        let err =
            BatchRunner::resume::<Digest>(&g, &orders, &BatchConfig::default(), &path).unwrap_err();
        assert!(matches!(err, RunError::Checkpoint { .. }), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }
}

//! Stream-once batched execution: fan one stream replay out to many
//! algorithm instances.
//!
//! The amplification layer (Theorems 3.7 and 4.6) runs `Θ(log 1/δ)`
//! independent repetitions of the same multi-pass algorithm, and the
//! guess-and-verify driver multiplies that by `O(log T)` guess levels. The
//! sequential driver replays the full adjacency-list stream for every
//! repetition of every level — pass-wasteful in exactly the sense the model
//! charges for. [`BatchRunner`] restores pass-optimality: each pass's item
//! sequence is generated **once** and every item is fanned out to all `R`
//! resident [`MultiPassAlgorithm`] instances, so the whole batch costs as
//! many stream passes as a *single* instance would.
//!
//! Execution model:
//!
//! * With `threads ≤ 1` the instances are driven inline, in index order, by
//!   the same boundary-detecting loop ([`drive_pass`]) the sequential
//!   [`Runner`](crate::runner::Runner) uses.
//! * With `threads > 1` the instances are sharded across worker threads
//!   (contiguous index ranges, mirroring `median_of_runs`' chunking). The
//!   driving thread batches stream events into chunks and broadcasts each
//!   chunk to every worker over a bounded channel — a full worker exerts
//!   backpressure on the stream generator instead of buffering unboundedly.
//!
//! Because every instance observes the identical event sequence in either
//! mode, batched execution is **bitwise reproducible** against the
//! sequential driver: an instance seeded `s` produces the same output here
//! as it does under `Runner::run` on the same graph and order.
//!
//! Ingestion guarding composes at the *stream* level, not per instance:
//! [`BatchConfig::guard`] wraps the fan-out itself in a single
//! [`Guarded`] adapter, so one [`OnlineValidator`] vets each item once
//! before it is broadcast (the repair policy's dropped items simply never
//! reach any instance). Running `R` validators for `R` instances of the
//! same stream would multiply validation cost and memory for no extra
//! information.
//!
//! Space note: for replayed passes over the same [`StreamOrder`], the
//! engine materializes one pass's items (`2m` items, 8 bytes each) so later
//! passes and later levels never regenerate the stream. This buffer is
//! harness state, not algorithm state — it is never reported through
//! [`SpaceUsage`], exactly as the sequential `AdjListStream` generator's
//! internal state is not.
//!
//! [`OnlineValidator`]: crate::validate::OnlineValidator

use std::sync::Arc;

use adjstream_graph::{Graph, VertexId};

use crate::adjlist::AdjListStream;
use crate::guard::{GuardPolicy, Guarded};
use crate::item::StreamItem;
use crate::meter::{vec_bytes, PeakTracker, SpaceUsage};
use crate::order::StreamOrder;
use crate::runner::{drive_pass, GuardStats, MultiPassAlgorithm, PassOrders, RunError, RunReport};
use crate::validate::ValidatorMode;

/// Knobs for a batched run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads the instances are sharded over; `0` or `1` drives
    /// them inline on the calling thread.
    pub threads: usize,
    /// Stream events buffered per replay chunk. Inline mode replays each
    /// full chunk through one instance at a time, so larger chunks keep an
    /// instance's state hot in cache across many events instead of touching
    /// all `R` states per event; threaded mode ships whole chunks over the
    /// channels, amortizing send overhead. Smaller chunks tighten
    /// backpressure and shrink the buffer. The default trades ~2 MiB of
    /// buffer for near-saturated replay throughput.
    pub chunk_events: usize,
    /// Bounded-channel depth per worker, in chunks.
    pub channel_depth: usize,
    /// Wrap the *shared stream* in one [`Guarded`] validator with this
    /// policy and mode. `None` trusts the stream (the graph-backed
    /// generator always satisfies the promise).
    pub guard: Option<(GuardPolicy, ValidatorMode)>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            threads: 1,
            chunk_events: 128 * 1024,
            channel_depth: 4,
            guard: None,
        }
    }
}

impl BatchConfig {
    /// Config with `threads` workers and every other knob at its default.
    pub fn with_threads(threads: usize) -> Self {
        BatchConfig {
            threads,
            ..BatchConfig::default()
        }
    }
}

/// Per-instance execution summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceReport {
    /// Worker shard the instance ran on (0 in inline mode).
    pub shard: usize,
    /// High-water mark of this instance's reported state, sampled at every
    /// adjacency-list boundary (same sampling points as the sequential
    /// runner).
    pub peak_state_bytes: usize,
    /// Items delivered to this instance across all passes.
    pub items: usize,
}

/// Execution summary of a batched run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Instances fanned out to.
    pub instances: usize,
    /// Worker threads actually used (after clamping to the instance count).
    pub threads: usize,
    /// Stream passes executed — for the whole batch, not per instance.
    pub passes: usize,
    /// Items driven through the shared stream, summed over passes. Each
    /// item is counted once here no matter how many instances consumed it.
    pub stream_items: usize,
    /// Times a pass's item sequence was actually generated from the graph;
    /// replayed passes over an identical order reuse the materialized
    /// buffer and do not count.
    pub stream_generations: usize,
    /// Total item deliveries across instances (≈ `stream_items ×
    /// instances`, minus items a shared repair guard dropped before
    /// fan-out).
    pub items_fanned_out: usize,
    /// Per-instance diagnostics, in instance order.
    pub per_instance: Vec<InstanceReport>,
    /// Counters of the shared-stream guard, when one was configured.
    pub guard: Option<GuardStats>,
}

/// A batched run's outputs plus its report.
#[derive(Debug, Clone)]
pub struct BatchOutcome<T> {
    /// Instance outputs, in the order the instances were supplied.
    pub outputs: Vec<T>,
    /// Execution summary.
    pub report: BatchReport,
}

/// One stream event, as broadcast to every instance. Mirrors the calls
/// [`drive_pass`] makes on a [`MultiPassAlgorithm`].
#[derive(Debug, Clone, Copy)]
enum Event {
    BeginPass(usize),
    BeginList(VertexId),
    Item(VertexId, VertexId),
    EndList(VertexId),
    EndPass(usize),
}

/// An instance plus its driver-side bookkeeping. Applying events through
/// this struct reproduces `drive_pass`'s per-instance behavior exactly:
/// peak state sampled at list and pass boundaries, abort polled after every
/// item and at pass end.
struct InstanceState<A: MultiPassAlgorithm> {
    shard: usize,
    algo: Option<A>,
    peak: PeakTracker,
    items: usize,
    pass: usize,
    error: Option<RunError>,
}

impl<A: MultiPassAlgorithm> InstanceState<A> {
    fn new(algo: A, shard: usize) -> Self {
        InstanceState {
            shard,
            algo: Some(algo),
            peak: PeakTracker::new(),
            items: 0,
            pass: 0,
            error: None,
        }
    }

    fn apply(&mut self, ev: Event) {
        if self.error.is_some() {
            return;
        }
        let Some(algo) = self.algo.as_mut() else {
            return;
        };
        match ev {
            Event::BeginPass(p) => {
                self.pass = p;
                algo.begin_pass(p);
            }
            Event::BeginList(owner) => algo.begin_list(owner),
            Event::Item(src, dst) => {
                algo.item(src, dst);
                self.items += 1;
                if let Some(error) = algo.abort_error() {
                    self.error = Some(RunError::Invalid {
                        pass: self.pass,
                        error,
                    });
                }
            }
            Event::EndList(owner) => {
                algo.end_list(owner);
                self.peak.observe(algo.space_bytes());
            }
            Event::EndPass(p) => {
                algo.end_pass(p);
                self.peak.observe(algo.space_bytes());
                if let Some(error) = algo.abort_error() {
                    self.error = Some(RunError::Invalid {
                        pass: self.pass,
                        error,
                    });
                }
            }
        }
    }

    fn into_outcome(mut self, index: usize) -> InstanceOutcome<A::Output> {
        let result = match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.algo.take().expect("instance not finished").finish()),
        };
        InstanceOutcome {
            index,
            report: InstanceReport {
                shard: self.shard,
                peak_state_bytes: self.peak.peak(),
                items: self.items,
            },
            result,
        }
    }
}

struct InstanceOutcome<T> {
    index: usize,
    report: InstanceReport,
    result: Result<T, RunError>,
}

/// What driving a fan-out yields: one outcome per instance plus the shared
/// stream's run report.
type DrivenBatch<T> = (Vec<InstanceOutcome<T>>, RunReport);

/// The fan-out itself, viewed as one [`MultiPassAlgorithm`] so the shared
/// [`drive_pass`] loop (and a shared [`Guarded`] wrapper) can drive it.
enum FanOut<A: MultiPassAlgorithm> {
    Inline {
        passes: usize,
        same_order: bool,
        states: Vec<InstanceState<A>>,
        buf: Vec<Event>,
        chunk_events: usize,
    },
    Threaded {
        passes: usize,
        same_order: bool,
        senders: Vec<crossbeam::channel::Sender<Arc<Vec<Event>>>>,
        results: crossbeam::channel::Receiver<InstanceOutcome<A::Output>>,
        buf: Vec<Event>,
        chunk_events: usize,
    },
}

impl<A: MultiPassAlgorithm> FanOut<A> {
    /// Both backends buffer events into chunks instead of touching every
    /// instance per event: replaying a chunk against one instance at a time
    /// keeps that instance's sample structures hot in cache, where
    /// per-event interleaving across `R` instances thrashes it (measured
    /// ~5× slower at 55 resident triangle instances). Instances are
    /// independent, so chunked delivery is observationally identical.
    fn emit(&mut self, ev: Event) {
        match self {
            FanOut::Inline {
                states,
                buf,
                chunk_events,
                ..
            } => {
                buf.push(ev);
                if buf.len() >= *chunk_events {
                    Self::replay(states, buf);
                }
            }
            FanOut::Threaded {
                buf,
                chunk_events,
                senders,
                ..
            } => {
                buf.push(ev);
                if buf.len() >= *chunk_events {
                    Self::flush(senders, buf);
                }
            }
        }
    }

    /// Drain `buf` into every instance, one instance at a time.
    fn replay(states: &mut [InstanceState<A>], buf: &mut Vec<Event>) {
        for st in states.iter_mut() {
            for &ev in buf.iter() {
                st.apply(ev);
            }
        }
        buf.clear();
    }

    fn flush(senders: &[crossbeam::channel::Sender<Arc<Vec<Event>>>], buf: &mut Vec<Event>) {
        if buf.is_empty() {
            return;
        }
        let chunk = Arc::new(std::mem::take(buf));
        for tx in senders {
            // A send fails only if the worker died; its panic resurfaces at
            // scope join, so dropping the chunk here is safe.
            let _ = tx.send(Arc::clone(&chunk));
        }
    }
}

impl<A: MultiPassAlgorithm> SpaceUsage for FanOut<A> {
    /// Only the driver-side chunk buffer. Instance state is sampled
    /// per-instance inside [`InstanceState::apply`] (that is what the
    /// [`BatchReport`] publishes); summing `R` instances here would make
    /// the shared driver's boundary sampling O(R·state) per list, which
    /// measurably dominates whole runs.
    fn space_bytes(&self) -> usize {
        match self {
            FanOut::Inline { buf, .. } | FanOut::Threaded { buf, .. } => vec_bytes(buf),
        }
    }
}

impl<A: MultiPassAlgorithm> MultiPassAlgorithm for FanOut<A> {
    type Output = Vec<InstanceOutcome<A::Output>>;

    fn passes(&self) -> usize {
        match self {
            FanOut::Inline { passes, .. } | FanOut::Threaded { passes, .. } => *passes,
        }
    }

    fn requires_same_order(&self) -> bool {
        match self {
            FanOut::Inline { same_order, .. } | FanOut::Threaded { same_order, .. } => *same_order,
        }
    }

    fn begin_pass(&mut self, pass: usize) {
        self.emit(Event::BeginPass(pass));
    }

    fn begin_list(&mut self, owner: VertexId) {
        self.emit(Event::BeginList(owner));
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.emit(Event::Item(src, dst));
    }

    fn end_list(&mut self, owner: VertexId) {
        self.emit(Event::EndList(owner));
    }

    fn end_pass(&mut self, pass: usize) {
        self.emit(Event::EndPass(pass));
        match self {
            FanOut::Inline { states, buf, .. } => Self::replay(states, buf),
            FanOut::Threaded { senders, buf, .. } => Self::flush(senders, buf),
        }
    }

    fn finish(self) -> Self::Output {
        match self {
            FanOut::Inline {
                mut states,
                mut buf,
                ..
            } => {
                Self::replay(&mut states, &mut buf);
                states
                    .into_iter()
                    .enumerate()
                    .map(|(i, st)| st.into_outcome(i))
                    .collect()
            }
            FanOut::Threaded {
                senders,
                results,
                mut buf,
                ..
            } => {
                Self::flush(&senders, &mut buf);
                // Closing the input channels tells the workers to finish;
                // they respond with one outcome per instance.
                drop(senders);
                let mut outcomes: Vec<InstanceOutcome<A::Output>> = results.iter().collect();
                outcomes.sort_by_key(|o| o.index);
                outcomes
            }
        }
    }
}

/// Where a batched run's per-pass items come from.
enum PassSource<'a> {
    /// Generate from a graph under `orders`, materializing each generated
    /// pass so identical later orders replay the buffer.
    Graph {
        graph: &'a Graph,
        orders: &'a PassOrders,
        cache: Option<(StreamOrder, Vec<StreamItem>)>,
        generations: usize,
    },
    /// Explicit per-pass sequences (corrupted streams, traces). Never
    /// cached: fault plans may replay differently per pass by design.
    Items {
        supply: Box<dyn FnMut(usize) -> Vec<StreamItem> + 'a>,
        current: Vec<StreamItem>,
        generations: usize,
    },
}

impl<'a> PassSource<'a> {
    fn items_for(&mut self, pass: usize) -> &[StreamItem] {
        match self {
            PassSource::Graph {
                graph,
                orders,
                cache,
                generations,
            } => {
                let order = orders.order_for(pass);
                let hit = cache.as_ref().is_some_and(|(o, _)| o == order);
                if !hit {
                    *generations += 1;
                    let items = AdjListStream::new(graph, order.clone()).collect_items();
                    *cache = Some((order.clone(), items));
                }
                &cache.as_ref().expect("cache populated").1
            }
            PassSource::Items {
                supply,
                current,
                generations,
            } => {
                *generations += 1;
                *current = supply(pass);
                current
            }
        }
    }

    fn generations(&self) -> usize {
        match self {
            PassSource::Graph { generations, .. } | PassSource::Items { generations, .. } => {
                *generations
            }
        }
    }
}

/// Drive `fanout` (optionally wrapped in a shared guard) over `source`.
fn drive_batch<B>(
    mut algo: B,
    source: &mut PassSource<'_>,
) -> Result<(B::Output, RunReport), RunError>
where
    B: MultiPassAlgorithm,
{
    let mut peak = PeakTracker::new();
    let mut processed = 0usize;
    let passes = algo.passes();
    for pass in 0..passes {
        let items = source.items_for(pass);
        drive_pass(
            &mut algo,
            pass,
            items.iter().copied(),
            &mut peak,
            &mut processed,
        )?;
    }
    let guard = algo.guard_stats();
    Ok((
        algo.finish(),
        RunReport {
            peak_state_bytes: peak.peak(),
            items_processed: processed,
            passes,
            guard,
        },
    ))
}

/// Runs many instances of one algorithm over a single shared stream replay.
/// See the module docs for the execution model.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchRunner;

impl BatchRunner {
    /// Run every instance in `instances` over `graph` streamed per
    /// `orders`, generating each pass once.
    ///
    /// All instances must agree on `passes()` and `requires_same_order()`
    /// (they are copies of one algorithm at different seeds; this is
    /// asserted). Order-contract violations return the same typed
    /// [`RunError`]s as [`Runner::try_run`](crate::runner::Runner::try_run);
    /// a strict shared guard aborts the whole batch with
    /// [`RunError::Invalid`]. A per-instance failure (only possible when
    /// instances carry their own guards, which the shared-guard design
    /// makes unnecessary) fails the batch with the first instance's error.
    pub fn try_run<A>(
        graph: &Graph,
        instances: Vec<A>,
        orders: &PassOrders,
        cfg: &BatchConfig,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Send,
        A::Output: Send,
    {
        let contract = Self::contract(&instances);
        orders.check(contract.0, contract.1)?;
        let mut source = PassSource::Graph {
            graph,
            orders,
            cache: None,
            generations: 0,
        };
        Self::execute(instances, contract, cfg, &mut source)
    }

    /// Run every instance over explicit per-pass item sequences (which may
    /// differ per pass, e.g. [`crate::fault::FaultPlan`] replays). No order
    /// contract is checked — raw item sequences carry no declared order,
    /// exactly as with [`crate::runner::run_item_passes`].
    pub fn try_run_items<A, F>(
        instances: Vec<A>,
        supply: F,
        cfg: &BatchConfig,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Send,
        A::Output: Send,
        F: FnMut(usize) -> Vec<StreamItem>,
    {
        let contract = Self::contract(&instances);
        let mut supply = supply;
        let mut source = PassSource::Items {
            supply: Box::new(&mut supply),
            current: Vec::new(),
            generations: 0,
        };
        Self::execute(instances, contract, cfg, &mut source)
    }

    fn contract<A: MultiPassAlgorithm>(instances: &[A]) -> (usize, bool) {
        assert!(!instances.is_empty(), "need at least one instance");
        let passes = instances[0].passes();
        let same_order = instances[0].requires_same_order();
        assert!(
            instances
                .iter()
                .all(|a| a.passes() == passes && a.requires_same_order() == same_order),
            "batch instances must share one pass contract"
        );
        (passes, same_order)
    }

    fn execute<A>(
        instances: Vec<A>,
        (passes, same_order): (usize, bool),
        cfg: &BatchConfig,
        source: &mut PassSource<'_>,
    ) -> Result<BatchOutcome<A::Output>, RunError>
    where
        A: MultiPassAlgorithm + Send,
        A::Output: Send,
    {
        let n = instances.len();
        let threads = cfg.threads.clamp(1, n);
        if threads <= 1 {
            let states = instances
                .into_iter()
                .map(|a| InstanceState::new(a, 0))
                .collect();
            let fanout = FanOut::Inline {
                passes,
                same_order,
                states,
                buf: Vec::with_capacity(cfg.chunk_events),
                chunk_events: cfg.chunk_events.max(1),
            };
            let driven = Self::drive_guarded(fanout, cfg, source)?;
            return Self::assemble(driven, source, threads);
        }
        let chunk = n.div_ceil(threads);
        let scope_result = crossbeam::thread::scope(|scope| {
            let (result_tx, result_rx) = crossbeam::channel::bounded(n);
            let mut senders: Vec<crossbeam::channel::Sender<Arc<Vec<Event>>>> =
                Vec::with_capacity(threads);
            let mut iter = instances.into_iter().enumerate();
            for shard in 0..threads {
                let mut states: Vec<(usize, InstanceState<A>)> = Vec::with_capacity(chunk);
                for (index, algo) in iter.by_ref().take(chunk) {
                    states.push((index, InstanceState::new(algo, shard)));
                }
                if states.is_empty() {
                    break;
                }
                let (tx, rx) = crossbeam::channel::bounded(cfg.channel_depth);
                senders.push(tx);
                let result_tx = result_tx.clone();
                scope.spawn(move |_| {
                    for chunk in rx.iter() {
                        for (_, st) in states.iter_mut() {
                            for &ev in chunk.iter() {
                                st.apply(ev);
                            }
                        }
                    }
                    for (index, st) in states {
                        let _ = result_tx.send(st.into_outcome(index));
                    }
                });
            }
            drop(result_tx);
            let fanout: FanOut<A> = FanOut::Threaded {
                passes,
                same_order,
                senders,
                results: result_rx,
                buf: Vec::with_capacity(cfg.chunk_events),
                chunk_events: cfg.chunk_events.max(1),
            };
            let driven = Self::drive_guarded(fanout, cfg, source)?;
            Self::assemble(driven, source, threads)
        });
        match scope_result {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// Drive the fan-out directly, or behind one shared [`Guarded`]
    /// validator when the config asks for one.
    fn drive_guarded<A>(
        fanout: FanOut<A>,
        cfg: &BatchConfig,
        source: &mut PassSource<'_>,
    ) -> Result<DrivenBatch<A::Output>, RunError>
    where
        A: MultiPassAlgorithm,
    {
        match cfg.guard {
            None => drive_batch(fanout, source),
            Some((policy, mode)) => {
                drive_batch(Guarded::with_validator(fanout, policy, mode), source)
            }
        }
    }

    fn assemble<T>(
        (outcomes, run): (Vec<InstanceOutcome<T>>, RunReport),
        source: &PassSource<'_>,
        threads: usize,
    ) -> Result<BatchOutcome<T>, RunError> {
        let mut outputs = Vec::with_capacity(outcomes.len());
        let mut per_instance = Vec::with_capacity(outcomes.len());
        let mut items_fanned_out = 0usize;
        for outcome in outcomes {
            per_instance.push(outcome.report);
            items_fanned_out += outcome.report.items;
            outputs.push(outcome.result?);
        }
        Ok(BatchOutcome {
            outputs,
            report: BatchReport {
                instances: per_instance.len(),
                threads,
                passes: run.passes,
                stream_items: run.items_processed,
                stream_generations: source.generations(),
                items_fanned_out,
                per_instance,
                guard: run.guard,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::guard::GuardPolicy;
    use crate::runner::{run_item_passes, Runner};
    use crate::validate::{StreamError, ValidatorMode};
    use adjstream_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Seeded toy estimator: hashes every item with its seed, returning a
    /// deterministic digest — a stand-in for "same seed + same stream ⇒
    /// same output".
    struct Digest {
        seed: u64,
        passes: usize,
        same_order: bool,
        acc: u64,
        items: usize,
    }

    impl Digest {
        fn new(seed: u64, passes: usize, same_order: bool) -> Self {
            Digest {
                seed,
                passes,
                same_order,
                acc: 0,
                items: 0,
            }
        }
    }

    impl SpaceUsage for Digest {
        fn space_bytes(&self) -> usize {
            32 + self.items % 7
        }
    }

    impl MultiPassAlgorithm for Digest {
        type Output = u64;
        fn passes(&self) -> usize {
            self.passes
        }
        fn requires_same_order(&self) -> bool {
            self.same_order
        }
        fn begin_pass(&mut self, pass: usize) {
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(pass as u64 ^ self.seed);
        }
        fn begin_list(&mut self, owner: VertexId) {
            self.acc = self.acc.rotate_left(7) ^ (owner.0 as u64);
        }
        fn item(&mut self, src: VertexId, dst: VertexId) {
            self.items += 1;
            self.acc = self
                .acc
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(((src.0 as u64) << 32 | dst.0 as u64) ^ self.seed);
        }
        fn end_list(&mut self, owner: VertexId) {
            self.acc ^= (owner.0 as u64).wrapping_mul(0x9E37_79B9);
        }
        fn finish(self) -> u64 {
            self.acc
        }
    }

    fn er_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnm(40, 160, &mut rng)
    }

    fn sequential_digests(g: &Graph, orders: &PassOrders, seeds: &[u64]) -> Vec<u64> {
        seeds
            .iter()
            .map(|&s| Runner::run(g, Digest::new(s, 2, false), orders).0)
            .collect()
    }

    #[test]
    fn batched_matches_sequential_bit_for_bit_at_any_thread_count() {
        let g = er_graph(3);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 11));
        let seeds: Vec<u64> = (100..109).collect();
        let want = sequential_digests(&g, &orders, &seeds);
        for threads in [1, 2, 4, 16] {
            let instances: Vec<Digest> = seeds.iter().map(|&s| Digest::new(s, 2, false)).collect();
            let out = BatchRunner::try_run(
                &g,
                instances,
                &orders,
                &BatchConfig {
                    threads,
                    chunk_events: 64,
                    ..BatchConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.outputs, want, "threads = {threads}");
            assert_eq!(out.report.instances, 9);
            assert_eq!(out.report.passes, 2);
        }
    }

    #[test]
    fn same_order_passes_generate_the_stream_once() {
        let g = er_graph(5);
        let orders = PassOrders::Same(StreamOrder::shuffled(40, 2));
        let instances: Vec<Digest> = (0..4).map(|s| Digest::new(s, 2, false)).collect();
        let out = BatchRunner::try_run(&g, instances, &orders, &BatchConfig::default()).unwrap();
        assert_eq!(out.report.stream_generations, 1);
        assert_eq!(out.report.stream_items, 2 * 2 * 160); // 2 passes × 2m
        assert_eq!(out.report.items_fanned_out, 4 * 2 * 2 * 160);
        // Differing per-pass orders regenerate.
        let orders = PassOrders::PerPass(vec![StreamOrder::natural(40), StreamOrder::reversed(40)]);
        let instances: Vec<Digest> = (0..4).map(|s| Digest::new(s, 2, false)).collect();
        let out = BatchRunner::try_run(&g, instances, &orders, &BatchConfig::default()).unwrap();
        assert_eq!(out.report.stream_generations, 2);
    }

    #[test]
    fn order_contract_errors_match_the_sequential_runner() {
        let g = er_graph(7);
        // PerPass length mismatch.
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, false)).collect();
        let err = BatchRunner::try_run(
            &g,
            instances,
            &PassOrders::PerPass(vec![StreamOrder::natural(40)]),
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::WrongOrderCount {
                expected: 2,
                got: 1
            }
        );
        // requires_same_order violated.
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, true)).collect();
        let err = BatchRunner::try_run(
            &g,
            instances,
            &PassOrders::PerPass(vec![StreamOrder::natural(40), StreamOrder::reversed(40)]),
            &BatchConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, RunError::OrderMismatch);
        // Equal PerPass entries satisfy the same-order requirement.
        let order = StreamOrder::shuffled(40, 4);
        let instances: Vec<Digest> = (0..3).map(|s| Digest::new(s, 2, true)).collect();
        assert!(BatchRunner::try_run(
            &g,
            instances,
            &PassOrders::PerPass(vec![order.clone(), order]),
            &BatchConfig::default(),
        )
        .is_ok());
    }

    #[test]
    fn per_instance_reports_cover_every_instance() {
        let g = er_graph(9);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let instances: Vec<Digest> = (0..10).map(|s| Digest::new(s, 2, false)).collect();
        let cfg = BatchConfig::with_threads(3);
        let out = BatchRunner::try_run(&g, instances, &orders, &cfg).unwrap();
        assert_eq!(out.report.per_instance.len(), 10);
        assert_eq!(out.report.threads, 3);
        // Chunked sharding: ⌈10/3⌉ = 4 → shards 0,0,0,0,1,1,1,1,2,2.
        let shards: Vec<usize> = out.report.per_instance.iter().map(|r| r.shard).collect();
        assert_eq!(shards, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
        for r in &out.report.per_instance {
            assert_eq!(r.items, 2 * 2 * 160);
            assert!(r.peak_state_bytes >= 32);
        }
    }

    #[test]
    fn shared_strict_guard_aborts_the_whole_batch_with_position() {
        let g = er_graph(13);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, 6)).collect_items();
        let c = FaultPlan::new(8)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        assert!(c.skipped().is_empty());
        for threads in [1, 4] {
            let instances: Vec<Digest> = (0..5).map(|s| Digest::new(s, 1, false)).collect();
            let cfg = BatchConfig {
                threads,
                guard: Some((GuardPolicy::Strict, ValidatorMode::Exact)),
                ..BatchConfig::default()
            };
            let err = BatchRunner::try_run_items(instances, |p| c.items_for_pass(p).to_vec(), &cfg)
                .unwrap_err();
            let RunError::Invalid { pass: 0, error } = err else {
                panic!("expected Invalid, got {err:?}");
            };
            assert!(matches!(error, StreamError::SelfLoop { .. }));
        }
    }

    #[test]
    fn shared_repair_guard_stats_match_a_sequential_guarded_run() {
        let g = er_graph(17);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, 9)).collect_items();
        let c = FaultPlan::new(21)
            .with(FaultKind::DropDirection, 2)
            .with(FaultKind::DuplicateItem, 1)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        // Sequential reference: one instance behind its own guard.
        let (_, seq_report) = run_item_passes(
            Guarded::new(Digest::new(0, 2, false), GuardPolicy::Repair),
            |p| c.items_for_pass(p).to_vec(),
        )
        .unwrap();
        let want = seq_report.guard.expect("guarded run has stats");
        for threads in [1, 3] {
            let instances: Vec<Digest> = (0..6).map(|s| Digest::new(s, 2, false)).collect();
            let cfg = BatchConfig {
                threads,
                guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
                ..BatchConfig::default()
            };
            let out = BatchRunner::try_run_items(instances, |p| c.items_for_pass(p).to_vec(), &cfg)
                .unwrap();
            let got = out.report.guard.expect("shared guard publishes stats");
            // validator_peak_bytes sums std HashMap capacities, which vary
            // per RandomState instance on removal-heavy maps; the fault
            // counters are the deterministic contract.
            assert_eq!(
                GuardStats {
                    validator_peak_bytes: 0,
                    ..got
                },
                GuardStats {
                    validator_peak_bytes: 0,
                    ..want
                },
                "threads = {threads}"
            );
            assert!(got.validator_peak_bytes > 0);
            // Repaired items never reached any instance: every instance saw
            // the same (repaired) item count.
            let per_items: Vec<usize> = out.report.per_instance.iter().map(|r| r.items).collect();
            assert!(per_items.iter().all(|&i| i == per_items[0]));
            assert!(per_items[0] < 2 * c.items().len());
        }
    }

    #[test]
    fn guarded_outputs_stay_bitwise_reproducible_across_engines() {
        let g = er_graph(23);
        let items = AdjListStream::new(&g, StreamOrder::shuffled(40, 5)).collect_items();
        let c = FaultPlan::new(2)
            .with(FaultKind::DuplicateItem, 2)
            .apply(&items);
        let seeds: Vec<u64> = (40..46).collect();
        // Sequential: each instance individually guarded sees the same
        // repaired stream the shared guard produces.
        let want: Vec<u64> = seeds
            .iter()
            .map(|&s| {
                run_item_passes(
                    Guarded::new(Digest::new(s, 2, false), GuardPolicy::Repair),
                    |p| c.items_for_pass(p).to_vec(),
                )
                .unwrap()
                .0
            })
            .collect();
        let instances: Vec<Digest> = seeds.iter().map(|&s| Digest::new(s, 2, false)).collect();
        let cfg = BatchConfig {
            threads: 4,
            chunk_events: 32,
            guard: Some((GuardPolicy::Repair, ValidatorMode::Exact)),
            ..BatchConfig::default()
        };
        let out =
            BatchRunner::try_run_items(instances, |p| c.items_for_pass(p).to_vec(), &cfg).unwrap();
        assert_eq!(out.outputs, want);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_batch_panics() {
        let g = er_graph(1);
        let _ = BatchRunner::try_run(
            &g,
            Vec::<Digest>::new(),
            &PassOrders::Same(StreamOrder::natural(40)),
            &BatchConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "one pass contract")]
    fn mixed_pass_contracts_panic() {
        let g = er_graph(1);
        let _ = BatchRunner::try_run(
            &g,
            vec![Digest::new(0, 1, false), Digest::new(1, 2, false)],
            &PassOrders::Same(StreamOrder::natural(40)),
            &BatchConfig::default(),
        );
    }

    #[test]
    fn more_threads_than_instances_clamps() {
        let g = er_graph(2);
        let orders = PassOrders::Same(StreamOrder::natural(40));
        let instances: Vec<Digest> = (0..2).map(|s| Digest::new(s, 1, false)).collect();
        let out =
            BatchRunner::try_run(&g, instances, &orders, &BatchConfig::with_threads(8)).unwrap();
        assert_eq!(out.report.threads, 2);
        assert_eq!(out.outputs.len(), 2);
    }
}

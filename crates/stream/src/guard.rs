//! Guarded ingestion: wrap any algorithm with online promise validation.
//!
//! [`Guarded`] interposes an [`OnlineValidator`] between the pass driver and
//! an inner [`MultiPassAlgorithm`], so malformed streams degrade according
//! to an explicit [`GuardPolicy`] instead of silently corrupting the
//! estimate or panicking:
//!
//! * [`Strict`](GuardPolicy::Strict) — abort on the first violation. The
//!   fallible drivers surface it as [`RunError::Invalid`] carrying the
//!   violation and its position.
//! * [`Repair`](GuardPolicy::Repair) — drop offending items and continue.
//!   A split list loses its displaced segment; edges found unmatched at the
//!   end of the first pass are *quarantined*: their surviving direction is
//!   suppressed in later passes so every pass presents the inner algorithm
//!   with the same repaired (valid) stream.
//! * [`Observe`](GuardPolicy::Observe) — forward everything unmodified and
//!   only count, for measuring how corrupted an input is.
//!
//! For algorithms that [require identical pass
//! orders](MultiPassAlgorithm::requires_same_order) the guard also
//! fingerprints the list order of pass 1 and reports
//! [`StreamError::PassOrderChanged`] when a later pass replays differently —
//! a fault class invisible to per-pass validation. Reordered replays are not
//! repairable (list positions are the algorithm's coordinate system), so
//! `Repair` treats them as fatal like `Strict`; `Observe` counts and
//! continues.
//!
//! Every counter and the validator's peak memory are published through
//! [`GuardStats`] on the run's [`RunReport`](crate::runner::RunReport).
//!
//! [`RunError::Invalid`]: crate::runner::RunError::Invalid

use std::io::{self, Read, Write};

use adjstream_graph::VertexId;

use crate::checkpoint::{
    corrupt, read_bytes, read_u64, read_u8, read_usize, write_bytes, write_u64, write_u8,
    write_usize, Checkpoint,
};
use crate::hashing::{FastBuildHasher, FastSet, HashFn};
use crate::item::StreamItem;
use crate::meter::{hashset_bytes, SpaceUsage};
use crate::runner::{GuardStats, MultiPassAlgorithm, RunError};
use crate::validate::{pack_edge, OnlineValidator, StreamError, ValidatorMode};

/// Serialize a [`GuardPolicy`] as a one-byte tag (shared with the batch
/// checkpoint payload so both layers agree on the encoding).
pub(crate) fn encode_policy(w: &mut dyn Write, policy: GuardPolicy) -> io::Result<()> {
    write_u8(
        w,
        match policy {
            GuardPolicy::Strict => 0,
            GuardPolicy::Repair => 1,
            GuardPolicy::Observe => 2,
        },
    )
}

/// Inverse of [`encode_policy`].
pub(crate) fn decode_policy(r: &mut dyn Read) -> io::Result<GuardPolicy> {
    Ok(match read_u8(r)? {
        0 => GuardPolicy::Strict,
        1 => GuardPolicy::Repair,
        2 => GuardPolicy::Observe,
        t => return Err(corrupt(format!("bad guard policy tag {t}"))),
    })
}

/// Serialize a [`ValidatorMode`] (tag plus the bounded mode's parameters).
pub(crate) fn encode_mode(w: &mut dyn Write, mode: ValidatorMode) -> io::Result<()> {
    match mode {
        ValidatorMode::Exact => write_u8(w, 0),
        ValidatorMode::Bounded { seed, window } => {
            write_u8(w, 1)?;
            write_u64(w, seed)?;
            write_usize(w, window)
        }
    }
}

/// Inverse of [`encode_mode`].
pub(crate) fn decode_mode(r: &mut dyn Read) -> io::Result<ValidatorMode> {
    Ok(match read_u8(r)? {
        0 => ValidatorMode::Exact,
        1 => ValidatorMode::Bounded {
            seed: read_u64(r)?,
            window: read_usize(r)?,
        },
        t => return Err(corrupt(format!("bad validator mode tag {t}"))),
    })
}

/// How a [`Guarded`] algorithm reacts to promise violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPolicy {
    /// Abort the run at the first violation (typed error, never a panic).
    Strict,
    /// Drop offending items, quarantine unmatched edges, keep running.
    Repair,
    /// Forward everything untouched; only count violations.
    Observe,
}

impl std::fmt::Display for GuardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GuardPolicy::Strict => "strict",
            GuardPolicy::Repair => "repair",
            GuardPolicy::Observe => "observe",
        })
    }
}

impl GuardPolicy {
    /// Parse the CLI spelling produced by [`Display`](std::fmt::Display).
    pub fn parse(s: &str) -> Option<GuardPolicy> {
        Some(match s {
            "strict" => GuardPolicy::Strict,
            "repair" => GuardPolicy::Repair,
            "observe" => GuardPolicy::Observe,
            _ => return None,
        })
    }
}

/// Pass-1 list-order fingerprint for order-sensitive inner algorithms.
#[derive(Debug, Clone)]
enum OrderFingerprint {
    /// Not tracking (single pass, or the inner algorithm is order-free).
    Off,
    /// Store pass 1's owner sequence; later passes compare per list.
    Exact {
        owners: Vec<VertexId>,
        replay: usize,
    },
    /// Bounded mode: rolling hash of the owner sequence, compared at pass
    /// end (cannot name the diverging list).
    Rolling { pass0: u64, current: u64 },
}

/// An algorithm wrapped with online promise validation; see the module docs
/// for the policy semantics.
#[derive(Debug, Clone)]
pub struct Guarded<A> {
    inner: A,
    policy: GuardPolicy,
    mode: ValidatorMode,
    validator: OnlineValidator,
    stats: GuardStats,
    fatal: Option<StreamError>,
    pass: usize,
    /// Owner of a list segment currently being suppressed after a
    /// contiguity violation.
    suppress_owner: Option<VertexId>,
    /// Canonical keys of edges whose surviving direction must be dropped in
    /// passes ≥ 2 (repair policy only).
    quarantined: FastSet<u64>,
    fingerprint: OrderFingerprint,
    order_violated: bool,
    order_hasher: HashFn,
}

impl<A: MultiPassAlgorithm> Guarded<A> {
    /// Guard `inner` with an exact validator.
    pub fn new(inner: A, policy: GuardPolicy) -> Self {
        Self::with_validator(inner, policy, ValidatorMode::Exact)
    }

    /// Guard `inner` with a validator of the given mode. With
    /// [`ValidatorMode::Bounded`] the guard's own bookkeeping is bounded
    /// too (rolling order fingerprint instead of a stored owner sequence),
    /// at the cost of unattributed reverse-edge faults being unrepairable.
    pub fn with_validator(inner: A, policy: GuardPolicy, mode: ValidatorMode) -> Self {
        let track = inner.requires_same_order() && inner.passes() > 1;
        let fingerprint = match (track, mode) {
            (false, _) => OrderFingerprint::Off,
            (true, ValidatorMode::Exact) => OrderFingerprint::Exact {
                owners: Vec::new(),
                replay: 0,
            },
            (true, ValidatorMode::Bounded { .. }) => OrderFingerprint::Rolling {
                pass0: 0,
                current: 0,
            },
        };
        let seed = match mode {
            ValidatorMode::Bounded { seed, .. } => seed,
            ValidatorMode::Exact => 0,
        };
        Guarded {
            inner,
            policy,
            mode,
            validator: OnlineValidator::with_mode(mode),
            stats: GuardStats::default(),
            fatal: None,
            pass: 0,
            suppress_owner: None,
            quarantined: FastSet::default(),
            fingerprint,
            order_violated: false,
            order_hasher: HashFn::from_seed(seed, 0x6F72_6465), // "orde"
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> GuardPolicy {
        self.policy
    }

    /// Counters so far (also published on the final report via
    /// [`MultiPassAlgorithm::guard_stats`]).
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Unwrap the inner algorithm.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The validator mode in force.
    pub fn mode(&self) -> ValidatorMode {
        self.mode
    }

    /// Borrow the inner algorithm (the batch engine reaches through the
    /// shared guard to manage its fan-out between passes).
    pub(crate) fn inner_ref(&self) -> &A {
        &self.inner
    }

    /// Mutably borrow the inner algorithm.
    pub(crate) fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Serialize the guard's *cross-pass* state: counters, the quarantine
    /// set, and the pass-1 order fingerprint. Everything else
    /// (`validator`, `suppress_owner`, `pass`, `fatal`) is per-pass state
    /// that `begin_pass` resets, and a pass boundary — the only place
    /// checkpoints happen — is by definition after such a reset point.
    pub(crate) fn save_guard_state(&self, w: &mut dyn Write) -> io::Result<()> {
        write_usize(w, self.stats.faults_detected)?;
        write_usize(w, self.stats.items_repaired)?;
        write_usize(w, self.stats.edges_quarantined)?;
        write_usize(w, self.stats.validator_peak_bytes)?;
        write_usize(w, self.quarantined.len())?;
        for &key in &self.quarantined {
            write_u64(w, key)?;
        }
        match &self.fingerprint {
            OrderFingerprint::Off => write_u8(w, 0)?,
            OrderFingerprint::Exact { owners, .. } => {
                write_u8(w, 1)?;
                write_usize(w, owners.len())?;
                for o in owners {
                    crate::checkpoint::write_u32(w, o.0)?;
                }
            }
            OrderFingerprint::Rolling { pass0, .. } => {
                write_u8(w, 2)?;
                write_u64(w, *pass0)?;
            }
        }
        write_u8(w, self.order_violated as u8)
    }

    /// Restore the state written by [`Guarded::save_guard_state`] into a
    /// freshly constructed guard (same policy and mode). The per-pass
    /// cursors inside the fingerprint (`replay`, `current`) restart at
    /// zero, exactly as `begin_pass` leaves them.
    pub(crate) fn restore_guard_state(&mut self, r: &mut dyn Read) -> io::Result<()> {
        self.stats.faults_detected = read_usize(r)?;
        self.stats.items_repaired = read_usize(r)?;
        self.stats.edges_quarantined = read_usize(r)?;
        self.stats.validator_peak_bytes = read_usize(r)?;
        let n = read_usize(r)?;
        self.quarantined =
            FastSet::with_capacity_and_hasher(n.min(1 << 20), FastBuildHasher::default());
        for _ in 0..n {
            self.quarantined.insert(read_u64(r)?);
        }
        self.fingerprint = match read_u8(r)? {
            0 => OrderFingerprint::Off,
            1 => {
                let len = read_usize(r)?;
                let mut owners = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    owners.push(VertexId(crate::checkpoint::read_u32(r)?));
                }
                OrderFingerprint::Exact { owners, replay: 0 }
            }
            2 => OrderFingerprint::Rolling {
                pass0: read_u64(r)?,
                current: 0,
            },
            t => return Err(corrupt(format!("bad order fingerprint tag {t}"))),
        };
        self.order_violated = read_u8(r)? != 0;
        Ok(())
    }

    fn observe_validator_peak(&mut self) {
        let fp = match &self.fingerprint {
            OrderFingerprint::Off | OrderFingerprint::Rolling { .. } => 16,
            OrderFingerprint::Exact { owners, .. } => {
                owners.len() * std::mem::size_of::<VertexId>()
            }
        };
        let bytes = self.validator.space_bytes() + hashset_bytes(&self.quarantined) + fp;
        self.stats.validator_peak_bytes = self.stats.validator_peak_bytes.max(bytes);
    }

    /// Run the validation/suppression state machine for one item and
    /// report whether it should be forwarded to the inner algorithm. Every
    /// guard side effect — fault counters, segment suppression, quarantine
    /// lookups, fatal latching — happens here, so [`Guarded::item`] and
    /// [`Guarded::feed_slice`] are the same machine at different forwarding
    /// granularities and their stats are identical by construction.
    fn admit(&mut self, src: VertexId, dst: VertexId) -> bool {
        if self.fatal.is_some() {
            return false;
        }
        let key = pack_edge(src, dst);
        if self.pass > 0 && self.quarantined.contains(&key) {
            // The partner direction never existed; drop the survivor so
            // later passes see the same repaired stream as pass 1 did
            // (post-quarantine). Only populated under the repair policy.
            self.validator.note_suppressed();
            return false;
        }
        if let Some(owner) = self.suppress_owner {
            if owner == src {
                self.validator.note_suppressed();
                if self.pass == 0 {
                    self.stats.items_repaired += 1;
                }
                return self.policy == GuardPolicy::Observe;
            }
            self.suppress_owner = None;
        }
        match self.validator.observe(StreamItem::new(src, dst)) {
            Ok(()) => true,
            Err(e) => {
                if self.pass == 0 {
                    self.stats.faults_detected += 1;
                }
                if matches!(e, StreamError::ListNotContiguous { .. }) {
                    // Suppress the rest of the displaced segment rather
                    // than re-reporting every item in it.
                    self.suppress_owner = Some(src);
                }
                match self.policy {
                    GuardPolicy::Strict => {
                        self.fatal = Some(e);
                        false
                    }
                    GuardPolicy::Repair => {
                        if self.pass == 0 {
                            self.stats.items_repaired += 1;
                        }
                        false
                    }
                    GuardPolicy::Observe => true,
                }
            }
        }
    }

    fn order_violation(&mut self, list_index: usize) {
        self.order_violated = true;
        self.stats.faults_detected += 1;
        let err = StreamError::PassOrderChanged {
            pass: self.pass,
            list_index,
        };
        match self.policy {
            // A reordered replay cannot be repaired: list positions are the
            // inner algorithm's coordinate system.
            GuardPolicy::Strict | GuardPolicy::Repair => self.fatal = Some(err),
            GuardPolicy::Observe => {}
        }
    }
}

impl<A: MultiPassAlgorithm> SpaceUsage for Guarded<A> {
    fn space_bytes(&self) -> usize {
        let fp = match &self.fingerprint {
            OrderFingerprint::Off | OrderFingerprint::Rolling { .. } => 16,
            OrderFingerprint::Exact { owners, .. } => {
                owners.len() * std::mem::size_of::<VertexId>()
            }
        };
        self.inner.space_bytes()
            + self.validator.space_bytes()
            + hashset_bytes(&self.quarantined)
            + fp
    }
}

impl<A: MultiPassAlgorithm> MultiPassAlgorithm for Guarded<A> {
    type Output = A::Output;

    fn passes(&self) -> usize {
        self.inner.passes()
    }

    fn requires_same_order(&self) -> bool {
        self.inner.requires_same_order()
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        self.validator.reset();
        self.suppress_owner = None;
        if let OrderFingerprint::Exact { replay, .. } = &mut self.fingerprint {
            *replay = 0;
        }
        if let OrderFingerprint::Rolling { current, .. } = &mut self.fingerprint {
            *current = 0;
        }
        self.inner.begin_pass(pass);
    }

    fn begin_list(&mut self, owner: VertexId) {
        let mut violation = None;
        match &mut self.fingerprint {
            OrderFingerprint::Off => {}
            OrderFingerprint::Exact { owners, replay } => {
                if self.pass == 0 {
                    owners.push(owner);
                } else if !self.order_violated {
                    let idx = *replay;
                    *replay += 1;
                    if owners.get(idx) != Some(&owner) {
                        violation = Some(idx);
                    }
                }
            }
            OrderFingerprint::Rolling { pass0, current } => {
                let next = self.order_hasher.hash(*current ^ owner.0 as u64);
                if self.pass == 0 {
                    *pass0 = next;
                }
                *current = next;
            }
        }
        if let Some(idx) = violation {
            self.order_violation(idx);
        }
        // Boundaries are always forwarded, even around suppressed segments:
        // for order-sensitive algorithms list positions must stay aligned
        // across passes, and suppression is replayed identically per pass.
        self.inner.begin_list(owner);
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        if self.admit(src, dst) {
            self.inner.item(src, dst);
        }
    }

    /// Validate a whole run once, then hand the admitted stretches to the
    /// inner algorithm as slices. On a clean run (the overwhelmingly common
    /// case) that is a single `feed_slice` of the full input, so all `R`
    /// instances behind a shared batch guard get the slice fast path while
    /// the stream is still validated exactly once.
    fn feed_slice(&mut self, items: &[StreamItem]) {
        let mut run_start = 0usize;
        for (i, it) in items.iter().enumerate() {
            if !self.admit(it.src, it.dst) {
                if run_start < i {
                    self.inner.feed_slice(&items[run_start..i]);
                }
                run_start = i + 1;
            }
        }
        if run_start < items.len() {
            self.inner.feed_slice(&items[run_start..]);
        }
    }

    fn end_list(&mut self, owner: VertexId) {
        self.observe_validator_peak();
        self.inner.end_list(owner);
    }

    fn end_pass(&mut self, pass: usize) {
        if pass == 0 {
            if let Err(e) = self.validator.finish() {
                let unmatched = self.validator.unmatched_edges();
                self.stats.faults_detected += unmatched.len().max(1);
                match self.policy {
                    GuardPolicy::Strict => self.fatal = Some(e),
                    GuardPolicy::Repair => {
                        if !unmatched.is_empty() {
                            // Exact mode: quarantine every unmatched edge.
                            for (s, d) in &unmatched {
                                self.quarantined.insert(pack_edge(*s, *d));
                            }
                            self.stats.edges_quarantined += unmatched.len();
                        } else if let StreamError::MissingReverse { src, dst } = e {
                            // Bounded mode, single straggler recovered from
                            // the sketch: still repairable.
                            self.quarantined.insert(pack_edge(src, dst));
                            self.stats.edges_quarantined += 1;
                        } else {
                            // Bounded mode, unattributable imbalance:
                            // nothing to drop, so repair cannot proceed.
                            self.fatal = Some(e);
                        }
                    }
                    GuardPolicy::Observe => {}
                }
            }
        } else if !self.order_violated {
            let violation = match &self.fingerprint {
                OrderFingerprint::Exact { owners, replay } => {
                    (*replay != owners.len()).then_some(*replay)
                }
                OrderFingerprint::Rolling { pass0, current } => {
                    (current != pass0).then_some(usize::MAX)
                }
                OrderFingerprint::Off => None,
            };
            if let Some(at) = violation {
                self.order_violation(at);
            }
        }
        self.observe_validator_peak();
        self.inner.end_pass(pass);
    }

    fn abort_error(&self) -> Option<StreamError> {
        self.fatal.clone()
    }

    fn abort_run(&self) -> Option<RunError> {
        self.inner.abort_run()
    }

    fn guard_stats(&self) -> Option<GuardStats> {
        Some(self.stats)
    }

    fn obs_counters(&self) -> Option<crate::obs::ObsCounters> {
        self.inner.obs_counters()
    }

    fn finish(self) -> A::Output {
        self.inner.finish()
    }
}

impl<A: MultiPassAlgorithm + Checkpoint> Checkpoint for Guarded<A> {
    /// A guarded algorithm checkpoints as policy + mode + the guard's
    /// cross-pass state + the inner algorithm's own checkpoint, so
    /// `Guarded<TwoPassTriangle>` (and friends) round-trip through
    /// [`Checkpoint`] like any other algorithm.
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        encode_policy(w, self.policy)?;
        encode_mode(w, self.mode)?;
        let mut guard_blob = Vec::new();
        self.save_guard_state(&mut guard_blob)?;
        write_bytes(w, &guard_blob)?;
        let mut inner_blob = Vec::new();
        self.inner.save(&mut inner_blob)?;
        write_bytes(w, &inner_blob)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let policy = decode_policy(r)?;
        let mode = decode_mode(r)?;
        let guard_blob = read_bytes(r)?;
        let inner_blob = read_bytes(r)?;
        let inner = A::restore(&mut inner_blob.as_slice())?;
        let mut guarded = Guarded::with_validator(inner, policy, mode);
        guarded.restore_guard_state(&mut guard_blob.as_slice())?;
        Ok(guarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjlist::AdjListStream;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::order::StreamOrder;
    use crate::runner::RunError;
    use crate::trace::ItemTrace;
    use adjstream_graph::gen;

    /// Counts items and list boundaries per pass; order-sensitivity is
    /// configurable so one type exercises both fingerprint paths.
    struct Probe {
        passes: usize,
        same_order: bool,
        items: usize,
        lists: usize,
    }

    impl Probe {
        fn new(passes: usize, same_order: bool) -> Self {
            Probe {
                passes,
                same_order,
                items: 0,
                lists: 0,
            }
        }
    }

    impl SpaceUsage for Probe {
        fn space_bytes(&self) -> usize {
            32
        }
    }

    impl MultiPassAlgorithm for Probe {
        type Output = (usize, usize);
        fn passes(&self) -> usize {
            self.passes
        }
        fn requires_same_order(&self) -> bool {
            self.same_order
        }
        fn begin_pass(&mut self, _p: usize) {}
        fn begin_list(&mut self, _o: VertexId) {
            self.lists += 1;
        }
        fn item(&mut self, _s: VertexId, _d: VertexId) {
            self.items += 1;
        }
        fn finish(self) -> (usize, usize) {
            (self.items, self.lists)
        }
    }

    fn clean_items(n: usize, m: usize, seed: u64) -> Vec<crate::item::StreamItem> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnm(n, m, &mut rng);
        AdjListStream::new(&g, StreamOrder::shuffled(n, seed)).collect_items()
    }

    #[test]
    fn clean_stream_passes_all_policies_untouched() {
        let items = clean_items(20, 60, 4);
        for policy in [
            GuardPolicy::Strict,
            GuardPolicy::Repair,
            GuardPolicy::Observe,
        ] {
            let guarded = Guarded::new(Probe::new(2, false), policy);
            let trace = ItemTrace::new_unchecked(items.clone());
            let ((n, _), report) = trace.try_run(guarded).unwrap();
            assert_eq!(n, 240, "{policy}");
            let stats = report.guard.unwrap();
            assert_eq!(stats.faults_detected, 0);
            assert_eq!(stats.items_repaired, 0);
            assert_eq!(stats.edges_quarantined, 0);
            assert!(stats.validator_peak_bytes > 0);
        }
    }

    #[test]
    fn strict_aborts_with_position() {
        let items = clean_items(20, 60, 4);
        let c = FaultPlan::new(9)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        let guarded = Guarded::new(Probe::new(1, false), GuardPolicy::Strict);
        let err = c.try_run(guarded).unwrap_err();
        let RunError::Invalid { pass: 0, error } = err else {
            panic!("expected Invalid, got {err:?}");
        };
        assert!(matches!(error, StreamError::SelfLoop { .. }));
        assert!(error.position().is_some());
    }

    #[test]
    fn repair_drops_offending_items_and_quarantines() {
        let items = clean_items(24, 80, 5);
        let c = FaultPlan::new(12)
            .with(FaultKind::DropDirection, 2)
            .with(FaultKind::DuplicateItem, 1)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        assert!(c.skipped().is_empty());
        let guarded = Guarded::new(Probe::new(2, false), GuardPolicy::Repair);
        let ((n, _), report) = c.try_run(guarded).unwrap();
        let stats = report.guard.unwrap();
        // 2 missing-reverse + 1 duplicate + 1 self-loop.
        assert_eq!(stats.faults_detected, 4);
        assert_eq!(stats.faults_detected, c.expected_detections());
        // The duplicate and the self-loop were dropped in pass 1.
        assert_eq!(stats.items_repaired, 2);
        assert_eq!(stats.edges_quarantined, 2);
        // Inner algorithm item count: pass 1 forwards all but the 2 dropped
        // items; pass 2 additionally suppresses the 2 quarantined survivors.
        let base = c.items().len();
        assert_eq!(n, (base - 2) + (base - 2 - 2));
    }

    #[test]
    fn repaired_stream_revalidates_clean() {
        // Whatever Repair forwards must itself satisfy the promise: pipe
        // the forwarded items of pass 2 into a fresh validator.
        struct Collect(Vec<crate::item::StreamItem>, usize);
        impl SpaceUsage for Collect {
            fn space_bytes(&self) -> usize {
                0
            }
        }
        impl MultiPassAlgorithm for Collect {
            type Output = Vec<crate::item::StreamItem>;
            fn passes(&self) -> usize {
                2
            }
            fn begin_pass(&mut self, p: usize) {
                self.1 = p;
            }
            fn item(&mut self, s: VertexId, d: VertexId) {
                if self.1 == 1 {
                    self.0.push(crate::item::StreamItem::new(s, d));
                }
            }
            fn finish(self) -> Self::Output {
                self.0
            }
        }
        let items = clean_items(30, 120, 8);
        let c = FaultPlan::new(3)
            .with(FaultKind::DropDirection, 2)
            .with(FaultKind::InjectSelfLoop, 1)
            .with(FaultKind::DuplicateItem, 1)
            .with(FaultKind::SplitList, 1)
            .apply(&items);
        let guarded = Guarded::new(Collect(Vec::new(), 0), GuardPolicy::Repair);
        let (pass2_items, _) = c.try_run(guarded).unwrap();
        assert!(crate::validate::validate_stream(pass2_items.into_iter()).is_ok());
    }

    #[test]
    fn observe_counts_without_modifying() {
        let items = clean_items(24, 80, 5);
        let c = FaultPlan::new(12)
            .with(FaultKind::DuplicateItem, 1)
            .with(FaultKind::InjectSelfLoop, 1)
            .apply(&items);
        let guarded = Guarded::new(Probe::new(1, false), GuardPolicy::Observe);
        let ((n, _), report) = c.try_run(guarded).unwrap();
        let stats = report.guard.unwrap();
        assert_eq!(stats.faults_detected, 2);
        assert_eq!(stats.items_repaired, 0);
        assert_eq!(stats.edges_quarantined, 0);
        // Every item forwarded, including the malformed ones.
        assert_eq!(n, c.items().len());
    }

    #[test]
    fn reorder_fault_is_detected_for_order_sensitive_algorithms() {
        let items = clean_items(20, 60, 6);
        let c = FaultPlan::new(2)
            .with(FaultKind::ReorderPass, 1)
            .apply(&items);
        assert!(c.skipped().is_empty());
        // Order-sensitive inner: strict and repair abort, observe counts.
        for policy in [GuardPolicy::Strict, GuardPolicy::Repair] {
            let guarded = Guarded::new(Probe::new(2, true), policy);
            let err = c.try_run(guarded).unwrap_err();
            assert!(
                matches!(
                    err,
                    RunError::Invalid {
                        pass: 1,
                        error: StreamError::PassOrderChanged { pass: 1, .. }
                    }
                ),
                "{policy}: {err:?}"
            );
        }
        let guarded = Guarded::new(Probe::new(2, true), GuardPolicy::Observe);
        let (_, report) = c.try_run(guarded).unwrap();
        assert_eq!(report.guard.unwrap().faults_detected, 1);
        // Order-free inner: nobody cares about the replay order.
        let guarded = Guarded::new(Probe::new(2, false), GuardPolicy::Strict);
        let (_, report) = c.try_run(guarded).unwrap();
        assert_eq!(report.guard.unwrap().faults_detected, 0);
    }

    #[test]
    fn bounded_guard_detects_reorder_at_pass_end() {
        let items = clean_items(20, 60, 6);
        let c = FaultPlan::new(2)
            .with(FaultKind::ReorderPass, 1)
            .apply(&items);
        let guarded = Guarded::with_validator(
            Probe::new(2, true),
            GuardPolicy::Strict,
            ValidatorMode::Bounded { seed: 5, window: 8 },
        );
        let err = c.try_run(guarded).unwrap_err();
        assert!(matches!(
            err,
            RunError::Invalid {
                pass: 1,
                error: StreamError::PassOrderChanged {
                    pass: 1,
                    list_index: usize::MAX
                }
            }
        ));
    }

    #[test]
    fn bounded_repair_quarantines_single_straggler() {
        let items = clean_items(24, 80, 7);
        let c = FaultPlan::new(4)
            .with(FaultKind::DropDirection, 1)
            .apply(&items);
        let guarded = Guarded::with_validator(
            Probe::new(2, false),
            GuardPolicy::Repair,
            ValidatorMode::Bounded { seed: 5, window: 8 },
        );
        let ((n, _), report) = c.try_run(guarded).unwrap();
        let stats = report.guard.unwrap();
        assert_eq!(stats.faults_detected, 1);
        assert_eq!(stats.edges_quarantined, 1);
        assert_eq!(n, c.items().len() + (c.items().len() - 1));
    }

    #[test]
    fn bounded_repair_aborts_on_unattributable_imbalance() {
        let items = clean_items(24, 80, 7);
        let c = FaultPlan::new(4)
            .with(FaultKind::DropDirection, 2)
            .apply(&items);
        let guarded = Guarded::with_validator(
            Probe::new(2, false),
            GuardPolicy::Repair,
            ValidatorMode::Bounded { seed: 5, window: 8 },
        );
        let err = c.try_run(guarded).unwrap_err();
        assert!(matches!(
            err,
            RunError::Invalid {
                pass: 0,
                error: StreamError::UnbalancedEdges { .. }
            }
        ));
    }

    #[test]
    fn split_repair_suppresses_segment_and_quarantines_partners() {
        let items = clean_items(30, 100, 10);
        let c = FaultPlan::new(6)
            .with(FaultKind::SplitList, 1)
            .apply(&items);
        assert!(c.skipped().is_empty());
        let displaced = c.injected()[0].expected_detections - 1;
        let guarded = Guarded::new(Probe::new(2, false), GuardPolicy::Repair);
        let (_, report) = c.try_run(guarded).unwrap();
        let stats = report.guard.unwrap();
        assert_eq!(stats.faults_detected, 1 + displaced);
        assert_eq!(stats.items_repaired, displaced);
        assert_eq!(stats.edges_quarantined, displaced);
    }

    #[test]
    fn guard_runs_under_the_graph_runner_too() {
        use crate::runner::{PassOrders, Runner};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(14);
        let g = gen::gnm(20, 70, &mut rng);
        let guarded = Guarded::new(Probe::new(2, true), GuardPolicy::Strict);
        let ((n, _), report) =
            Runner::try_run(&g, guarded, &PassOrders::Same(StreamOrder::shuffled(20, 3))).unwrap();
        assert_eq!(n, 280);
        assert_eq!(report.guard.unwrap().faults_detected, 0);
    }
}

//! Structured run metrics and event tracing for the execution stack.
//!
//! Every run driver in this workspace can account for what a run *did* —
//! per-pass wall time, items and slices dispatched, a sampled time-series
//! of [`SpaceUsage`](crate::meter::SpaceUsage) bytes, sampler
//! admission/eviction/freeze counts, guard repairs, checkpoint latencies,
//! and retry counts — without perturbing what the run *computes*. The
//! contract is strict: with metrics disabled the drivers execute today's
//! hot path (a single predicted branch per list boundary), and with
//! metrics enabled every estimate, peak byte count, and guard counter is
//! bit-for-bit identical to the disabled run. Only the observer changes.
//!
//! The moving parts:
//!
//! * [`Metrics`] — the sink. Constructed enabled or disabled at run
//!   construction; cheap to clone (a shared handle). Disabled handles
//!   make every recording call a no-op on a `None`.
//! * [`MetricsSnapshot`] — the versioned export: everything a finished
//!   run (or an aggregate of runs) observed, serializable as one-line
//!   JSON via [`MetricsSnapshot::to_json`].
//! * [`ObsCounters`] — sampler/watcher lifecycle counters the core
//!   algorithms accumulate internally (plain integer increments on paths
//!   they already branch on) and publish through
//!   [`MultiPassAlgorithm::obs_counters`](crate::runner::MultiPassAlgorithm::obs_counters).
//! * [`RunObserver`] — the per-run recorder the sequential drivers thread
//!   through [`crate::runner::drive_pass`]'s boundary loop.
//!
//! Aggregation is additive: absorbing several runs into one sink sums
//! wall times, items, and counters pass-wise, keeps byte peaks as maxima,
//! and keeps the space time-series of the run with the largest peak (the
//! run worth plotting).

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::checkpoint::{read_u64, write_u64};
use crate::runner::GuardStats;

/// Version stamped into every exported [`MetricsSnapshot`]. Bump when the
/// JSON schema or the meaning of a field changes.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Ceiling on retained space time-series points per pass; when a pass
/// produces more list boundaries than this, the series is decimated by
/// doubling its sampling stride (keeping every other point), so the
/// retained points always span the whole pass.
pub const SERIES_MAX_POINTS: usize = 64;

/// Sampler and watcher lifecycle counters accumulated by the core
/// algorithms.
///
/// These are plain integer increments on branches the algorithms already
/// take (the `BottomKEvent` / `ReservoirEvent` match arms), so they are
/// maintained unconditionally — the counts are deterministic properties
/// of the run, independent of whether a [`Metrics`] sink is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsCounters {
    /// Keys admitted into an edge sample (bottom-k insertions, threshold
    /// acceptances).
    pub admissions: u64,
    /// Keys displaced from a full bottom-k sample by a smaller hash.
    pub evictions: u64,
    /// Offers a full or threshold sample declined.
    pub rejections: u64,
    /// Bounded structures currently saturated at capacity (edge sample,
    /// pair reservoir, wedge cap) — a snapshot taken when the counters are
    /// published, not a running count.
    pub freezes: u64,
    /// Pair/wedge records stored into a reservoir slot.
    pub pairs_stored: u64,
    /// Reservoir replacements (a stored record displaced another).
    pub pairs_replaced: u64,
    /// Reservoir offers that lost the replacement lottery.
    pub pairs_rejected: u64,
    /// Watch registrations on a pair-completion watcher (refcount
    /// acquisitions).
    pub watches_started: u64,
    /// Watch releases (refcount drops).
    pub watches_retired: u64,
}

impl ObsCounters {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &ObsCounters) {
        self.admissions += other.admissions;
        self.evictions += other.evictions;
        self.rejections += other.rejections;
        self.freezes += other.freezes;
        self.pairs_stored += other.pairs_stored;
        self.pairs_replaced += other.pairs_replaced;
        self.pairs_rejected += other.pairs_rejected;
        self.watches_started += other.watches_started;
        self.watches_retired += other.watches_retired;
    }

    /// Serialize for a checkpoint payload (fixed-width, field order is the
    /// struct order).
    pub fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        for v in [
            self.admissions,
            self.evictions,
            self.rejections,
            self.freezes,
            self.pairs_stored,
            self.pairs_replaced,
            self.pairs_rejected,
            self.watches_started,
            self.watches_retired,
        ] {
            write_u64(w, v)?;
        }
        Ok(())
    }

    /// Inverse of [`ObsCounters::save`].
    pub fn restore(r: &mut dyn Read) -> io::Result<ObsCounters> {
        Ok(ObsCounters {
            admissions: read_u64(r)?,
            evictions: read_u64(r)?,
            rejections: read_u64(r)?,
            freezes: read_u64(r)?,
            pairs_stored: read_u64(r)?,
            pairs_replaced: read_u64(r)?,
            pairs_rejected: read_u64(r)?,
            watches_started: read_u64(r)?,
            watches_retired: read_u64(r)?,
        })
    }
}

/// One point of a pass's space time-series: state bytes observed at an
/// adjacency-list boundary, positioned by the cumulative item count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpacePoint {
    /// Items processed in this pass when the sample was taken.
    pub items: u64,
    /// State bytes reported by the algorithm at that boundary.
    pub bytes: u64,
}

/// What one pass did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassMetrics {
    /// 0-based pass index.
    pub pass: u32,
    /// Wall-clock time the pass took, summed over merged runs.
    pub wall_nanos: u64,
    /// Items dispatched in the pass, summed over merged runs.
    pub items: u64,
    /// Same-source slices delivered via `feed_slice` (0 under per-item
    /// dispatch).
    pub slices: u64,
    /// Adjacency lists the pass announced.
    pub lists: u64,
    /// Peak state bytes observed during the pass (max over merged runs).
    pub peak_bytes: u64,
    /// Decimated space time-series (≤ [`SERIES_MAX_POINTS`] points; from
    /// the merged run with the largest pass peak).
    pub series: Vec<SpacePoint>,
}

/// Checkpoint I/O latencies, accumulated by the batched engine's
/// pass-boundary hook and the resume path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointMetrics {
    /// Checkpoint files written.
    pub writes: u64,
    /// Total wall time spent encoding + atomically writing them.
    pub write_nanos: u64,
    /// Total payload bytes written.
    pub write_bytes: u64,
    /// Checkpoint files read and applied on resume.
    pub restores: u64,
    /// Total wall time spent reading + decoding them.
    pub restore_nanos: u64,
}

/// Retry/backoff counters from fault-tolerant ingestion
/// (`read_trace_file_with_retry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryMetrics {
    /// Read operations that went through a retry policy.
    pub operations: u64,
    /// Total attempts across those operations (≥ `operations`).
    pub attempts: u64,
    /// Attempts beyond the first per operation.
    pub retries: u64,
}

/// Everything a finished run — or an additive aggregate of runs —
/// observed. The versioned export behind `--metrics-out`,
/// `RunReport::metrics`, and the bench JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Schema version ([`METRICS_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Runs merged into this snapshot (repetitions, batch instances).
    pub runs: u64,
    /// Per-pass observations, indexed by pass.
    pub passes: Vec<PassMetrics>,
    /// Sampler/watcher counters, summed over runs.
    pub counters: ObsCounters,
    /// Ingestion-guard counters, when a guard ran.
    pub guard: Option<GuardStats>,
    /// Checkpoint write/restore latencies.
    pub checkpoint: CheckpointMetrics,
    /// Retry/backoff counters.
    pub retry: RetryMetrics,
    /// High-water mark of a single run's state bytes (max over runs) —
    /// equal to `RunReport::peak_state_bytes` for a single observed run.
    pub peak_state_bytes: u64,
    /// Items processed across all passes (for batch aggregates: shared
    /// stream items, not per-instance deliveries).
    pub items_processed: u64,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            schema: METRICS_SCHEMA_VERSION,
            runs: 0,
            passes: Vec::new(),
            counters: ObsCounters::default(),
            guard: None,
            checkpoint: CheckpointMetrics::default(),
            retry: RetryMetrics::default(),
            peak_state_bytes: 0,
            items_processed: 0,
        }
    }
}

/// Sum two optional guard-counter blocks (counts add, validator peaks
/// take the max — same shape as merging two runs' reports).
fn merge_guard(a: Option<GuardStats>, b: Option<GuardStats>) -> Option<GuardStats> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(GuardStats {
            faults_detected: a.faults_detected + b.faults_detected,
            items_repaired: a.items_repaired + b.items_repaired,
            edges_quarantined: a.edges_quarantined + b.edges_quarantined,
            validator_peak_bytes: a.validator_peak_bytes.max(b.validator_peak_bytes),
        }),
    }
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counts add, peaks take the max, and each
    /// pass keeps the space series of whichever contributing run peaked
    /// higher.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.runs += other.runs;
        for op in &other.passes {
            let idx = op.pass as usize;
            if self.passes.iter().all(|p| p.pass != op.pass) {
                // Keep `passes` sorted by pass index for stable JSON.
                let at = self.passes.partition_point(|p| p.pass < op.pass);
                self.passes.insert(at, op.clone());
                let _ = idx;
                continue;
            }
            let p = self
                .passes
                .iter_mut()
                .find(|p| p.pass == op.pass)
                .expect("pass present");
            p.wall_nanos += op.wall_nanos;
            p.items += op.items;
            p.slices += op.slices;
            p.lists += op.lists;
            if op.peak_bytes > p.peak_bytes {
                p.series = op.series.clone();
            }
            p.peak_bytes = p.peak_bytes.max(op.peak_bytes);
        }
        self.counters.merge(&other.counters);
        self.guard = merge_guard(self.guard, other.guard);
        self.checkpoint.writes += other.checkpoint.writes;
        self.checkpoint.write_nanos += other.checkpoint.write_nanos;
        self.checkpoint.write_bytes += other.checkpoint.write_bytes;
        self.checkpoint.restores += other.checkpoint.restores;
        self.checkpoint.restore_nanos += other.checkpoint.restore_nanos;
        self.retry.operations += other.retry.operations;
        self.retry.attempts += other.retry.attempts;
        self.retry.retries += other.retry.retries;
        self.peak_state_bytes = self.peak_state_bytes.max(other.peak_state_bytes);
        self.items_processed += other.items_processed;
    }

    /// Fold `other` — the snapshot of a *concurrently executed graph
    /// shard* of the same run — into `self`.
    ///
    /// [`MetricsSnapshot::merge`] models sequential repetitions: walls and
    /// run counts add. Shards of one run overlap in time and replicate
    /// pass-boundary state rather than adding to it, so here per-pass wall
    /// time and residency take the **max** over shards (the run is as slow
    /// and as resident as its slowest, biggest shard) while items, slices,
    /// and lists **sum** (each shard drove a disjoint share of the trace's
    /// lists). `runs` takes the max — N shards are still one run.
    pub fn merge_concurrent(&mut self, other: &MetricsSnapshot) {
        self.runs = self.runs.max(other.runs);
        for op in &other.passes {
            if self.passes.iter().all(|p| p.pass != op.pass) {
                let at = self.passes.partition_point(|p| p.pass < op.pass);
                self.passes.insert(at, op.clone());
                continue;
            }
            let p = self
                .passes
                .iter_mut()
                .find(|p| p.pass == op.pass)
                .expect("pass present");
            p.wall_nanos = p.wall_nanos.max(op.wall_nanos);
            p.items += op.items;
            p.slices += op.slices;
            p.lists += op.lists;
            if op.peak_bytes > p.peak_bytes {
                p.series = op.series.clone();
            }
            p.peak_bytes = p.peak_bytes.max(op.peak_bytes);
        }
        self.counters.merge(&other.counters);
        self.guard = merge_guard(self.guard, other.guard);
        self.checkpoint.writes += other.checkpoint.writes;
        self.checkpoint.write_nanos += other.checkpoint.write_nanos;
        self.checkpoint.write_bytes += other.checkpoint.write_bytes;
        self.checkpoint.restores += other.checkpoint.restores;
        self.checkpoint.restore_nanos += other.checkpoint.restore_nanos;
        self.retry.operations += other.retry.operations;
        self.retry.attempts += other.retry.attempts;
        self.retry.retries += other.retry.retries;
        self.peak_state_bytes = self.peak_state_bytes.max(other.peak_state_bytes);
        self.items_processed += other.items_processed;
    }

    /// Serialize as one line of JSON. Every key is a static identifier and
    /// every value an integer, so no escaping is needed; the first key is
    /// always `"schema"`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema\": {}, \"runs\": {}, \"peak_state_bytes\": {}, \"items_processed\": {}",
            self.schema, self.runs, self.peak_state_bytes, self.items_processed
        ));
        out.push_str(", \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"pass\": {}, \"wall_nanos\": {}, \"items\": {}, \"slices\": {}, \
                 \"lists\": {}, \"peak_bytes\": {}, \"series\": [",
                p.pass, p.wall_nanos, p.items, p.slices, p.lists, p.peak_bytes
            ));
            for (j, pt) in p.series.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", pt.items, pt.bytes));
            }
            out.push_str("]}");
        }
        out.push(']');
        let c = &self.counters;
        out.push_str(&format!(
            ", \"sampler\": {{\"admissions\": {}, \"evictions\": {}, \"rejections\": {}, \
             \"freezes\": {}, \"pairs_stored\": {}, \"pairs_replaced\": {}, \
             \"pairs_rejected\": {}, \"watches_started\": {}, \"watches_retired\": {}}}",
            c.admissions,
            c.evictions,
            c.rejections,
            c.freezes,
            c.pairs_stored,
            c.pairs_replaced,
            c.pairs_rejected,
            c.watches_started,
            c.watches_retired
        ));
        match &self.guard {
            None => out.push_str(", \"guard\": null"),
            Some(g) => out.push_str(&format!(
                ", \"guard\": {{\"faults_detected\": {}, \"items_repaired\": {}, \
                 \"edges_quarantined\": {}, \"validator_peak_bytes\": {}}}",
                g.faults_detected, g.items_repaired, g.edges_quarantined, g.validator_peak_bytes
            )),
        }
        out.push_str(&format!(
            ", \"checkpoint\": {{\"writes\": {}, \"write_nanos\": {}, \"write_bytes\": {}, \
             \"restores\": {}, \"restore_nanos\": {}}}",
            self.checkpoint.writes,
            self.checkpoint.write_nanos,
            self.checkpoint.write_bytes,
            self.checkpoint.restores,
            self.checkpoint.restore_nanos
        ));
        out.push_str(&format!(
            ", \"retry\": {{\"operations\": {}, \"attempts\": {}, \"retries\": {}}}}}",
            self.retry.operations, self.retry.attempts, self.retry.retries
        ));
        out
    }
}

/// The metrics sink: a cheap cloneable handle, enabled or disabled at run
/// construction.
///
/// Disabled handles carry no allocation and turn every recording call
/// into a `None` check; enabled handles share one mutex-protected
/// [`MetricsSnapshot`] that observed runs merge into. The mutex is locked
/// only at run/pass boundaries, never per item.
#[derive(Debug, Clone, Default)]
pub struct Metrics(Option<Arc<Mutex<MetricsSnapshot>>>);

impl Metrics {
    /// A sink that collects.
    pub fn enabled() -> Metrics {
        Metrics(Some(Arc::new(Mutex::new(MetricsSnapshot::default()))))
    }

    /// A sink that ignores everything (the default).
    pub fn disabled() -> Metrics {
        Metrics(None)
    }

    /// [`Metrics::enabled`] when `collect` is true, else
    /// [`Metrics::disabled`].
    pub fn from_flag(collect: bool) -> Metrics {
        if collect {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        }
    }

    /// Whether this handle collects.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn with<F: FnOnce(&mut MetricsSnapshot)>(&self, f: F) {
        if let Some(inner) = &self.0 {
            f(&mut inner.lock().expect("metrics sink poisoned"));
        }
    }

    /// Merge a finished run's snapshot into the sink.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        self.with(|m| m.merge(snap));
    }

    /// Record one checkpoint write of `bytes` payload bytes taking
    /// `nanos`.
    pub fn record_checkpoint_write(&self, nanos: u64, bytes: u64) {
        self.with(|m| {
            m.checkpoint.writes += 1;
            m.checkpoint.write_nanos += nanos;
            m.checkpoint.write_bytes += bytes;
        });
    }

    /// Record one checkpoint restore taking `nanos`.
    pub fn record_checkpoint_restore(&self, nanos: u64) {
        self.with(|m| {
            m.checkpoint.restores += 1;
            m.checkpoint.restore_nanos += nanos;
        });
    }

    /// Record a retried read: `attempts` total attempts for one operation.
    pub fn record_retries(&self, attempts: u64) {
        self.with(|m| {
            m.retry.operations += 1;
            m.retry.attempts += attempts;
            m.retry.retries += attempts.saturating_sub(1);
        });
    }

    /// A copy of everything absorbed so far (`None` for disabled sinks).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.0
            .as_ref()
            .map(|inner| inner.lock().expect("metrics sink poisoned").clone())
    }
}

/// Decimating space-series builder: retains at most
/// [`SERIES_MAX_POINTS`] boundary samples by doubling the sampling stride
/// whenever the buffer fills, so the kept points always cover the whole
/// pass at uniform granularity.
#[derive(Debug, Default)]
struct SeriesBuilder {
    points: Vec<SpacePoint>,
    stride: u64,
    boundary: u64,
}

impl SeriesBuilder {
    fn new() -> SeriesBuilder {
        SeriesBuilder {
            points: Vec::new(),
            stride: 1,
            boundary: 0,
        }
    }

    fn push(&mut self, items: u64, bytes: u64) {
        if self.boundary.is_multiple_of(self.stride) {
            if self.points.len() == SERIES_MAX_POINTS {
                let mut keep = 0usize;
                self.points.retain(|_| {
                    keep += 1;
                    (keep - 1).is_multiple_of(2)
                });
                self.stride *= 2;
            }
            if self.boundary.is_multiple_of(self.stride) {
                self.points.push(SpacePoint { items, bytes });
            }
        }
        self.boundary += 1;
    }
}

/// Per-pass accumulation state of a [`RunObserver`].
#[derive(Debug)]
struct ActivePass {
    pass: u32,
    t0: Instant,
    start_items: usize,
    slices: u64,
    lists: u64,
    peak_bytes: u64,
    series: SeriesBuilder,
}

/// The per-run recorder the sequential drivers thread through the
/// boundary-detection loop. Disabled observers reduce every call to one
/// predicted branch; they are what the unobserved entry points pass.
#[derive(Debug)]
pub struct RunObserver {
    enabled: bool,
    active: Option<ActivePass>,
    passes: Vec<PassMetrics>,
}

impl RunObserver {
    /// An observer that records nothing.
    pub fn disabled() -> RunObserver {
        RunObserver {
            enabled: false,
            active: None,
            passes: Vec::new(),
        }
    }

    /// An observer recording iff `sink` is enabled.
    pub fn for_sink(sink: &Metrics) -> RunObserver {
        RunObserver {
            enabled: sink.is_enabled(),
            active: None,
            passes: Vec::new(),
        }
    }

    /// A pass is starting; `processed` is the run's cumulative item count.
    #[inline]
    pub fn begin_pass(&mut self, pass: usize, processed: usize) {
        if !self.enabled {
            return;
        }
        self.active = Some(ActivePass {
            pass: pass as u32,
            t0: Instant::now(),
            start_items: processed,
            slices: 0,
            lists: 0,
            peak_bytes: 0,
            series: SeriesBuilder::new(),
        });
    }

    /// A list boundary was sampled at `bytes` with `processed` cumulative
    /// items.
    #[inline]
    pub fn boundary(&mut self, bytes: usize, processed: usize) {
        if !self.enabled {
            return;
        }
        if let Some(a) = &mut self.active {
            a.lists += 1;
            a.peak_bytes = a.peak_bytes.max(bytes as u64);
            a.series
                .push((processed - a.start_items) as u64, bytes as u64);
        }
    }

    /// One same-source slice was delivered through `feed_slice`.
    #[inline]
    pub fn slice(&mut self) {
        if !self.enabled {
            return;
        }
        if let Some(a) = &mut self.active {
            a.slices += 1;
        }
    }

    /// The pass ended at `bytes` state with `processed` cumulative items.
    #[inline]
    pub fn end_pass(&mut self, bytes: usize, processed: usize) {
        if !self.enabled {
            return;
        }
        if let Some(mut a) = self.active.take() {
            a.peak_bytes = a.peak_bytes.max(bytes as u64);
            self.passes.push(PassMetrics {
                pass: a.pass,
                wall_nanos: u64::try_from(a.t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                items: (processed - a.start_items) as u64,
                slices: a.slices,
                lists: a.lists,
                peak_bytes: a.peak_bytes,
                series: a.series.points,
            });
        }
    }

    /// Package the observations of one finished run (`None` when
    /// disabled).
    pub fn into_snapshot(
        self,
        peak_state_bytes: usize,
        items_processed: usize,
        guard: Option<GuardStats>,
        counters: Option<ObsCounters>,
    ) -> Option<MetricsSnapshot> {
        if !self.enabled {
            return None;
        }
        Some(MetricsSnapshot {
            runs: 1,
            passes: self.passes,
            counters: counters.unwrap_or_default(),
            guard,
            peak_state_bytes: peak_state_bytes as u64,
            items_processed: items_processed as u64,
            ..MetricsSnapshot::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let m = Metrics::disabled();
        m.record_checkpoint_write(100, 10);
        m.record_retries(5);
        m.absorb(&MetricsSnapshot::default());
        assert!(!m.is_enabled());
        assert_eq!(m.snapshot(), None);
    }

    #[test]
    fn enabled_sink_accumulates() {
        let m = Metrics::enabled();
        m.record_checkpoint_write(100, 10);
        m.record_checkpoint_write(50, 20);
        m.record_checkpoint_restore(30);
        m.record_retries(3);
        let s = m.snapshot().unwrap();
        assert_eq!(s.checkpoint.writes, 2);
        assert_eq!(s.checkpoint.write_nanos, 150);
        assert_eq!(s.checkpoint.write_bytes, 30);
        assert_eq!(s.checkpoint.restores, 1);
        assert_eq!(s.retry.operations, 1);
        assert_eq!(s.retry.attempts, 3);
        assert_eq!(s.retry.retries, 2);
    }

    #[test]
    fn merge_is_additive_with_max_peaks() {
        let mut a = MetricsSnapshot {
            runs: 1,
            passes: vec![PassMetrics {
                pass: 0,
                wall_nanos: 10,
                items: 100,
                slices: 2,
                lists: 4,
                peak_bytes: 64,
                series: vec![SpacePoint {
                    items: 50,
                    bytes: 64,
                }],
            }],
            peak_state_bytes: 64,
            items_processed: 100,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            runs: 1,
            passes: vec![
                PassMetrics {
                    pass: 0,
                    wall_nanos: 20,
                    items: 100,
                    slices: 0,
                    lists: 4,
                    peak_bytes: 128,
                    series: vec![SpacePoint {
                        items: 25,
                        bytes: 128,
                    }],
                },
                PassMetrics {
                    pass: 1,
                    items: 40,
                    ..PassMetrics::default()
                },
            ],
            peak_state_bytes: 128,
            items_processed: 140,
            ..MetricsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.passes.len(), 2);
        assert_eq!(a.passes[0].wall_nanos, 30);
        assert_eq!(a.passes[0].items, 200);
        assert_eq!(a.passes[0].peak_bytes, 128);
        // The higher-peak run's series wins.
        assert_eq!(a.passes[0].series[0].bytes, 128);
        assert_eq!(a.passes[1].pass, 1);
        assert_eq!(a.peak_state_bytes, 128);
        assert_eq!(a.items_processed, 240);
    }

    #[test]
    fn merge_concurrent_maxes_walls_and_residency_sums_work() {
        let shard = |wall, items, lists, peak| MetricsSnapshot {
            runs: 1,
            passes: vec![PassMetrics {
                pass: 0,
                wall_nanos: wall,
                items,
                slices: lists,
                lists,
                peak_bytes: peak,
                series: vec![SpacePoint { items, bytes: peak }],
            }],
            peak_state_bytes: peak,
            items_processed: items,
            ..MetricsSnapshot::default()
        };
        let mut a = shard(10, 100, 4, 64);
        a.merge_concurrent(&shard(25, 60, 3, 48));
        // One run, not two: shards replicate the run, they don't repeat it.
        assert_eq!(a.runs, 1);
        let p = &a.passes[0];
        // Wall and residency are maxes over the overlapping shards...
        assert_eq!(p.wall_nanos, 25);
        assert_eq!(p.peak_bytes, 64);
        assert_eq!(a.peak_state_bytes, 64);
        // ...while the disjoint work shares sum to the whole trace.
        assert_eq!(p.items, 160);
        assert_eq!(p.slices, 7);
        assert_eq!(p.lists, 7);
        assert_eq!(a.items_processed, 160);
        // The higher-peak shard's space series is kept.
        assert_eq!(p.series[0].bytes, 64);
    }

    #[test]
    fn merge_concurrent_with_empty_snapshots_is_identity() {
        let shard = |wall, items, lists, peak| MetricsSnapshot {
            runs: 1,
            passes: vec![PassMetrics {
                pass: 0,
                wall_nanos: wall,
                items,
                slices: lists,
                lists,
                peak_bytes: peak,
                series: vec![SpacePoint { items, bytes: peak }],
            }],
            peak_state_bytes: peak,
            items_processed: items,
            ..MetricsSnapshot::default()
        };
        // empty ⊕ empty = empty.
        let mut e = MetricsSnapshot::default();
        e.merge_concurrent(&MetricsSnapshot::default());
        assert_eq!(e, MetricsSnapshot::default());
        // empty ⊕ x = x: the empty snapshot is the identity on the left...
        let x = shard(10, 100, 4, 64);
        let mut a = MetricsSnapshot::default();
        a.merge_concurrent(&x);
        assert_eq!(a, x);
        // ...and on the right.
        let mut b = x.clone();
        b.merge_concurrent(&MetricsSnapshot::default());
        assert_eq!(b, x);
    }

    #[test]
    fn merge_concurrent_single_shard_replays_the_sequential_profile() {
        // A 1-shard plan replicates the sequential execution: folding its
        // lone snapshot into a fresh accumulator must reproduce it field
        // for field — max-walls, summed residency, kept series and all.
        let single = MetricsSnapshot {
            runs: 1,
            passes: vec![
                PassMetrics {
                    pass: 0,
                    wall_nanos: 42,
                    items: 200,
                    slices: 9,
                    lists: 9,
                    peak_bytes: 96,
                    series: vec![SpacePoint {
                        items: 50,
                        bytes: 96,
                    }],
                },
                PassMetrics {
                    pass: 1,
                    wall_nanos: 17,
                    items: 200,
                    slices: 9,
                    lists: 9,
                    peak_bytes: 32,
                    series: vec![SpacePoint {
                        items: 50,
                        bytes: 32,
                    }],
                },
            ],
            peak_state_bytes: 96,
            items_processed: 400,
            ..MetricsSnapshot::default()
        };
        let mut acc = MetricsSnapshot::default();
        acc.merge_concurrent(&single);
        assert_eq!(acc, single);
        // Folding the same shard twice is NOT idempotent (items sum) —
        // pin the doubling so accidental re-merges can't hide.
        acc.merge_concurrent(&single);
        assert_eq!(acc.runs, 1);
        assert_eq!(acc.passes[0].items, 400);
        assert_eq!(acc.passes[0].wall_nanos, 42);
        assert_eq!(acc.peak_state_bytes, 96);
        assert_eq!(acc.items_processed, 800);
    }

    #[test]
    fn series_decimates_with_stride_doubling() {
        let mut s = SeriesBuilder::new();
        for i in 0..1000u64 {
            s.push(i, i * 2);
        }
        assert!(s.points.len() <= SERIES_MAX_POINTS);
        assert!(s.points.len() >= SERIES_MAX_POINTS / 2);
        // Points are uniformly strided and start at boundary 0.
        assert_eq!(s.points[0].items, 0);
        let stride = s.points[1].items - s.points[0].items;
        for w in s.points.windows(2) {
            assert_eq!(w[1].items - w[0].items, stride);
        }
    }

    #[test]
    fn json_is_one_versioned_line() {
        let snap = MetricsSnapshot {
            runs: 1,
            passes: vec![PassMetrics {
                pass: 0,
                wall_nanos: 5,
                items: 10,
                slices: 1,
                lists: 2,
                peak_bytes: 99,
                series: vec![SpacePoint {
                    items: 5,
                    bytes: 99,
                }],
            }],
            guard: Some(GuardStats {
                faults_detected: 1,
                items_repaired: 1,
                edges_quarantined: 0,
                validator_peak_bytes: 40,
            }),
            ..MetricsSnapshot::default()
        };
        let json = snap.to_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"schema\": 1, "));
        assert!(json.contains("\"peak_bytes\": 99"));
        assert!(json.contains("\"series\": [[5, 99]]"));
        assert!(json.contains("\"faults_detected\": 1"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn observer_tracks_pass_boundaries() {
        let sink = Metrics::enabled();
        let mut obs = RunObserver::for_sink(&sink);
        obs.begin_pass(0, 0);
        obs.boundary(10, 3);
        obs.slice();
        obs.boundary(30, 6);
        obs.end_pass(20, 6);
        obs.begin_pass(1, 6);
        obs.boundary(5, 9);
        obs.end_pass(5, 12);
        let snap = obs.into_snapshot(30, 12, None, None).unwrap();
        assert_eq!(snap.passes.len(), 2);
        assert_eq!(snap.passes[0].lists, 2);
        assert_eq!(snap.passes[0].slices, 1);
        assert_eq!(snap.passes[0].items, 6);
        assert_eq!(snap.passes[0].peak_bytes, 30);
        assert_eq!(snap.passes[1].items, 6);
        assert_eq!(snap.passes[1].peak_bytes, 5);
        assert_eq!(snap.peak_state_bytes, 30);
        sink.absorb(&snap);
        assert_eq!(sink.snapshot().unwrap(), snap);
    }

    #[test]
    fn disabled_observer_yields_none() {
        let mut obs = RunObserver::disabled();
        obs.begin_pass(0, 0);
        obs.boundary(10, 1);
        obs.end_pass(10, 2);
        assert_eq!(obs.into_snapshot(10, 2, None, None), None);
    }
}

//! Graph-sharded execution: partition a trace by list-owner vertex and run
//! a mergeable multi-pass algorithm shard-by-shard.
//!
//! The batched engine (`crate::batch`) shards *repetitions*; this module
//! shards the *graph*. A [`ShardPlan`] assigns every adjacency list (a
//! maximal same-source run of the trace) to `owner(v) = hash(v) mod N`
//! using the workspace's seeded [`crate::hashing::FastBuildHasher`], so
//! placement is a pure function of the vertex id — stable across runs,
//! processes, and machines. Shards borrow sub-ranges of the one shared
//! item slice; nothing is copied.
//!
//! [`run_sharded`] then executes each pass of a [`ShardAlgorithm`] once
//! per shard: the pass-boundary state is serialized through the
//! [`Checkpoint`] wire format, each shard restores a private replica,
//! drives only its own lists (with their *global* list positions
//! injected via [`ShardAlgorithm::begin_list_at`]), and the per-shard
//! partials are folded back in shard order with
//! [`ShardAlgorithm::merge_pass`]. An algorithm whose per-pass writes are
//! order-independent and start empty at every pass boundary (see the
//! trait docs) produces output **bit-identical** to driving the same
//! algorithm sequentially over the whole trace — at any shard count.
//!
//! The same per-pass building blocks ([`run_shard_pass_blob`],
//! [`merge_shard_states`]) are exposed for process-per-shard execution:
//! a parent writes the boundary blob to disk, spawns one worker process
//! per shard, and merges the partial blobs the workers write back — the
//! checkpoint container doubles as the shard-merge wire format, exactly
//! as the lower-bound protocol simulator treats algorithm state as
//! message-sized.

use std::time::Instant;

use adjstream_graph::VertexId;

use crate::checkpoint::Checkpoint;
use crate::hashing::FastBuildHasher;
use crate::item::StreamItem;
use crate::meter::PeakTracker;
use crate::obs::{Metrics, MetricsSnapshot, PassMetrics, METRICS_SCHEMA_VERSION};
use crate::runner::{find_run_end, MultiPassAlgorithm, RunError, RunReport};

/// One adjacency list assigned to a shard: a sub-range of the shared item
/// slice plus the list's global position (its 0-based index among all
/// lists of the trace, in arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRun {
    /// First item of the run (inclusive index into the trace items).
    pub start: usize,
    /// One past the last item of the run.
    pub end: usize,
    /// Global arrival index of this list within the pass.
    pub global_pos: u64,
}

/// Deterministic shard of `owner`: seeded hash of the vertex id mod the
/// shard count. Exposed so tests (and external partitioners) can assert
/// placement stability.
pub fn shard_of(owner: VertexId, shards: usize) -> usize {
    use std::hash::BuildHasher;
    debug_assert!(shards > 0);
    (FastBuildHasher::default().hash_one(owner.0) % shards as u64) as usize
}

/// A partition of one trace's adjacency lists across `N` shards. See
/// module docs.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per-shard run lists, each sorted by `global_pos`.
    shards: Vec<Vec<ShardRun>>,
    /// Total lists in the trace.
    total_runs: u64,
    /// Items covered (the trace length).
    items_len: usize,
}

impl ShardPlan {
    /// Partition `items` into `shards` shards (clamped to at least 1).
    ///
    /// One linear scan: run boundaries come from the same vectorized
    /// source-change detector the slice driver uses, so plan construction
    /// costs one branch per ~8 items. The payload is never copied — a
    /// [`ShardRun`] is just an index range into `items`.
    pub fn build(items: &[StreamItem], shards: usize) -> ShardPlan {
        let n = shards.max(1);
        let mut plan = ShardPlan {
            shards: vec![Vec::new(); n],
            total_runs: 0,
            items_len: items.len(),
        };
        let mut start = 0usize;
        while start < items.len() {
            let end = find_run_end(items, start);
            let owner = items[start].src;
            plan.shards[shard_of(owner, n)].push(ShardRun {
                start,
                end,
                global_pos: plan.total_runs,
            });
            plan.total_runs += 1;
            start = end;
        }
        plan
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The runs assigned to `shard`, in global arrival order.
    pub fn runs_for(&self, shard: usize) -> &[ShardRun] {
        &self.shards[shard]
    }

    /// Total adjacency lists in the planned trace.
    pub fn total_runs(&self) -> u64 {
        self.total_runs
    }

    /// Items covered by the plan (the planned trace's length).
    pub fn items_len(&self) -> usize {
        self.items_len
    }
}

/// Errors from sharded execution.
#[derive(Debug)]
pub enum ShardError {
    /// A shard's pass aborted with a run error.
    Run(RunError),
    /// Per-shard partial states could not be merged.
    Merge {
        /// Pass whose partials failed to merge.
        pass: usize,
        /// What was inconsistent.
        detail: String,
    },
    /// Serializing or restoring pass-boundary state failed.
    State(std::io::Error),
    /// A shard worker thread panicked.
    Panicked {
        /// Shard whose worker died.
        shard: usize,
    },
    /// A pass-boundary hook aborted the run (for example, deferred trace
    /// verification failed once the first pass had faulted the file in).
    Boundary {
        /// Pass after which the hook fired.
        pass: usize,
        /// Why the hook aborted.
        detail: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Run(e) => write!(f, "shard run failed: {e}"),
            ShardError::Merge { pass, detail } => {
                write!(f, "pass {pass} shard merge failed: {detail}")
            }
            ShardError::State(e) => write!(f, "shard state serialization failed: {e}"),
            ShardError::Panicked { shard } => write!(f, "shard {shard} worker panicked"),
            ShardError::Boundary { pass, detail } => {
                write!(f, "aborted at pass {pass} boundary: {detail}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<RunError> for ShardError {
    fn from(e: RunError) -> Self {
        ShardError::Run(e)
    }
}

/// A multi-pass algorithm whose per-pass state composes across graph
/// shards.
///
/// # Contract (what makes sharded == sequential, bit for bit)
///
/// * **Read-only base, empty writes.** At every pass boundary the state
///   splits into a frozen *base* (everything earlier passes computed) and
///   this pass's *write set*, which `begin_pass` must (re)initialize
///   empty. Each shard then folds only its own lists into the write set.
/// * **Commutative-monoid writes.** `merge_pass(other, pass)` folds
///   `other`'s pass-`pass` write set into `self`'s. Because every
///   adjacency list is processed by exactly one shard, a write set built
///   from sums, set unions keyed on content, or disjoint-key map unions
///   merges to exactly the sequential value regardless of how lists were
///   partitioned.
/// * **Global positions, not local ones.** Any order-sensitive quantity
///   must be keyed on the *global* list position delivered via
///   [`begin_list_at`](Self::begin_list_at) — never on a locally
///   maintained arrival counter, which would differ per shard.
pub trait ShardAlgorithm: MultiPassAlgorithm + Checkpoint + Send + Sized {
    /// A new adjacency list (owned by `owner`) starts at global arrival
    /// index `global_pos` within the pass. Sequential drivers call
    /// [`MultiPassAlgorithm::begin_list`] instead; implementations must
    /// treat the two identically apart from the position source.
    fn begin_list_at(&mut self, owner: VertexId, global_pos: u64);

    /// Fold `other`'s current-pass write state into `self`. Both sides
    /// must descend from the same pass-boundary base state; return a
    /// human-readable detail string if they demonstrably do not.
    fn merge_pass(&mut self, other: Self, pass: usize) -> Result<(), String>;
}

/// What one shard's pass produced, before merging.
struct ShardPassOutcome<A> {
    algo: A,
    peak: usize,
    processed: usize,
    lists: u64,
    slices: u64,
    wall_nanos: u64,
}

/// Per-shard stats from one pass, for process-mode callers that merge
/// metrics themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardPassStats {
    /// Peak state bytes this shard observed during the pass.
    pub peak_state_bytes: usize,
    /// Items this shard dispatched.
    pub items_processed: usize,
    /// Lists this shard announced.
    pub lists: u64,
    /// Slices this shard delivered.
    pub slices: u64,
}

/// Drive one shard's share of one pass: `begin_pass`, then each assigned
/// run between `begin_list_at`/`end_list` with peak sampling and abort
/// polling at every boundary (the same contract as
/// [`crate::runner::drive_pass_slice`]), then `end_pass`.
pub fn drive_shard_pass<A: ShardAlgorithm>(
    algo: &mut A,
    pass: usize,
    items: &[StreamItem],
    runs: &[ShardRun],
    peak: &mut PeakTracker,
    processed: &mut usize,
) -> Result<(u64, u64), RunError> {
    algo.begin_pass(pass);
    let (mut lists, mut slices) = (0u64, 0u64);
    for run in runs {
        let slice = &items[run.start..run.end];
        let owner = slice[0].src;
        algo.begin_list_at(owner, run.global_pos);
        algo.feed_slice(slice);
        *processed += slice.len();
        lists += 1;
        slices += 1;
        algo.end_list(owner);
        peak.observe(algo.space_bytes());
        if let Some(error) = algo.abort_error() {
            return Err(RunError::Invalid { pass, error });
        }
        if let Some(err) = algo.abort_run() {
            return Err(err);
        }
    }
    algo.end_pass(pass);
    peak.observe(algo.space_bytes());
    if let Some(error) = algo.abort_error() {
        return Err(RunError::Invalid { pass, error });
    }
    if let Some(err) = algo.abort_run() {
        return Err(err);
    }
    Ok((lists, slices))
}

/// One shard × one pass from a serialized pass-boundary state — the body
/// of a process-per-shard worker. Restores a replica from `base`, drives
/// the shard's runs, and returns the partial state re-serialized through
/// the same [`Checkpoint`] wire format plus the shard's stats.
pub fn run_shard_pass_blob<A: ShardAlgorithm>(
    base: &[u8],
    pass: usize,
    items: &[StreamItem],
    runs: &[ShardRun],
) -> Result<(Vec<u8>, ShardPassStats), ShardError> {
    let mut algo = A::restore(&mut &base[..]).map_err(ShardError::State)?;
    let mut peak = PeakTracker::new();
    let mut processed = 0usize;
    let (lists, slices) =
        drive_shard_pass(&mut algo, pass, items, runs, &mut peak, &mut processed)?;
    let mut blob = Vec::new();
    algo.save(&mut blob).map_err(ShardError::State)?;
    Ok((
        blob,
        ShardPassStats {
            peak_state_bytes: peak.peak(),
            items_processed: processed,
            lists,
            slices,
        },
    ))
}

/// Restore per-shard partial blobs (in shard order) and fold them into one
/// merged state — the parent half of process-per-shard execution.
pub fn merge_shard_states<A: ShardAlgorithm>(
    blobs: &[Vec<u8>],
    pass: usize,
) -> Result<A, ShardError> {
    let mut iter = blobs.iter();
    let first = iter.next().ok_or_else(|| ShardError::Merge {
        pass,
        detail: "no shard states to merge".into(),
    })?;
    let mut merged = A::restore(&mut first.as_slice()).map_err(ShardError::State)?;
    for blob in iter {
        let partial = A::restore(&mut blob.as_slice()).map_err(ShardError::State)?;
        merged
            .merge_pass(partial, pass)
            .map_err(|detail| ShardError::Merge { pass, detail })?;
    }
    Ok(merged)
}

/// Execute `algo` over `items` sharded per `plan`, one worker thread per
/// shard, merging at every pass boundary. Reports into `sink` with
/// shard-aware pass metrics: residency (`peak_bytes`) is the **max** over
/// shards, items/slices/lists are **sums**, and pass wall time is the
/// **max** over the concurrently running shards.
pub fn run_sharded<A: ShardAlgorithm>(
    algo: A,
    plan: &ShardPlan,
    items: &[StreamItem],
    sink: &Metrics,
) -> Result<(A::Output, RunReport), ShardError> {
    run_sharded_hooked(algo, plan, items, sink, |_pass| Ok(()))
}

/// [`run_sharded`] with an `after_pass` hook invoked at every merged pass
/// boundary (after pass `p`'s shards have joined and merged, before pass
/// `p+1` begins). Lets callers defer work that must not race the pass —
/// e.g. finishing a windowed checksum over an mmapped trace once pass 0
/// has faulted every page in. A hook error aborts the run.
pub fn run_sharded_hooked<A, F>(
    mut algo: A,
    plan: &ShardPlan,
    items: &[StreamItem],
    sink: &Metrics,
    mut after_pass: F,
) -> Result<(A::Output, RunReport), ShardError>
where
    A: ShardAlgorithm,
    F: FnMut(usize) -> Result<(), ShardError>,
{
    assert_eq!(
        plan.items_len(),
        items.len(),
        "plan was built over a different trace"
    );
    let passes = algo.passes();
    let collect = sink.is_enabled();
    let mut peak_overall = 0usize;
    let mut processed_total = 0usize;
    let mut pass_metrics: Vec<PassMetrics> = Vec::new();
    for pass in 0..passes {
        let mut blob = Vec::new();
        algo.save(&mut blob).map_err(ShardError::State)?;
        let results: Vec<Result<ShardPassOutcome<A>, ShardError>> = std::thread::scope(|scope| {
            let blob = &blob;
            let handles: Vec<_> = (0..plan.shard_count())
                .map(|shard| {
                    let runs = plan.runs_for(shard);
                    scope.spawn(move || -> Result<ShardPassOutcome<A>, ShardError> {
                        let t0 = Instant::now();
                        let mut replica = A::restore(&mut &blob[..]).map_err(ShardError::State)?;
                        let mut peak = PeakTracker::new();
                        let mut processed = 0usize;
                        let (lists, slices) = drive_shard_pass(
                            &mut replica,
                            pass,
                            items,
                            runs,
                            &mut peak,
                            &mut processed,
                        )?;
                        Ok(ShardPassOutcome {
                            algo: replica,
                            peak: peak.peak(),
                            processed,
                            lists,
                            slices,
                            wall_nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(shard, h)| h.join().unwrap_or(Err(ShardError::Panicked { shard })))
                .collect()
        });
        let mut merged: Option<A> = None;
        let mut pm = PassMetrics {
            pass: pass as u32,
            ..PassMetrics::default()
        };
        for res in results {
            let out = res?;
            peak_overall = peak_overall.max(out.peak);
            processed_total += out.processed;
            if collect {
                pm.wall_nanos = pm.wall_nanos.max(out.wall_nanos);
                pm.items += out.processed as u64;
                pm.slices += out.slices;
                pm.lists += out.lists;
                pm.peak_bytes = pm.peak_bytes.max(out.peak as u64);
            }
            merged = Some(match merged {
                None => out.algo,
                Some(mut m) => {
                    m.merge_pass(out.algo, pass)
                        .map_err(|detail| ShardError::Merge { pass, detail })?;
                    m
                }
            });
        }
        algo = merged.expect("shard_count() >= 1");
        if collect {
            pass_metrics.push(pm);
        }
        after_pass(pass)?;
    }
    let guard = algo.guard_stats();
    let counters = algo.obs_counters();
    let metrics = collect.then(|| MetricsSnapshot {
        schema: METRICS_SCHEMA_VERSION,
        runs: 1,
        passes: pass_metrics,
        counters: counters.unwrap_or_default(),
        guard,
        checkpoint: Default::default(),
        retry: Default::default(),
        peak_state_bytes: peak_overall as u64,
        items_processed: processed_total as u64,
    });
    if let Some(snap) = &metrics {
        sink.absorb(snap);
    }
    Ok((
        algo.finish(),
        RunReport {
            peak_state_bytes: peak_overall,
            items_processed: processed_total,
            passes,
            guard,
            metrics,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{read_u64, read_usize, write_u64, write_usize};
    use crate::meter::SpaceUsage;
    use crate::runner::run_slice_passes;
    use std::io::{Read, Write};

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    /// Synthetic promise-valid items: a cycle 0-1-...-(n-1)-0 with every
    /// list contiguous.
    fn cycle_items(n: u32) -> Vec<StreamItem> {
        let mut items = Vec::new();
        for s in 0..n {
            let prev = (s + n - 1) % n;
            let next = (s + 1) % n;
            items.push(StreamItem::new(v(s), v(prev)));
            items.push(StreamItem::new(v(s), v(next)));
        }
        items
    }

    /// A two-pass mergeable test algorithm: pass 0 accumulates
    /// `Σ owner·global_pos` and an item count; pass 1 accumulates the sum
    /// of destination ids. All writes are sums ⇒ exact shard merging.
    #[derive(Debug, Default, PartialEq)]
    struct PosSum {
        pass: usize,
        auto_pos: u64,
        cur_pos: u64,
        weighted: u64,
        items_p0: u64,
        dst_sum_p1: u64,
    }

    impl SpaceUsage for PosSum {
        fn space_bytes(&self) -> usize {
            48
        }
    }

    impl MultiPassAlgorithm for PosSum {
        type Output = (u64, u64, u64);

        fn passes(&self) -> usize {
            2
        }

        fn begin_pass(&mut self, pass: usize) {
            self.pass = pass;
            self.auto_pos = 0;
        }

        fn begin_list(&mut self, _owner: VertexId) {
            self.cur_pos = self.auto_pos;
            self.auto_pos += 1;
        }

        fn item(&mut self, src: VertexId, dst: VertexId) {
            if self.pass == 0 {
                self.items_p0 += 1;
                self.weighted += u64::from(src.0) * self.cur_pos;
            } else {
                self.dst_sum_p1 += u64::from(dst.0);
            }
        }

        fn finish(self) -> (u64, u64, u64) {
            (self.weighted, self.items_p0, self.dst_sum_p1)
        }
    }

    impl Checkpoint for PosSum {
        fn save(&self, w: &mut dyn Write) -> std::io::Result<()> {
            write_usize(w, self.pass)?;
            write_u64(w, self.weighted)?;
            write_u64(w, self.items_p0)?;
            write_u64(w, self.dst_sum_p1)
        }

        fn restore(r: &mut dyn Read) -> std::io::Result<Self> {
            Ok(PosSum {
                pass: read_usize(r)?,
                auto_pos: 0,
                cur_pos: 0,
                weighted: read_u64(r)?,
                items_p0: read_u64(r)?,
                dst_sum_p1: read_u64(r)?,
            })
        }
    }

    impl ShardAlgorithm for PosSum {
        fn begin_list_at(&mut self, _owner: VertexId, global_pos: u64) {
            self.cur_pos = global_pos;
            self.auto_pos = global_pos + 1;
        }

        fn merge_pass(&mut self, other: Self, pass: usize) -> Result<(), String> {
            match pass {
                0 => {
                    self.weighted += other.weighted;
                    self.items_p0 += other.items_p0;
                }
                _ => self.dst_sum_p1 += other.dst_sum_p1,
            }
            Ok(())
        }
    }

    #[test]
    fn plan_covers_every_item_exactly_once_and_is_stable() {
        let items = cycle_items(37);
        for shards in [1usize, 2, 4, 8] {
            let plan = ShardPlan::build(&items, shards);
            assert_eq!(plan.shard_count(), shards);
            assert_eq!(plan.total_runs(), 37);
            let mut covered = vec![false; items.len()];
            let mut seen_pos = std::collections::BTreeSet::new();
            for s in 0..shards {
                for run in plan.runs_for(s) {
                    assert!(run.start < run.end);
                    // A run is one whole list owned by one vertex, placed on
                    // the shard the seeded hash names.
                    let owner = items[run.start].src;
                    assert_eq!(shard_of(owner, shards), s);
                    for it in &items[run.start..run.end] {
                        assert_eq!(it.src, owner);
                    }
                    for (i, c) in covered.iter_mut().enumerate().take(run.end).skip(run.start) {
                        assert!(!*c, "item {i} covered twice");
                        *c = true;
                    }
                    assert!(seen_pos.insert(run.global_pos));
                }
            }
            assert!(covered.iter().all(|&c| c), "every item covered");
            assert_eq!(seen_pos.len() as u64, plan.total_runs());
            // Rebuilding the plan reproduces the placement exactly.
            let again = ShardPlan::build(&items, shards);
            for s in 0..shards {
                assert_eq!(plan.runs_for(s), again.runs_for(s));
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let items = cycle_items(5);
        let plan = ShardPlan::build(&items, 0);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.runs_for(0).len(), 5);
    }

    #[test]
    fn sharded_run_matches_sequential_at_every_shard_count() {
        let items = cycle_items(101);
        let (want, want_report) =
            run_slice_passes(PosSum::default(), |_pass| &items[..]).expect("sequential");
        for shards in [1usize, 2, 3, 4, 8, 16] {
            let plan = ShardPlan::build(&items, shards);
            let (got, report) = run_sharded(PosSum::default(), &plan, &items, &Metrics::disabled())
                .expect("sharded");
            assert_eq!(got, want, "shards={shards}");
            assert_eq!(report.items_processed, want_report.items_processed);
            assert_eq!(report.passes, 2);
        }
    }

    #[test]
    fn process_mode_helpers_reproduce_thread_mode() {
        let items = cycle_items(53);
        let plan = ShardPlan::build(&items, 4);
        let (want, _) =
            run_sharded(PosSum::default(), &plan, &items, &Metrics::disabled()).expect("threads");

        // Drive the same execution through the blob-level helpers, as the
        // process-per-shard parent would.
        let mut algo = PosSum::default();
        for pass in 0..2 {
            let mut base = Vec::new();
            algo.save(&mut base).expect("save");
            let blobs: Vec<Vec<u8>> = (0..plan.shard_count())
                .map(|s| {
                    run_shard_pass_blob::<PosSum>(&base, pass, &items, plan.runs_for(s))
                        .expect("shard pass")
                        .0
                })
                .collect();
            algo = merge_shard_states::<PosSum>(&blobs, pass).expect("merge");
        }
        assert_eq!(algo.finish(), want);
    }

    #[test]
    fn empty_trace_runs_clean() {
        let items: Vec<StreamItem> = Vec::new();
        let plan = ShardPlan::build(&items, 4);
        let (out, report) =
            run_sharded(PosSum::default(), &plan, &items, &Metrics::disabled()).expect("empty");
        assert_eq!(out, (0, 0, 0));
        assert_eq!(report.items_processed, 0);
    }

    #[test]
    fn sharded_metrics_are_shard_aware() {
        let items = cycle_items(40);
        let plan = ShardPlan::build(&items, 4);
        let sink = Metrics::enabled();
        let (_, report) = run_sharded(PosSum::default(), &plan, &items, &sink).expect("run");
        let snap = report.metrics.expect("metrics collected");
        assert_eq!(snap.passes.len(), 2);
        for p in &snap.passes {
            // Items/lists are summed across shards: the whole trace.
            assert_eq!(p.items, items.len() as u64);
            assert_eq!(p.lists, 40);
            // Residency is a max over shards, not a sum of replicas.
            assert_eq!(p.peak_bytes, 48);
        }
        assert_eq!(snap.items_processed, items.len() as u64 * 2);
        assert_eq!(snap.peak_state_bytes, 48);
    }
}

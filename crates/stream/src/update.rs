//! Dynamic update streams: timestamped edge insertions and deletions.
//!
//! Every other driver in this workspace replays one *static* trace; this
//! module is the substrate for workloads where the graph changes while the
//! estimator runs (ROADMAP item 1). An [`UpdateStream`] is a timestamp-
//! ordered sequence of [`UpdateEvent`]s — `Insert {u, v}` / `Delete {u, v}`
//! at time `ts` — replayable in *batches*: the batched update driver
//! ([`run_update_batches`]) feeds each batch to an [`UpdateAlgorithm`] and
//! records the per-batch estimate and its delta, which is what the CLI
//! `update-stream` mode and the amortized-cost bench report.
//!
//! The on-disk text format is one event per line:
//!
//! ```text
//! + 0 1 0
//! + 1 2 1
//! - 0 1 2
//! ```
//!
//! (`op src dst ts`, timestamps non-decreasing). The [`churn`] generator
//! produces the standard dynamic workload: a *load* phase inserting every
//! edge of a base graph in seeded random order, then a *churn* tail that
//! swings over the edge set, deleting live edges and re-inserting dead ones
//! — deletions always target a currently-live edge, so generated streams
//! are valid under graph semantics.

use std::fmt;
use std::io::{self, Write};

use adjstream_graph::{EdgeKey, Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::meter::{PeakTracker, SpaceUsage};

/// What an update does to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// The edge becomes live.
    Insert,
    /// The edge stops being live.
    Delete,
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpdateOp::Insert => "+",
            UpdateOp::Delete => "-",
        })
    }
}

/// One timestamped edge update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpdateEvent {
    /// Insert or delete.
    pub op: UpdateOp,
    /// The undirected edge being updated.
    pub edge: EdgeKey,
    /// Event timestamp; an [`UpdateStream`] keeps these non-decreasing.
    pub ts: u64,
}

impl UpdateEvent {
    /// An insertion of `{u, v}` at time `ts`.
    pub fn insert(u: u32, v: u32, ts: u64) -> Self {
        UpdateEvent {
            op: UpdateOp::Insert,
            edge: EdgeKey::new(VertexId(u), VertexId(v)),
            ts,
        }
    }

    /// A deletion of `{u, v}` at time `ts`.
    pub fn delete(u: u32, v: u32, ts: u64) -> Self {
        UpdateEvent {
            op: UpdateOp::Delete,
            edge: EdgeKey::new(VertexId(u), VertexId(v)),
            ts,
        }
    }
}

/// Why an update-trace text file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateParseError {
    /// A line did not match `op src dst ts`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was found there.
        found: String,
    },
    /// An event's endpoints were equal (self-loops are not representable).
    SelfLoop {
        /// 1-based line number.
        line: usize,
        /// The repeated endpoint.
        vertex: u32,
    },
    /// A timestamp went backwards.
    TimestampRegression {
        /// 1-based line number.
        line: usize,
        /// The previous event's timestamp.
        previous: u64,
        /// The offending timestamp.
        found: u64,
    },
}

impl fmt::Display for UpdateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateParseError::Malformed { line, found } => {
                write!(f, "line {line}: expected `+|- SRC DST TS`, got {found:?}")
            }
            UpdateParseError::SelfLoop { line, vertex } => {
                write!(f, "line {line}: self-loop on vertex {vertex}")
            }
            UpdateParseError::TimestampRegression {
                line,
                previous,
                found,
            } => write!(
                f,
                "line {line}: timestamp {found} regresses below {previous}"
            ),
        }
    }
}

impl std::error::Error for UpdateParseError {}

/// A replayable, timestamp-ordered sequence of edge updates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStream {
    events: Vec<UpdateEvent>,
}

impl UpdateStream {
    /// Wrap a timestamp-ordered event sequence.
    ///
    /// # Panics
    ///
    /// Panics if timestamps decrease — batching and windowing both rely on
    /// monotone time.
    pub fn new(events: Vec<UpdateEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].ts <= w[1].ts),
            "update events must have non-decreasing timestamps"
        );
        UpdateStream { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in timestamp order.
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// `(first, last)` timestamps, `None` when empty.
    pub fn ts_range(&self) -> Option<(u64, u64)> {
        Some((self.events.first()?.ts, self.events.last()?.ts))
    }

    /// `(inserts, deletes)` totals.
    pub fn op_counts(&self) -> (usize, usize) {
        let ins = self
            .events
            .iter()
            .filter(|e| e.op == UpdateOp::Insert)
            .count();
        (ins, self.events.len() - ins)
    }

    /// Iterate the stream in contiguous batches of at most `size` events
    /// (the last batch may be short). `size` is clamped to at least 1.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = &[UpdateEvent]> {
        self.events.chunks(size.max(1))
    }

    /// The events with `ts` in the half-open interval `[start, end)` —
    /// a binary search on the sorted timestamps, used by the windowed
    /// estimator to slice out one window without scanning the whole trace.
    pub fn slice_ts(&self, start: u64, end: u64) -> &[UpdateEvent] {
        if start >= end {
            return &[];
        }
        let lo = self.events.partition_point(|e| e.ts < start);
        let hi = self.events.partition_point(|e| e.ts < end);
        &self.events[lo..hi]
    }

    /// The edge set live after replaying every event: inserts add, deletes
    /// remove (a delete with no live edge is a no-op). Useful as the ground
    /// truth endpoint of a dynamic run.
    pub fn final_edges(&self) -> Vec<EdgeKey> {
        let mut live = std::collections::BTreeSet::new();
        for ev in &self.events {
            match ev.op {
                UpdateOp::Insert => {
                    live.insert(ev.edge.pack());
                }
                UpdateOp::Delete => {
                    live.remove(&ev.edge.pack());
                }
            }
        }
        live.into_iter().map(EdgeKey::unpack).collect()
    }

    /// Parse the one-event-per-line text format (see the module docs).
    /// Blank lines and lines starting with `#` are skipped.
    pub fn parse_text(text: &str) -> Result<UpdateStream, UpdateParseError> {
        let mut events = Vec::new();
        let mut prev_ts = 0u64;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let malformed = || UpdateParseError::Malformed {
                line,
                found: raw.to_string(),
            };
            let mut parts = trimmed.split_ascii_whitespace();
            let op = match parts.next() {
                Some("+") => UpdateOp::Insert,
                Some("-") => UpdateOp::Delete,
                _ => return Err(malformed()),
            };
            let mut num = || -> Result<u64, UpdateParseError> {
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(malformed)
            };
            let (src, dst, ts) = (num()?, num()?, num()?);
            if parts.next().is_some() || src > u64::from(u32::MAX) || dst > u64::from(u32::MAX) {
                return Err(malformed());
            }
            if src == dst {
                return Err(UpdateParseError::SelfLoop {
                    line,
                    vertex: src as u32,
                });
            }
            if !events.is_empty() && ts < prev_ts {
                return Err(UpdateParseError::TimestampRegression {
                    line,
                    previous: prev_ts,
                    found: ts,
                });
            }
            prev_ts = ts;
            events.push(UpdateEvent {
                op,
                edge: EdgeKey::new(VertexId(src as u32), VertexId(dst as u32)),
                ts,
            });
        }
        Ok(UpdateStream { events })
    }

    /// Write the text format this type parses.
    pub fn write_text(&self, w: &mut dyn Write) -> io::Result<()> {
        let mut w = io::BufWriter::new(w);
        for ev in &self.events {
            writeln!(
                w,
                "{} {} {} {}",
                ev.op,
                ev.edge.lo().0,
                ev.edge.hi().0,
                ev.ts
            )?;
        }
        w.flush()
    }
}

/// Configuration for the [`churn`] workload generator.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Churn events after the load phase.
    pub churn_events: usize,
    /// Fraction of churn events that are deletions (the rest re-insert
    /// previously deleted edges). Clamped to `[0, 1]`.
    pub delete_fraction: f64,
    /// Seed for the load order and the churn schedule.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            churn_events: 0,
            delete_fraction: 0.5,
            seed: 1,
        }
    }
}

/// Generate the standard dynamic workload over `graph`'s edge set: a load
/// phase inserting every edge in seeded random order (timestamps `0..m`),
/// then `churn_events` further events that delete a live edge or re-insert
/// a dead one. Deletions always target a live edge and insertions a dead
/// one, so the stream is valid and every prefix describes a subgraph of
/// `graph`.
pub fn churn(graph: &Graph, cfg: &ChurnConfig) -> UpdateStream {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut live = graph.edge_vec();
    live.shuffle(&mut rng);
    let mut events: Vec<UpdateEvent> = live
        .iter()
        .enumerate()
        .map(|(i, &edge)| UpdateEvent {
            op: UpdateOp::Insert,
            edge,
            ts: i as u64,
        })
        .collect();
    let delete_fraction = cfg.delete_fraction.clamp(0.0, 1.0);
    let mut dead: Vec<EdgeKey> = Vec::new();
    let load_len = events.len() as u64;
    for ts in load_len..load_len + cfg.churn_events as u64 {
        let delete = !live.is_empty() && (dead.is_empty() || rng.random::<f64>() < delete_fraction);
        if delete {
            let i = rng.random_range(0..live.len());
            let edge = live.swap_remove(i);
            dead.push(edge);
            events.push(UpdateEvent {
                op: UpdateOp::Delete,
                edge,
                ts,
            });
        } else if !dead.is_empty() {
            let i = rng.random_range(0..dead.len());
            let edge = dead.swap_remove(i);
            live.push(edge);
            events.push(UpdateEvent {
                op: UpdateOp::Insert,
                edge,
                ts,
            });
        }
    }
    UpdateStream { events }
}

/// An algorithm that maintains an estimate under edge insertions *and*
/// deletions — the fully-dynamic counterpart of
/// [`crate::arbitrary::EdgeStreamAlgorithm`]. Unlike the one-shot stream
/// traits, the output is queryable at any time: the batched driver reads
/// [`UpdateAlgorithm::estimate`] at every batch boundary.
pub trait UpdateAlgorithm: SpaceUsage {
    /// Process the insertion of `e` at time `ts`.
    fn insert(&mut self, e: EdgeKey, ts: u64);

    /// Process the deletion of `e` at time `ts`.
    fn delete(&mut self, e: EdgeKey, ts: u64);

    /// Current estimate of the tracked quantity on the live graph.
    fn estimate(&self) -> f64;

    /// Dispatch one event.
    #[inline]
    fn apply(&mut self, ev: &UpdateEvent) {
        match ev.op {
            UpdateOp::Insert => self.insert(ev.edge, ev.ts),
            UpdateOp::Delete => self.delete(ev.edge, ev.ts),
        }
    }
}

/// One batch boundary of a [`run_update_batches`] drive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateBatchReport {
    /// 0-based batch index.
    pub batch: usize,
    /// Events in this batch.
    pub events: usize,
    /// Insertions in this batch.
    pub inserts: usize,
    /// Deletions in this batch.
    pub deletes: usize,
    /// Timestamp of the batch's last event.
    pub ts_end: u64,
    /// The algorithm's estimate after the batch was applied.
    pub estimate: f64,
    /// `estimate` minus the previous boundary's estimate (the first batch
    /// is measured against the algorithm's estimate before any event).
    pub delta: f64,
}

/// Summary of a whole batched update drive.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRunReport {
    /// One entry per batch, in order.
    pub batches: Vec<UpdateBatchReport>,
    /// Total events applied.
    pub events: usize,
    /// High-water mark of the algorithm's state, polled at batch
    /// boundaries (deltas within a batch are not observed — batches are
    /// the driver's atomic unit).
    pub peak_state_bytes: usize,
}

/// Drive `algo` over `stream` in contiguous batches of `batch_size`
/// events, querying the estimate at every batch boundary. The algorithm is
/// taken by `&mut` so callers can keep interrogating (or cross-checking)
/// it after the drive.
pub fn run_update_batches<A: UpdateAlgorithm>(
    stream: &UpdateStream,
    batch_size: usize,
    algo: &mut A,
) -> UpdateRunReport {
    let mut peak = PeakTracker::new();
    peak.observe(algo.space_bytes());
    let mut previous = algo.estimate();
    let mut batches = Vec::new();
    for (batch, events) in stream.batches(batch_size).enumerate() {
        let mut inserts = 0usize;
        for ev in events {
            if ev.op == UpdateOp::Insert {
                inserts += 1;
            }
            algo.apply(ev);
        }
        peak.observe(algo.space_bytes());
        let estimate = algo.estimate();
        batches.push(UpdateBatchReport {
            batch,
            events: events.len(),
            inserts,
            deletes: events.len() - inserts,
            ts_end: events.last().expect("chunks are non-empty").ts,
            estimate,
            delta: estimate - previous,
        });
        previous = estimate;
    }
    UpdateRunReport {
        batches,
        events: stream.len(),
        peak_state_bytes: peak.peak(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;

    /// Maintains the exact live-edge count — the simplest possible
    /// [`UpdateAlgorithm`], used to pin the driver's bookkeeping.
    #[derive(Default)]
    struct EdgeCounter {
        live: std::collections::HashSet<u64>,
    }

    impl SpaceUsage for EdgeCounter {
        fn space_bytes(&self) -> usize {
            self.live.len() * 8
        }
    }

    impl UpdateAlgorithm for EdgeCounter {
        fn insert(&mut self, e: EdgeKey, _ts: u64) {
            self.live.insert(e.pack());
        }
        fn delete(&mut self, e: EdgeKey, _ts: u64) {
            self.live.remove(&e.pack());
        }
        fn estimate(&self) -> f64 {
            self.live.len() as f64
        }
    }

    #[test]
    fn text_round_trip_and_rejection() {
        let s = UpdateStream::new(vec![
            UpdateEvent::insert(0, 1, 0),
            UpdateEvent::insert(1, 2, 1),
            UpdateEvent::delete(0, 1, 5),
        ]);
        let mut buf = Vec::new();
        s.write_text(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(UpdateStream::parse_text(&text).unwrap(), s);
        // Comments and blank lines are skipped.
        let commented = format!("# churn trace\n\n{text}");
        assert_eq!(UpdateStream::parse_text(&commented).unwrap(), s);
        // Malformed op, arity, self-loop, and time regression all reject.
        assert!(matches!(
            UpdateStream::parse_text("* 0 1 0"),
            Err(UpdateParseError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            UpdateStream::parse_text("+ 0 1"),
            Err(UpdateParseError::Malformed { .. })
        ));
        assert!(matches!(
            UpdateStream::parse_text("+ 0 1 0 9"),
            Err(UpdateParseError::Malformed { .. })
        ));
        assert!(matches!(
            UpdateStream::parse_text("+ 3 3 0"),
            Err(UpdateParseError::SelfLoop { vertex: 3, .. })
        ));
        assert!(matches!(
            UpdateStream::parse_text("+ 0 1 5\n+ 1 2 4"),
            Err(UpdateParseError::TimestampRegression {
                line: 2,
                previous: 5,
                found: 4
            })
        ));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn constructor_rejects_time_regression() {
        UpdateStream::new(vec![
            UpdateEvent::insert(0, 1, 5),
            UpdateEvent::insert(1, 2, 4),
        ]);
    }

    #[test]
    fn batches_and_ts_slices() {
        let s = UpdateStream::new(vec![
            UpdateEvent::insert(0, 1, 0),
            UpdateEvent::insert(1, 2, 1),
            UpdateEvent::insert(2, 3, 4),
            UpdateEvent::delete(1, 2, 4),
            UpdateEvent::insert(0, 2, 9),
        ]);
        let sizes: Vec<usize> = s.batches(2).map(<[UpdateEvent]>::len).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        assert_eq!(s.ts_range(), Some((0, 9)));
        assert_eq!(s.op_counts(), (4, 1));
        assert_eq!(s.slice_ts(0, 2).len(), 2);
        assert_eq!(s.slice_ts(4, 5).len(), 2);
        assert_eq!(s.slice_ts(5, 9).len(), 0);
        assert_eq!(s.slice_ts(9, 9).len(), 0);
        assert_eq!(s.slice_ts(0, 10).len(), 5);
        // Final live set: {0,1}, {2,3}, {0,2}.
        assert_eq!(s.final_edges().len(), 3);
    }

    #[test]
    fn churn_streams_are_valid_and_replayable() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::gnm(40, 120, &mut rng);
        let cfg = ChurnConfig {
            churn_events: 500,
            delete_fraction: 0.6,
            seed: 3,
        };
        let s = churn(&g, &cfg);
        assert_eq!(s.len(), g.edge_count() + 500);
        // Deterministic for a fixed seed, different across seeds.
        assert_eq!(churn(&g, &cfg), s);
        assert_ne!(churn(&g, &ChurnConfig { seed: 4, ..cfg }), s);
        // Every delete targets a live edge; every insert targets a dead
        // one; every edge belongs to the base graph.
        let mut live = std::collections::HashSet::new();
        let all: std::collections::HashSet<u64> = g.edges().map(EdgeKey::pack).collect();
        for ev in s.events() {
            assert!(all.contains(&ev.edge.pack()), "edge from the base graph");
            match ev.op {
                UpdateOp::Insert => assert!(live.insert(ev.edge.pack()), "insert of dead edge"),
                UpdateOp::Delete => assert!(live.remove(&ev.edge.pack()), "delete of live edge"),
            }
        }
        assert_eq!(live.len(), s.final_edges().len());
    }

    #[test]
    fn driver_reports_batch_deltas_and_peak() {
        let s = UpdateStream::new(vec![
            UpdateEvent::insert(0, 1, 0),
            UpdateEvent::insert(1, 2, 1),
            UpdateEvent::insert(2, 3, 2),
            UpdateEvent::delete(1, 2, 3),
            UpdateEvent::delete(0, 1, 4),
        ]);
        let mut algo = EdgeCounter::default();
        let report = run_update_batches(&s, 2, &mut algo);
        assert_eq!(report.events, 5);
        assert_eq!(report.batches.len(), 3);
        let estimates: Vec<f64> = report.batches.iter().map(|b| b.estimate).collect();
        assert_eq!(estimates, vec![2.0, 2.0, 1.0]);
        let deltas: Vec<f64> = report.batches.iter().map(|b| b.delta).collect();
        assert_eq!(deltas, vec![2.0, 0.0, -1.0]);
        // Deltas telescope to the final estimate.
        assert_eq!(deltas.iter().sum::<f64>(), algo.estimate());
        assert_eq!(report.batches[2].ts_end, 4);
        assert_eq!(
            (report.batches[1].inserts, report.batches[1].deletes),
            (1, 1)
        );
        // Peak is polled at batch boundaries only, where at most two edges
        // were ever live (the 3-edge moment is mid-batch).
        assert_eq!(report.peak_state_bytes, 16);
    }
}

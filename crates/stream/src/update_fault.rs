//! Deterministic, seed-driven fault injection for update streams.
//!
//! The dynamic counterpart of [`crate::fault`]: an [`UpdateFaultPlan`] is a
//! seeded, composable recipe of update-semantics violations — deletions of
//! dead edges, duplicate insertions, timestamp regressions, flipped ops,
//! corrupted endpoints — applied to a *valid* event sequence. Every
//! injection is recorded with the event position where a guard must detect
//! it and the number of detections it is expected to cause, so tests can
//! reconcile [`UpdateGuardStats`](crate::update_guard::UpdateGuardStats)
//! against the plan exactly.
//!
//! Faults are applied in a fixed canonical order (event-inserting and
//! value-rewriting kinds first, then the order/timestamp kinds), and each
//! injection is *self-contained*: targets are chosen so one fault's
//! expected-detection arithmetic is not altered by another (e.g. an op flip
//! only targets the last event of its edge, so no downstream event of that
//! edge turns invalid as a side effect). A fault whose preconditions cannot
//! be met is recorded in [`CorruptedUpdateStream::skipped`] rather than
//! injected partially.

use std::collections::{HashMap, HashSet};

use adjstream_graph::{EdgeKey, VertexId};

use crate::hashing::SplitMix64;
use crate::update::{UpdateEvent, UpdateOp, UpdateStream};

/// The classes of update-semantics violation an [`UpdateFaultPlan`] can
/// inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateFaultKind {
    /// Re-delete an edge right after a valid deletion → one `DeadDelete`.
    DeleteDead,
    /// Repeat an insertion right after the original → one
    /// `DuplicateInsert`.
    DuplicateInsert,
    /// Delete an edge no event ever inserted → one `DeadDelete`.
    OrphanDelete,
    /// Flip the op of its edge's last event: the flipped insert deletes a
    /// dead edge, the flipped delete re-inserts a live one → one detection
    /// either way.
    OpFlip,
    /// Rewrite one endpoint of its edge's last deletion to a fresh vertex
    /// → one `DeadDelete` (the rewritten edge was never live).
    CorruptEndpoint,
    /// Swap two adjacent events with strictly increasing timestamps (and
    /// distinct edges) → one `TimestampRegression` at the later position.
    SwapAdjacent,
    /// Rewrite one event's timestamp below its predecessor's → one
    /// `TimestampRegression`.
    TimestampRegression,
}

impl std::fmt::Display for UpdateFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UpdateFaultKind::DeleteDead => "delete-dead",
            UpdateFaultKind::DuplicateInsert => "duplicate-insert",
            UpdateFaultKind::OrphanDelete => "orphan-delete",
            UpdateFaultKind::OpFlip => "op-flip",
            UpdateFaultKind::CorruptEndpoint => "corrupt-endpoint",
            UpdateFaultKind::SwapAdjacent => "swap-adjacent",
            UpdateFaultKind::TimestampRegression => "ts-regression",
        };
        f.write_str(s)
    }
}

impl UpdateFaultKind {
    /// Parse the CLI spelling produced by [`Display`](std::fmt::Display).
    pub fn parse(s: &str) -> Option<UpdateFaultKind> {
        Some(match s {
            "delete-dead" => UpdateFaultKind::DeleteDead,
            "duplicate-insert" => UpdateFaultKind::DuplicateInsert,
            "orphan-delete" => UpdateFaultKind::OrphanDelete,
            "op-flip" => UpdateFaultKind::OpFlip,
            "corrupt-endpoint" => UpdateFaultKind::CorruptEndpoint,
            "swap-adjacent" => UpdateFaultKind::SwapAdjacent,
            "ts-regression" => UpdateFaultKind::TimestampRegression,
            _ => return None,
        })
    }

    /// Every fault kind, in canonical application order: kinds that insert
    /// or rewrite events first (positions still shift), then the
    /// order/timestamp kinds over the settled layout.
    pub const ALL: [UpdateFaultKind; 7] = [
        UpdateFaultKind::DeleteDead,
        UpdateFaultKind::DuplicateInsert,
        UpdateFaultKind::OrphanDelete,
        UpdateFaultKind::OpFlip,
        UpdateFaultKind::CorruptEndpoint,
        UpdateFaultKind::SwapAdjacent,
        UpdateFaultKind::TimestampRegression,
    ];
}

/// A seeded, composable recipe of update-stream violations.
#[derive(Debug, Clone)]
pub struct UpdateFaultPlan {
    seed: u64,
    counts: HashMap<UpdateFaultKind, usize>,
}

impl UpdateFaultPlan {
    /// An empty plan drawing all randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        UpdateFaultPlan {
            seed,
            counts: HashMap::new(),
        }
    }

    /// Request `count` more injections of `kind` (builder style).
    pub fn with(mut self, kind: UpdateFaultKind, count: usize) -> Self {
        *self.counts.entry(kind).or_insert(0) += count;
        self
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of injections requested for `kind`.
    pub fn count(&self, kind: UpdateFaultKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total injections requested.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Corrupt a valid update stream according to the plan.
    pub fn apply(&self, stream: &UpdateStream) -> CorruptedUpdateStream {
        UpdateInjector::new(self, stream.events().to_vec()).run()
    }
}

/// One successfully injected update fault.
#[derive(Debug, Clone)]
pub struct InjectedUpdateFault {
    /// What was injected.
    pub kind: UpdateFaultKind,
    /// 0-based event position where a guard detects the violation (final
    /// coordinates, after all injections of the plan).
    pub position: usize,
    /// Detections a guard is expected to raise for this fault (always 1 —
    /// targets are chosen so faults stay self-contained — but kept explicit
    /// so the reconciliation arithmetic mirrors [`crate::fault`]).
    pub expected_detections: usize,
    /// Human-readable account (edges/positions involved).
    pub description: String,
}

/// A corrupted event sequence plus the ledger of what was done to it.
///
/// Unlike [`UpdateStream`], the events here may violate every invariant the
/// stream type enforces — that is the point — so they are exposed as a raw
/// slice for [`crate::update_guard::GuardedUpdate`] to vet.
#[derive(Debug, Clone)]
pub struct CorruptedUpdateStream {
    events: Vec<UpdateEvent>,
    injected: Vec<InjectedUpdateFault>,
    skipped: Vec<UpdateFaultKind>,
}

impl CorruptedUpdateStream {
    /// The corrupted event sequence.
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// Ledger of injected faults.
    pub fn injected(&self) -> &[InjectedUpdateFault] {
        &self.injected
    }

    /// Requested faults whose preconditions the stream could not meet.
    pub fn skipped(&self) -> &[UpdateFaultKind] {
        &self.skipped
    }

    /// Sum of per-fault expected detections.
    pub fn expected_detections(&self) -> usize {
        self.injected.iter().map(|f| f.expected_detections).sum()
    }

    /// Position of the earliest injected violation, `None` when the plan
    /// injected nothing — where a strict guard must stop.
    pub fn first_position(&self) -> Option<usize> {
        self.injected.iter().map(|f| f.position).min()
    }
}

/// Working state of one `UpdateFaultPlan::apply` call.
struct UpdateInjector<'p> {
    plan: &'p UpdateFaultPlan,
    rng: SplitMix64,
    events: Vec<UpdateEvent>,
    /// Edges already consumed by a fault; injections never share an edge,
    /// which is what keeps each fault's detection count independent.
    used_edges: HashSet<u64>,
    /// Positions (final coordinates) whose timestamps a fault relies on —
    /// the order/timestamp kinds keep a one-event buffer around each.
    ts_touched: HashSet<usize>,
    fresh_id: u32,
    injected: Vec<InjectedUpdateFault>,
    skipped: Vec<UpdateFaultKind>,
}

impl<'p> UpdateInjector<'p> {
    fn new(plan: &'p UpdateFaultPlan, events: Vec<UpdateEvent>) -> Self {
        let fresh_id = events
            .iter()
            .map(|e| e.edge.hi().0)
            .max()
            .map_or(0, |m| m.saturating_add(1));
        UpdateInjector {
            plan,
            rng: SplitMix64::new(plan.seed),
            events,
            used_edges: HashSet::new(),
            ts_touched: HashSet::new(),
            fresh_id,
            injected: Vec::new(),
            skipped: Vec::new(),
        }
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.rng.next_u64() % n as u64) as usize
    }

    fn pick<T: Copy>(&mut self, candidates: &[T]) -> Option<T> {
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.below(candidates.len())])
        }
    }

    /// 0-based index of the last event touching each edge.
    fn last_occurrence(&self) -> HashMap<u64, usize> {
        let mut last = HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            last.insert(ev.edge.pack(), i);
        }
        last
    }

    fn fresh_vertex(&mut self) -> VertexId {
        let v = VertexId(self.fresh_id);
        self.fresh_id = self.fresh_id.saturating_add(1);
        v
    }

    fn record(&mut self, kind: UpdateFaultKind, position: usize, description: String) {
        self.injected.push(InjectedUpdateFault {
            kind,
            position,
            expected_detections: 1,
            description,
        });
    }

    /// Insert `ev` at `at`, shifting previously recorded positions.
    fn insert_event(&mut self, at: usize, ev: UpdateEvent) {
        self.events.insert(at, ev);
        for f in &mut self.injected {
            if f.position >= at {
                f.position += 1;
            }
        }
    }

    fn run(mut self) -> CorruptedUpdateStream {
        for kind in UpdateFaultKind::ALL {
            for _ in 0..self.plan.count(kind) {
                let ok = match kind {
                    UpdateFaultKind::DeleteDead => self.delete_dead(),
                    UpdateFaultKind::DuplicateInsert => self.duplicate_insert(),
                    UpdateFaultKind::OrphanDelete => self.orphan_delete(),
                    UpdateFaultKind::OpFlip => self.op_flip(),
                    UpdateFaultKind::CorruptEndpoint => self.corrupt_endpoint(),
                    UpdateFaultKind::SwapAdjacent => self.swap_adjacent(),
                    UpdateFaultKind::TimestampRegression => self.ts_regression(),
                };
                if !ok {
                    self.skipped.push(kind);
                }
            }
        }
        CorruptedUpdateStream {
            events: self.events,
            injected: self.injected,
            skipped: self.skipped,
        }
    }

    /// Duplicate a valid deletion: the copy targets an edge that just died.
    fn delete_dead(&mut self) -> bool {
        let candidates: Vec<usize> = (0..self.events.len())
            .filter(|&i| {
                self.events[i].op == UpdateOp::Delete
                    && !self.used_edges.contains(&self.events[i].edge.pack())
            })
            .collect();
        let Some(i) = self.pick(&candidates) else {
            return false;
        };
        let original = self.events[i];
        self.used_edges.insert(original.edge.pack());
        self.insert_event(
            i + 1,
            UpdateEvent {
                op: UpdateOp::Delete,
                edge: original.edge,
                ts: original.ts,
            },
        );
        self.record(
            UpdateFaultKind::DeleteDead,
            i + 1,
            format!("re-deleted dead edge {} at event {}", original.edge, i + 1),
        );
        true
    }

    /// Duplicate a valid insertion: the copy targets an edge already live.
    fn duplicate_insert(&mut self) -> bool {
        let candidates: Vec<usize> = (0..self.events.len())
            .filter(|&i| {
                self.events[i].op == UpdateOp::Insert
                    && !self.used_edges.contains(&self.events[i].edge.pack())
            })
            .collect();
        let Some(i) = self.pick(&candidates) else {
            return false;
        };
        let original = self.events[i];
        self.used_edges.insert(original.edge.pack());
        self.insert_event(
            i + 1,
            UpdateEvent {
                op: UpdateOp::Insert,
                edge: original.edge,
                ts: original.ts,
            },
        );
        self.record(
            UpdateFaultKind::DuplicateInsert,
            i + 1,
            format!("re-inserted live edge {} at event {}", original.edge, i + 1),
        );
        true
    }

    /// Delete an edge built from fresh vertex ids — never inserted.
    fn orphan_delete(&mut self) -> bool {
        if self.events.is_empty() {
            return false;
        }
        let at = self.below(self.events.len());
        let ts = self.events[at].ts;
        let (u, v) = (self.fresh_vertex(), self.fresh_vertex());
        let edge = EdgeKey::new(u, v);
        self.used_edges.insert(edge.pack());
        self.insert_event(
            at,
            UpdateEvent {
                op: UpdateOp::Delete,
                edge,
                ts,
            },
        );
        self.record(
            UpdateFaultKind::OrphanDelete,
            at,
            format!("deleted never-inserted edge {edge} at event {at}"),
        );
        true
    }

    /// Flip the op of an edge's *last* event, so no downstream event of the
    /// same edge is invalidated as a side effect.
    fn op_flip(&mut self) -> bool {
        let last = self.last_occurrence();
        let candidates: Vec<usize> = (0..self.events.len())
            .filter(|&i| {
                let key = self.events[i].edge.pack();
                last.get(&key) == Some(&i) && !self.used_edges.contains(&key)
            })
            .collect();
        let Some(i) = self.pick(&candidates) else {
            return false;
        };
        let old_op = self.events[i].op;
        self.events[i].op = match old_op {
            UpdateOp::Insert => UpdateOp::Delete,
            UpdateOp::Delete => UpdateOp::Insert,
        };
        self.used_edges.insert(self.events[i].edge.pack());
        let edge = self.events[i].edge;
        self.record(
            UpdateFaultKind::OpFlip,
            i,
            format!(
                "flipped {old_op} {edge} to {} at event {i}",
                self.events[i].op
            ),
        );
        true
    }

    /// Rewrite one endpoint of an edge's last deletion to a fresh vertex:
    /// the rewritten edge was never live, and the true edge (left live by
    /// the lost deletion) has no later events to invalidate.
    fn corrupt_endpoint(&mut self) -> bool {
        let last = self.last_occurrence();
        let candidates: Vec<usize> = (0..self.events.len())
            .filter(|&i| {
                let key = self.events[i].edge.pack();
                self.events[i].op == UpdateOp::Delete
                    && last.get(&key) == Some(&i)
                    && !self.used_edges.contains(&key)
            })
            .collect();
        let Some(i) = self.pick(&candidates) else {
            return false;
        };
        let old = self.events[i].edge;
        let corrupted = EdgeKey::new(old.lo(), self.fresh_vertex());
        self.events[i].edge = corrupted;
        self.used_edges.insert(old.pack());
        self.used_edges.insert(corrupted.pack());
        self.record(
            UpdateFaultKind::CorruptEndpoint,
            i,
            format!("rewrote delete {old} as {corrupted} at event {i}"),
        );
        true
    }

    /// Swap adjacent events with strictly increasing timestamps and
    /// distinct edges: one regression at the later slot, no semantic
    /// violation.
    fn swap_adjacent(&mut self) -> bool {
        let candidates: Vec<usize> = (0..self.events.len().saturating_sub(1))
            .filter(|&i| {
                let (a, b) = (self.events[i], self.events[i + 1]);
                a.ts < b.ts
                    && a.edge != b.edge
                    && !self.used_edges.contains(&a.edge.pack())
                    && !self.used_edges.contains(&b.edge.pack())
                    && !(i.saturating_sub(1)..=i + 2).any(|p| self.ts_touched.contains(&p))
            })
            .collect();
        let Some(i) = self.pick(&candidates) else {
            return false;
        };
        self.events.swap(i, i + 1);
        for p in i.saturating_sub(1)..=i + 2 {
            self.ts_touched.insert(p);
        }
        self.record(
            UpdateFaultKind::SwapAdjacent,
            i + 1,
            format!("swapped events {i} and {} (timestamps regress)", i + 1),
        );
        true
    }

    /// Rewrite one event's timestamp to just below its predecessor's. The
    /// successor's timestamp is at least the predecessor's (valid input),
    /// so exactly one regression appears.
    fn ts_regression(&mut self) -> bool {
        let candidates: Vec<usize> = (1..self.events.len())
            .filter(|&i| {
                self.events[i - 1].ts >= 1
                    && self.events[i].ts >= self.events[i - 1].ts
                    && !(i - 1..=i + 1).any(|p| self.ts_touched.contains(&p))
            })
            .collect();
        let Some(i) = self.pick(&candidates) else {
            return false;
        };
        let previous = self.events[i - 1].ts;
        let old = self.events[i].ts;
        self.events[i].ts = previous - 1;
        for p in i - 1..=i + 1 {
            self.ts_touched.insert(p);
        }
        self.record(
            UpdateFaultKind::TimestampRegression,
            i,
            format!("event {i}: timestamp {old} rewritten to {}", previous - 1),
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{churn, ChurnConfig};
    use adjstream_graph::gen;

    fn base_stream(seed: u64) -> UpdateStream {
        let g = gen::disjoint_cliques(4, 6);
        churn(
            &g,
            &ChurnConfig {
                churn_events: 120,
                delete_fraction: 0.6,
                seed,
            },
        )
    }

    #[test]
    fn plans_are_replayable() {
        let s = base_stream(3);
        let plan = UpdateFaultPlan::new(42)
            .with(UpdateFaultKind::DeleteDead, 2)
            .with(UpdateFaultKind::OpFlip, 1);
        let a = plan.apply(&s);
        let b = plan.apply(&s);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.injected().len(), 3);
        assert!(a.skipped().is_empty());
        assert_eq!(a.expected_detections(), 3);
    }

    #[test]
    fn empty_plan_is_identity() {
        let s = base_stream(9);
        let c = UpdateFaultPlan::new(7).apply(&s);
        assert_eq!(c.events(), s.events());
        assert!(c.injected().is_empty());
        assert_eq!(c.first_position(), None);
    }

    #[test]
    fn every_kind_injects_on_a_churn_stream() {
        let s = base_stream(11);
        for kind in UpdateFaultKind::ALL {
            for seed in 0..5 {
                let c = UpdateFaultPlan::new(seed).with(kind, 1).apply(&s);
                assert!(c.skipped().is_empty(), "{kind} skipped at seed {seed}");
                assert_eq!(c.injected().len(), 1, "{kind}");
                assert_eq!(c.expected_detections(), 1, "{kind}");
            }
        }
    }

    #[test]
    fn display_parse_round_trip() {
        for kind in UpdateFaultKind::ALL {
            assert_eq!(UpdateFaultKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(UpdateFaultKind::parse("no-such-fault"), None);
    }

    #[test]
    fn composed_plans_account_for_all_faults() {
        let s = base_stream(21);
        let plan = UpdateFaultPlan::new(77)
            .with(UpdateFaultKind::DeleteDead, 2)
            .with(UpdateFaultKind::DuplicateInsert, 2)
            .with(UpdateFaultKind::OrphanDelete, 1)
            .with(UpdateFaultKind::SwapAdjacent, 1);
        let c = plan.apply(&s);
        assert!(c.skipped().is_empty());
        assert_eq!(c.injected().len(), 6);
        assert_eq!(c.expected_detections(), 6);
        // Recorded positions point at the injected violations in final
        // coordinates.
        let first = c.first_position().unwrap();
        assert!(first < c.events().len());
    }
}

//! Hash-threshold (Bernoulli) sampling.

use crate::hashing::HashFn;

/// Decides membership of keys in the sample by hashing: key `x` is sampled
/// iff `h(x) < p·2^64`. Deterministic per seed, so the two stream
/// appearances of an edge always agree — the "hash-based sampling method"
/// Section 3.3.1 relies on.
///
/// Each key is included independently with probability `p`; the sample size
/// is `Binomial(m, p)` rather than exactly `m′ = pm`.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSampler {
    hash: HashFn,
    threshold: u64,
    p: f64,
}

impl ThresholdSampler {
    /// Sampler with inclusion probability `p` (clamped to `[0, 1]`).
    pub fn new(seed: u64, p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * u64::MAX as f64) as u64
        };
        ThresholdSampler {
            hash: HashFn::from_seed(seed, 0x7E57),
            threshold,
            p,
        }
    }

    /// The configured inclusion probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Whether `key` belongs to the sample.
    #[inline]
    pub fn accepts(&self, key: u64) -> bool {
        if self.p >= 1.0 {
            true
        } else {
            self.hash.hash(key) < self.threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let s1 = ThresholdSampler::new(1, 0.3);
        let s2 = ThresholdSampler::new(1, 0.3);
        for k in 0..100 {
            assert_eq!(s1.accepts(k), s2.accepts(k));
        }
    }

    #[test]
    fn acceptance_rate_close_to_p() {
        for &p in &[0.1, 0.5, 0.9] {
            let s = ThresholdSampler::new(7, p);
            let n = 100_000u64;
            let hits = (0..n).filter(|&k| s.accepts(k)).count() as f64;
            let rate = hits / n as f64;
            assert!((rate - p).abs() < 0.01, "p={p} rate={rate}");
        }
    }

    #[test]
    fn extremes() {
        let all = ThresholdSampler::new(3, 1.0);
        assert!((0..1000).all(|k| all.accepts(k)));
        let none = ThresholdSampler::new(3, 0.0);
        assert!((0..1000).all(|k| !none.accepts(k)));
        let clamped = ThresholdSampler::new(3, 2.0);
        assert_eq!(clamped.probability(), 1.0);
    }
}

//! Bottom-k sampling: keep the `k` keys with smallest hash values.
//!
//! This realizes the paper's *fixed-size* uniform sample: over any key
//! universe, the set of `k` smallest hashes is a uniform `k`-subset.
//! Crucially for streaming, once a key that belongs to the final sample is
//! first seen, it remains in the working sample forever (later insertions
//! can only evict keys with *larger* hashes), so an algorithm can begin
//! monitoring it immediately — the property Section 3.3.1 uses to collect
//! triangles "from the first of the two times it appears".

use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

use crate::hashing::{FastBuildHasher, FastMap, HashFn};
use crate::meter::{hashmap_bytes, SpaceUsage};

/// Outcome of offering a key to the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottomKEvent {
    /// Key entered the sample; nothing left.
    Inserted,
    /// Key entered the sample, evicting the returned key.
    InsertedEvicting(u64),
    /// Key was already in the sample (e.g. the edge's second appearance).
    AlreadyPresent,
    /// Key's hash is too large for the current sample.
    Rejected,
}

/// A bottom-k sample over `u64` keys.
#[derive(Debug, Clone)]
pub struct BottomKSampler {
    k: usize,
    hash: HashFn,
    /// Max-heap of (hash, key) for the current sample.
    heap: BinaryHeap<(u64, u64)>,
    /// Membership index: key → hash.
    members: FastMap<u64, u64>,
}

impl BottomKSampler {
    /// Sampler retaining the `k` smallest-hashed keys.
    pub fn new(seed: u64, k: usize) -> Self {
        BottomKSampler {
            k,
            hash: HashFn::from_seed(seed, 0xB077_0A1C),
            heap: BinaryHeap::with_capacity(k + 1),
            members: FastMap::with_capacity_and_hasher(k * 2, FastBuildHasher::default()),
        }
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Current sample size (`min(k, distinct keys offered)`).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no key has been retained.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `key` is currently sampled.
    pub fn contains(&self, key: u64) -> bool {
        self.members.contains_key(&key)
    }

    /// Offer a key; idempotent for keys already present.
    pub fn offer(&mut self, key: u64) -> BottomKEvent {
        if self.k == 0 {
            return BottomKEvent::Rejected;
        }
        let h = self.hash.hash(key);
        match self.members.entry(key) {
            Entry::Occupied(_) => BottomKEvent::AlreadyPresent,
            Entry::Vacant(slot) => {
                if self.heap.len() < self.k {
                    slot.insert(h);
                    self.heap.push((h, key));
                    return BottomKEvent::Inserted;
                }
                let &(max_h, max_key) = self.heap.peek().expect("heap full");
                if h >= max_h {
                    return BottomKEvent::Rejected;
                }
                slot.insert(h);
                self.heap.pop();
                self.heap.push((h, key));
                self.members.remove(&max_key);
                BottomKEvent::InsertedEvicting(max_key)
            }
        }
    }

    /// Iterate the sampled keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.members.keys().copied()
    }
}

impl SpaceUsage for BottomKSampler {
    fn space_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<(u64, u64)>() + hashmap_bytes(&self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_hashes() {
        let mut s = BottomKSampler::new(5, 10);
        let keys: Vec<u64> = (0..200).collect();
        for &k in &keys {
            s.offer(k);
        }
        assert_eq!(s.len(), 10);
        // Verify against a direct sort by the same hash.
        let h = HashFn::from_seed(5, 0xB077_0A1C);
        let mut by_hash = keys.clone();
        by_hash.sort_by_key(|&k| h.hash(k));
        let expect: std::collections::HashSet<u64> = by_hash[..10].iter().copied().collect();
        let got: std::collections::HashSet<u64> = s.keys().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn final_members_never_leave_once_inserted() {
        // Property from the doc comment: replay the stream; every key in the
        // final sample must be in the working sample continuously from its
        // first offer.
        let mut s = BottomKSampler::new(9, 8);
        let keys: Vec<u64> = (0..150).map(|i| i * 7 + 3).collect();
        for &k in &keys {
            s.offer(k);
        }
        let finals: std::collections::HashSet<u64> = s.keys().collect();
        let mut s2 = BottomKSampler::new(9, 8);
        let mut inserted_at: std::collections::HashMap<u64, usize> = Default::default();
        for (i, &k) in keys.iter().enumerate() {
            match s2.offer(k) {
                BottomKEvent::Inserted | BottomKEvent::InsertedEvicting(_) => {
                    inserted_at.insert(k, i);
                }
                BottomKEvent::Rejected => {
                    assert!(!finals.contains(&k), "final member {k} rejected");
                }
                BottomKEvent::AlreadyPresent => {}
            }
        }
        for &k in &finals {
            assert!(inserted_at.contains_key(&k));
            assert!(s2.contains(k));
        }
    }

    #[test]
    fn idempotent_reoffers() {
        let mut s = BottomKSampler::new(1, 4);
        assert_eq!(s.offer(42), BottomKEvent::Inserted);
        assert_eq!(s.offer(42), BottomKEvent::AlreadyPresent);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_reports_the_evicted_key() {
        let mut s = BottomKSampler::new(2, 1);
        s.offer(1);
        let h = HashFn::from_seed(2, 0xB077_0A1C);
        // Find a key hashing below key 1.
        let smaller = (2..).find(|&k| h.hash(k) < h.hash(1)).unwrap();
        assert_eq!(s.offer(smaller), BottomKEvent::InsertedEvicting(1));
        assert!(s.contains(smaller) && !s.contains(1));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut s = BottomKSampler::new(3, 0);
        assert_eq!(s.offer(9), BottomKEvent::Rejected);
        assert!(s.is_empty());
    }

    #[test]
    fn uniformity_sanity() {
        // Each key should land in the bottom-k sample with roughly equal
        // frequency across seeds.
        let universe: Vec<u64> = (0..40).collect();
        let mut hits = vec![0u32; universe.len()];
        let trials = 2000;
        for seed in 0..trials {
            let mut s = BottomKSampler::new(seed, 10);
            for &k in &universe {
                s.offer(k);
            }
            for k in s.keys() {
                hits[k as usize] += 1;
            }
        }
        let expect = trials as f64 * 10.0 / 40.0;
        for (k, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64 - expect).abs() < expect * 0.25,
                "key {k}: {h} vs {expect}"
            );
        }
    }
}

//! Samplers realizing the paper's "keep a uniform size-m′ subset" steps.
//!
//! Two realizations of edge sampling are provided (see DESIGN.md §2):
//!
//! * [`ThresholdSampler`] — Bernoulli/hash-threshold sampling: an edge is in
//!   `S` iff its hash falls below a threshold. Membership is a pure function
//!   of the key, so both stream appearances of an edge agree, nothing is
//!   ever evicted, and downstream reservoirs stay exactly uniform.
//! * [`BottomKSampler`] — fixed-size bottom-k hashing: `S` is the `k` keys
//!   with the smallest hashes. This matches the negative-association
//!   analysis in the paper (fixed |S|) at the cost of evictions mid-stream.
//!
//! [`Reservoir`] sub-samples discovered items (the paper's `Q`).

mod bottomk;
mod reservoir;
mod threshold;

pub use bottomk::{BottomKEvent, BottomKSampler};
pub use reservoir::{Reservoir, ReservoirEvent};
pub use threshold::ThresholdSampler;

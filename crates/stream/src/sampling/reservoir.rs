//! Reservoir sampling (Algorithm R) for the pair sample `Q`.
//!
//! The Section 3 algorithm keeps only an `m′`-size uniform subsample of the
//! discovered `(edge, triangle)` pairs (step 3c); a classic reservoir over
//! the discovery stream provides exactly that. When the edge sample uses
//! bottom-k hashing, evicted edges invalidate their pairs; [`Reservoir::retain`]
//! purges them and [`Reservoir::set_seen`] lets the caller rebase the
//! admission counter on the size of the still-valid universe (see DESIGN.md
//! §5 for the uniformity discussion).

use crate::hashing::SplitMix64;
use crate::meter::{vec_bytes, SpaceUsage};

/// Outcome of offering an item to the reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservoirEvent<T> {
    /// Stored in a fresh slot (reservoir not yet full).
    Stored {
        /// Index of the slot used.
        slot: usize,
    },
    /// Replaced an existing item.
    Replaced {
        /// Index of the slot used.
        slot: usize,
        /// The item that was pushed out.
        evicted: T,
    },
    /// Not sampled.
    Rejected,
}

/// Unbiased uniform draw from `0..bound` by rejection sampling.
fn next_below(rng: &mut SplitMix64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject the tail of the 2^64 range that would bias the modulus.
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

/// A fixed-capacity uniform sample over a stream of items.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: SplitMix64,
}

impl<T> Reservoir<T> {
    /// Reservoir of the given capacity, randomized by `seed`.
    pub fn new(seed: u64, capacity: usize) -> Self {
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity.min(1 << 20)),
            rng: SplitMix64::new(seed),
        }
    }

    /// Capacity (the paper's `m′`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items offered so far (the universe size, if no retains
    /// occurred).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether every offered item was kept (`seen ≤ capacity`); if so the
    /// reservoir holds the entire universe and downstream estimators can
    /// skip the subsampling correction.
    pub fn is_exhaustive(&self) -> bool {
        self.seen <= self.capacity as u64
    }

    /// Offer an item.
    pub fn offer(&mut self, item: T) -> ReservoirEvent<T>
    where
        T: Clone,
    {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return ReservoirEvent::Stored {
                slot: self.items.len() - 1,
            };
        }
        if self.capacity == 0 {
            return ReservoirEvent::Rejected;
        }
        let j = next_below(&mut self.rng, self.seen);
        if (j as usize) < self.capacity {
            let slot = j as usize;
            let evicted = std::mem::replace(&mut self.items[slot], item);
            ReservoirEvent::Replaced { slot, evicted }
        } else {
            ReservoirEvent::Rejected
        }
    }

    /// The sampled items.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Decompose into `(capacity, seen, rng_state)` for checkpointing; the
    /// items themselves are read via [`Reservoir::items`]. Together with
    /// [`Reservoir::from_parts`] this round-trips the reservoir exactly,
    /// including the position of its random stream.
    pub fn to_parts(&self) -> (usize, u64, u64) {
        (self.capacity, self.seen, self.rng.state())
    }

    /// Rebuild a reservoir from checkpointed parts. `items` must be the
    /// slice captured at save time, in the same order: slot indices are
    /// meaningful to future replacements.
    pub fn from_parts(capacity: usize, seen: u64, rng_state: u64, items: Vec<T>) -> Self {
        Reservoir {
            capacity,
            seen,
            items,
            rng: SplitMix64::from_state(rng_state),
        }
    }

    /// Mutable access (algorithms update per-item counters in place).
    pub fn items_mut(&mut self) -> &mut [T] {
        &mut self.items
    }

    /// Drop items failing `pred` (used when an edge eviction invalidates its
    /// pairs). Returns how many were removed.
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, pred: F) -> usize {
        let before = self.items.len();
        self.items.retain(pred);
        before - self.items.len()
    }

    /// Rebase the admission counter after a purge, so future offers are
    /// weighted against the valid universe size rather than the raw count.
    pub fn set_seen(&mut self, seen: u64) {
        self.seen = seen.max(self.items.len() as u64);
    }

    /// Consume the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T> SpaceUsage for Reservoir<T> {
    fn space_bytes(&self) -> usize {
        vec_bytes(&self.items) + std::mem::size_of::<SplitMix64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_samples() {
        let mut r: Reservoir<u64> = Reservoir::new(1, 3);
        assert_eq!(r.offer(10), ReservoirEvent::Stored { slot: 0 });
        assert_eq!(r.offer(11), ReservoirEvent::Stored { slot: 1 });
        assert_eq!(r.offer(12), ReservoirEvent::Stored { slot: 2 });
        assert!(r.is_exhaustive());
        let ev = r.offer(13);
        assert!(!r.is_exhaustive());
        match ev {
            ReservoirEvent::Replaced { slot, evicted } => {
                assert!(slot < 3);
                assert!((10..13).contains(&evicted));
                assert!(r.items().contains(&13));
            }
            ReservoirEvent::Rejected => assert!(!r.items().contains(&13)),
            ReservoirEvent::Stored { .. } => panic!("reservoir was full"),
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.seen(), 4);
    }

    #[test]
    fn uniform_inclusion_probability() {
        // Offer 0..20 to a capacity-5 reservoir many times; each item should
        // be retained with probability 1/4.
        let n = 20u64;
        let cap = 5usize;
        let trials = 4000;
        let mut hits = vec![0u32; n as usize];
        for seed in 0..trials {
            let mut r = Reservoir::new(seed, cap);
            for x in 0..n {
                r.offer(x);
            }
            for &x in r.items() {
                hits[x as usize] += 1;
            }
        }
        let expect = trials as f64 * cap as f64 / n as f64;
        for (x, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64 - expect).abs() < expect * 0.2,
                "item {x}: {h} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_capacity() {
        let mut r: Reservoir<u8> = Reservoir::new(0, 0);
        assert_eq!(r.offer(1), ReservoirEvent::Rejected);
        assert_eq!(r.len(), 0);
        assert_eq!(r.seen(), 1);
    }

    #[test]
    fn retain_and_rebase() {
        let mut r: Reservoir<u64> = Reservoir::new(2, 10);
        for x in 0..8 {
            r.offer(x);
        }
        let removed = r.retain(|&x| x % 2 == 0);
        assert_eq!(removed, 4);
        assert_eq!(r.len(), 4);
        r.set_seen(4);
        assert_eq!(r.seen(), 4);
        // set_seen clamps to current length.
        r.set_seen(0);
        assert_eq!(r.seen(), 4);
    }

    #[test]
    fn deterministic_by_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(seed, 4);
            for x in 0..100u64 {
                r.offer(x);
            }
            r.into_items()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

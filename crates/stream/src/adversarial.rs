//! Adversarial stream layouts.
//!
//! The model lets an adversary pick both the list order and the within-list
//! order. These generators produce the orders that stress specific
//! algorithmic choices:
//!
//! * [`hubs_first`] / [`hubs_last`] — high-degree vertices at the start or
//!   end of the stream. Hubs-last starves one-pass algorithms of early
//!   wedge context; hubs-first maximizes the memory pressure of anything
//!   that buffers per-list state.
//! * [`apexes_before_edges`] — for a target edge set, order every common
//!   neighborhood *before* the edge's own endpoints, forcing the two-pass
//!   algorithm's discoveries into pass 2 (exercising the `P2^{<uv}`
//!   discovery path and the activation machinery end to end).
//!
//! Order-robustness of the Section 3 algorithm — its estimate is unbiased
//! under *every* one of these — is covered by tests here and the exactness
//! property tests.

use adjstream_graph::{EdgeKey, Graph, VertexId};

use crate::order::{StreamOrder, WithinListOrder};

/// Lists sorted by descending degree (hubs first), ties by id.
pub fn hubs_first(g: &Graph) -> StreamOrder {
    let mut lists: Vec<VertexId> = g.vertices().collect();
    lists.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
    StreamOrder::custom(lists, WithinListOrder::Sorted)
}

/// Lists sorted by ascending degree (hubs last), ties by id.
pub fn hubs_last(g: &Graph) -> StreamOrder {
    let mut lists: Vec<VertexId> = g.vertices().collect();
    lists.sort_by_key(|&v| (g.degree(v), v.0));
    StreamOrder::custom(lists, WithinListOrder::Sorted)
}

/// For each target edge, move both endpoints' lists as late as possible so
/// that every apex completing a triangle over the edge arrives *before*
/// the edge is first seen: discoveries must happen in pass 2.
///
/// Implementation: endpoints of `targets` stream last (in id order), all
/// other vertices first.
pub fn apexes_before_edges(g: &Graph, targets: &[EdgeKey]) -> StreamOrder {
    let n = g.vertex_count();
    let mut is_endpoint = vec![false; n];
    for e in targets {
        is_endpoint[e.lo().index()] = true;
        is_endpoint[e.hi().index()] = true;
    }
    let mut lists: Vec<VertexId> = g.vertices().filter(|v| !is_endpoint[v.index()]).collect();
    lists.extend(g.vertices().filter(|v| is_endpoint[v.index()]));
    StreamOrder::custom(lists, WithinListOrder::Sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;

    #[test]
    fn hub_orders_are_permutations() {
        let g = gen::star(6);
        let first = hubs_first(&g);
        let last = hubs_last(&g);
        assert_eq!(first.lists()[0], VertexId(0)); // the center
        assert_eq!(*last.lists().last().unwrap(), VertexId(0));
        let mut f: Vec<u32> = first.lists().iter().map(|v| v.0).collect();
        f.sort_unstable();
        assert_eq!(f, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn apexes_before_edges_defers_endpoints() {
        let g = gen::complete(5);
        let target = EdgeKey::new(VertexId(1), VertexId(3));
        let order = apexes_before_edges(&g, &[target]);
        let pos = order.positions();
        for apex in [0u32, 2, 4] {
            assert!(pos[apex as usize] < pos[1]);
            assert!(pos[apex as usize] < pos[3]);
        }
    }

    #[test]
    fn orders_cover_every_vertex_once() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(30, 100, &mut rng);
        for order in [
            hubs_first(&g),
            hubs_last(&g),
            apexes_before_edges(&g, &g.edge_vec()[..5]),
        ] {
            let mut seen: Vec<u32> = order.lists().iter().map(|v| v.0).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..30).collect::<Vec<_>>());
        }
    }
}

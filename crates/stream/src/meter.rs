//! Space accounting.
//!
//! The paper measures algorithms by words of working state, not process
//! memory. Every algorithm implements [`SpaceUsage`] by summing the bytes of
//! its live sample structures; the [`crate::runner::Runner`] polls it at
//! adjacency-list boundaries and records the high-water mark, which is what
//! experiments report against the `m/T^{2/3}`-style bounds.

/// Report the current heap + inline size of a piece of algorithm state, in
/// bytes.
pub trait SpaceUsage {
    /// Bytes of live state right now.
    fn space_bytes(&self) -> usize;
}

/// Bytes held by a `Vec` of plain-old-data elements (capacity, not length:
/// allocated space is what a space-bounded algorithm pays for).
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>() + std::mem::size_of::<Vec<T>>()
}

/// Approximate bytes held by a `HashMap` with POD keys and values, under
/// any build-hasher.
///
/// Accounts for the table's control bytes and bucket slots at the standard
/// ~8/7 load-factor overhead of hashbrown.
pub fn hashmap_bytes<K, V, S>(m: &std::collections::HashMap<K, V, S>) -> usize {
    let slot = std::mem::size_of::<(K, V)>() + 1; // entry + control byte
    m.capacity() * slot + std::mem::size_of::<std::collections::HashMap<K, V, S>>()
}

/// Approximate bytes held by a `HashSet` with POD elements, under any
/// build-hasher.
pub fn hashset_bytes<T, S>(s: &std::collections::HashSet<T, S>) -> usize {
    let slot = std::mem::size_of::<T>() + 1;
    s.capacity() * slot + std::mem::size_of::<std::collections::HashSet<T, S>>()
}

impl SpaceUsage for () {
    fn space_bytes(&self) -> usize {
        0
    }
}

/// A tiny helper that tracks the high-water mark of a sequence of
/// [`SpaceUsage`] polls.
#[derive(Debug, Default, Clone, Copy)]
pub struct PeakTracker {
    peak: usize,
}

impl PeakTracker {
    /// Start at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation.
    #[inline]
    pub fn observe(&mut self, bytes: usize) {
        if bytes > self.peak {
            self.peak = bytes;
        }
    }

    /// The largest observation so far.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Fold another tracker's peak into this one — used when per-shard
    /// trackers (one per batch worker) are combined into a run-wide
    /// high-water mark.
    pub fn merge(&mut self, other: &PeakTracker) {
        self.observe(other.peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn vec_bytes_tracks_capacity() {
        let v: Vec<u64> = Vec::with_capacity(100);
        assert!(vec_bytes(&v) >= 800);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.capacity(), 0);
        assert_eq!(vec_bytes(&empty), std::mem::size_of::<Vec<u64>>());
    }

    #[test]
    fn hash_structures_scale_with_capacity() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        let empty_bytes = hashmap_bytes(&m);
        for i in 0..1000 {
            m.insert(i, i);
        }
        assert!(hashmap_bytes(&m) > empty_bytes + 1000 * 16);
        let mut s: HashSet<u32> = HashSet::new();
        for i in 0..100 {
            s.insert(i);
        }
        assert!(hashset_bytes(&s) >= 100 * 5);
    }

    #[test]
    fn peak_tracker_is_monotone() {
        let mut p = PeakTracker::new();
        p.observe(10);
        p.observe(5);
        assert_eq!(p.peak(), 10);
        p.observe(25);
        assert_eq!(p.peak(), 25);
    }

    #[test]
    fn peak_tracker_merge_takes_max() {
        let mut a = PeakTracker::new();
        a.observe(10);
        let mut b = PeakTracker::new();
        b.observe(30);
        a.merge(&b);
        assert_eq!(a.peak(), 30);
        b.merge(&a);
        assert_eq!(b.peak(), 30);
    }
}

//! Wedge (path-of-length-two) counting and enumeration.

use crate::csr::Graph;
use crate::ids::WedgeKey;

/// Total number of wedges `P₂ = Σ_v C(deg(v), 2)`.
///
/// Thin wrapper over [`Graph::wedge_count`], re-exported here so all exact
/// counters live in one namespace.
pub fn wedge_count(g: &Graph) -> u64 {
    g.wedge_count()
}

/// Enumerate every wedge exactly once (per canonical key), invoking `f`.
///
/// Wedges are produced grouped by center; for a center of degree `d` this
/// yields `C(d, 2)` wedges, so the total work is `Σ deg²` — fine for the
/// moderate graphs used in experiments, but not for huge skew-degree graphs.
pub fn enumerate_wedges<F: FnMut(WedgeKey)>(g: &Graph, mut f: F) {
    for c in g.vertices() {
        let nb = g.neighbors(c);
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                f(WedgeKey::new(nb[i], c, nb[j]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wedge_count_matches_enumeration() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::gnm(30, 100, &mut rng);
        let mut n = 0u64;
        let mut seen = std::collections::HashSet::new();
        enumerate_wedges(&g, |w| {
            n += 1;
            assert!(seen.insert(w), "duplicate wedge {w:?}");
        });
        assert_eq!(n, wedge_count(&g));
    }

    #[test]
    fn star_has_all_wedges_centered() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let mut n = 0;
        enumerate_wedges(&g, |w| {
            assert_eq!(w.center.0, 0);
            n += 1;
        });
        assert_eq!(n, 6); // C(4,2)
    }

    #[test]
    fn triangle_has_three_wedges() {
        let g = gen::complete(3);
        assert_eq!(wedge_count(&g), 3);
    }
}

//! Girth (length of a shortest cycle).
//!
//! Used to certify the projective-plane incidence graphs are 4-cycle-free
//! (girth 6), which the Section 5.2 lower-bound constructions rely on.

use std::collections::VecDeque;

use crate::csr::Graph;

/// Girth of `g`: the length of its shortest cycle, or `None` if acyclic.
///
/// Runs one BFS per vertex (`O(n·m)`): during the BFS from `r`, a non-tree
/// edge between vertices at depths `d(x)` and `d(y)` closes a cycle of length
/// `d(x) + d(y) + 1` through `r`'s BFS tree. The minimum over all roots and
/// all non-tree edges is the girth (every shortest cycle is discovered from
/// each of its own vertices).
pub fn girth(g: &Graph) -> Option<usize> {
    let n = g.vertex_count();
    let mut best: Option<usize> = None;
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();
    for r in g.vertices() {
        // Reset only what the previous BFS touched.
        for &t in &touched {
            dist[t] = usize::MAX;
            parent[t] = u32::MAX;
        }
        touched.clear();
        queue.clear();
        dist[r.index()] = 0;
        touched.push(r.index());
        queue.push_back(r);
        while let Some(x) = queue.pop_front() {
            // Cycles through deeper vertices can't beat the current best.
            if let Some(b) = best {
                if 2 * dist[x.index()] + 1 >= b {
                    break;
                }
            }
            for &y in g.neighbors(x) {
                if dist[y.index()] == usize::MAX {
                    dist[y.index()] = dist[x.index()] + 1;
                    parent[y.index()] = x.0;
                    touched.push(y.index());
                    queue.push_back(y);
                } else if parent[x.index()] != y.0 {
                    // Non-tree edge: cycle through the BFS tree.
                    let len = dist[x.index()] + dist[y.index()] + 1;
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
            }
        }
    }
    best
}

/// Check that `g` contains no cycle of length `< min_girth`.
pub fn has_girth_at_least(g: &Graph, min_girth: usize) -> bool {
    girth(g).is_none_or(|gi| gi >= min_girth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;

    #[test]
    fn acyclic_graphs_have_no_girth() {
        let tree = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(girth(&tree), None);
        assert!(has_girth_at_least(&tree, 100));
        let g = crate::Graph::empty(4);
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn cycle_graphs() {
        for len in 3..=9usize {
            assert_eq!(girth(&gen::cycle(len)), Some(len));
        }
    }

    #[test]
    fn complete_graphs_have_girth_three() {
        for n in 3..=6usize {
            assert_eq!(girth(&gen::complete(n)), Some(3));
        }
    }

    #[test]
    fn complete_bipartite_has_girth_four() {
        assert_eq!(girth(&gen::complete_bipartite(3, 3)), Some(4));
        assert_eq!(girth(&gen::complete_bipartite(2, 5)), Some(4));
    }

    #[test]
    fn petersen_has_girth_five() {
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges = outer.iter().chain(&spokes).chain(&inner).copied();
        let g = GraphBuilder::from_edges(10, edges).unwrap();
        assert_eq!(girth(&g), Some(5));
        assert!(has_girth_at_least(&g, 5));
        assert!(!has_girth_at_least(&g, 6));
    }

    #[test]
    fn cycle_with_chord() {
        // C6 with a chord splitting it into a C4 and a C4... 0-1-2-3-4-5-0
        // plus chord 0-3 creates two 4-cycles; girth 4.
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)])
                .unwrap();
        assert_eq!(girth(&g), Some(4));
    }
}

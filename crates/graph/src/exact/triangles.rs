//! Exact triangle counting.
//!
//! The workhorse is the *forward* (compact-forward) algorithm: orient each
//! edge from the lower-rank endpoint to the higher-rank endpoint under a
//! degree ordering, then intersect out-neighbor lists. Runs in `O(m^{3/2})`.
//! A brute-force `O(n³)` counter exists for cross-checking on small graphs.

use super::EdgeIndexMap;
use crate::csr::{sorted_intersection_count, Graph};
use crate::ids::{TriangleKey, VertexId};

/// Rank vertices by (degree, id) ascending and return `rank[v]`.
fn degree_ranks(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (g.degree(VertexId(v)), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    rank
}

/// Build the forward-oriented adjacency: for each `v`, out-neighbors are the
/// neighbors with strictly greater rank, sorted by vertex id.
fn forward_lists(g: &Graph, rank: &[u32]) -> (Vec<usize>, Vec<VertexId>) {
    let n = g.vertex_count();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut out = Vec::with_capacity(g.edge_count());
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            if rank[w.index()] > rank[v.index()] {
                out.push(w);
            }
        }
        offsets.push(out.len());
    }
    (offsets, out)
}

/// Exact triangle count via the forward algorithm, `O(m^{3/2})`.
pub fn count_triangles(g: &Graph) -> u64 {
    let rank = degree_ranks(g);
    let (offsets, out) = forward_lists(g, &rank);
    let mut total = 0u64;
    for v in g.vertices() {
        let lv = &out[offsets[v.index()]..offsets[v.index() + 1]];
        for &w in lv {
            let lw = &out[offsets[w.index()]..offsets[w.index() + 1]];
            total += sorted_intersection_count(lv, lw) as u64;
        }
    }
    total
}

/// Brute-force `O(n³)` triangle count, for cross-checking on small graphs.
pub fn count_triangles_brute(g: &Graph) -> u64 {
    let n = g.vertex_count() as u32;
    let mut total = 0u64;
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                continue;
            }
            for c in (b + 1)..n {
                if g.has_edge(VertexId(a), VertexId(c)) && g.has_edge(VertexId(b), VertexId(c)) {
                    total += 1;
                }
            }
        }
    }
    total
}

/// Enumerate every triangle exactly once, invoking `f` on its canonical key.
pub fn enumerate_triangles<F: FnMut(TriangleKey)>(g: &Graph, mut f: F) {
    let rank = degree_ranks(g);
    let (offsets, out) = forward_lists(g, &rank);
    for v in g.vertices() {
        let lv = &out[offsets[v.index()]..offsets[v.index() + 1]];
        for &w in lv {
            let lw = &out[offsets[w.index()]..offsets[w.index() + 1]];
            // Merge-intersect lv and lw, reporting each common x.
            let (mut i, mut j) = (0, 0);
            while i < lv.len() && j < lw.len() {
                match lv[i].cmp(&lw[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        f(TriangleKey::new(v, w, lv[i]));
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

/// Per-edge triangle counts `T(e) = |L(e)|` (the paper's notation), indexed
/// by `idx`, plus the total `T`. Each triangle contributes to three edges.
pub fn triangle_edge_counts(g: &Graph, idx: &EdgeIndexMap) -> (Vec<u64>, u64) {
    let mut per_edge = vec![0u64; idx.len()];
    let mut total = 0u64;
    enumerate_triangles(g, |t| {
        total += 1;
        for e in t.edges() {
            let i = idx.index_of(e).expect("triangle edge must be a graph edge");
            per_edge[i] += 1;
        }
    });
    (per_edge, total)
}

/// Aggregate statistics about the triangle structure of a graph, used by the
/// experiment harness to pick sample budgets and to report heaviness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriangleStats {
    /// Total number of triangles `T`.
    pub total: u64,
    /// Maximum of `T(e)` over edges (0 if no triangles).
    pub max_edge_count: u64,
    /// Number of edges with `T(e) > 0` (edges "involved in" triangles; the
    /// paper notes this is at least `T^{2/3}`).
    pub edges_in_triangles: u64,
    /// `Σ_e T(e)²`, the quantity bounded by `O(T^{4/3})` in Lemma 3.2 when
    /// `T(e)` is replaced by the lightest-edge counts; reported for the raw
    /// counts as a heaviness diagnostic.
    pub sum_sq_edge_counts: u128,
}

impl TriangleStats {
    /// Compute the statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let idx = EdgeIndexMap::new(g);
        let (per_edge, total) = triangle_edge_counts(g, &idx);
        let max_edge_count = per_edge.iter().copied().max().unwrap_or(0);
        let edges_in_triangles = per_edge.iter().filter(|&&c| c > 0).count() as u64;
        let sum_sq_edge_counts = per_edge.iter().map(|&c| (c as u128) * (c as u128)).sum();
        TriangleStats {
            total,
            max_edge_count,
            edges_in_triangles,
            sum_sq_edge_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn complete_graph_counts() {
        for n in 3..=9usize {
            let g = gen::complete(n);
            let expect = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(count_triangles(&g), expect, "K{n}");
            assert_eq!(count_triangles_brute(&g), expect, "K{n} brute");
        }
    }

    #[test]
    fn triangle_free_graphs() {
        let path = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(count_triangles(&path), 0);
        let c4 = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(count_triangles(&c4), 0);
        let bip = gen::complete_bipartite(4, 5);
        assert_eq!(count_triangles(&bip), 0);
    }

    #[test]
    fn forward_matches_brute_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let g = gen::gnm(30, 120, &mut rng);
            assert_eq!(
                count_triangles(&g),
                count_triangles_brute(&g),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn enumeration_is_duplicate_free_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = gen::gnm(25, 90, &mut rng);
        let mut seen = std::collections::HashSet::new();
        enumerate_triangles(&g, |t| {
            assert!(seen.insert(t), "duplicate triangle {t:?}");
            let [a, b, c] = t.vertices();
            assert!(g.has_edge(a, b) && g.has_edge(a, c) && g.has_edge(b, c));
        });
        assert_eq!(seen.len() as u64, count_triangles_brute(&g));
    }

    #[test]
    fn edge_counts_sum_to_three_t() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::gnm(40, 200, &mut rng);
        let idx = EdgeIndexMap::new(&g);
        let (per_edge, total) = triangle_edge_counts(&g, &idx);
        assert_eq!(per_edge.iter().sum::<u64>(), 3 * total);
        // Spot-check edges against codegree.
        for (i, &count) in per_edge.iter().enumerate().take(10) {
            let e = idx.edge_at(i);
            assert_eq!(count, g.codegree(e.lo(), e.hi()) as u64);
        }
    }

    #[test]
    fn stats_on_book_graph() {
        // "Book" graph: edge {0,1} shared by 4 triangles with pages 2..=5.
        let mut edges = vec![(0, 1)];
        for p in 2..=5 {
            edges.push((0, p));
            edges.push((1, p));
        }
        let g = GraphBuilder::from_edges(6, edges).unwrap();
        let stats = TriangleStats::compute(&g);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.max_edge_count, 4); // the spine {0,1}
        assert_eq!(stats.edges_in_triangles, 9);
        // spine 4² + eight page edges 1² each.
        assert_eq!(stats.sum_sq_edge_counts, 16 + 8);
        assert_eq!(g.codegree(v(0), v(1)), 4);
    }
}

/// Per-vertex triangle counts (`local_counts[v]` = triangles through `v`),
/// plus the total. Used for local clustering coefficients: the local
/// clustering of `v` is `local_counts[v] / C(deg v, 2)`.
pub fn triangle_vertex_counts(g: &Graph) -> (Vec<u64>, u64) {
    let mut per_vertex = vec![0u64; g.vertex_count()];
    let mut total = 0u64;
    enumerate_triangles(g, |t| {
        total += 1;
        for v in t.vertices() {
            per_vertex[v.index()] += 1;
        }
    });
    (per_vertex, total)
}

#[cfg(test)]
mod vertex_count_tests {
    use super::*;
    use crate::gen;

    #[test]
    fn vertex_counts_sum_to_three_t() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::gnm(40, 200, &mut rng);
        let (per_vertex, total) = triangle_vertex_counts(&g);
        assert_eq!(per_vertex.iter().sum::<u64>(), 3 * total);
        assert_eq!(total, count_triangles(&g));
    }

    #[test]
    fn book_spine_vertices_carry_all_triangles() {
        let g = gen::book(7);
        let (per_vertex, total) = triangle_vertex_counts(&g);
        assert_eq!(total, 7);
        assert_eq!(per_vertex[0], 7);
        assert_eq!(per_vertex[1], 7);
        assert!(per_vertex[2..].iter().all(|&c| c == 1));
    }
}

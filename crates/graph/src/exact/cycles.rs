//! Exact counting of simple cycles of a given length ℓ.
//!
//! Used to verify the lower-bound gadget graphs (which plant `T` ℓ-cycles for
//! `ℓ ≥ 5`) and as brute-force ground truth in tests. The algorithm is a
//! canonical DFS: each cycle is generated exactly once by rooting it at its
//! minimum vertex and orienting it toward its smaller second endpoint. The
//! running time is output- and degree-sensitive (worst case `O(n · Δ^{ℓ-1})`),
//! which is fine for the moderate, structured graphs it is applied to.

use crate::csr::Graph;
use crate::ids::VertexId;

/// Count simple cycles of length exactly `len` (`len ≥ 3`).
///
/// Panics if `len < 3` (shorter "cycles" do not exist in a simple graph).
pub fn count_cycles(g: &Graph, len: usize) -> u64 {
    let mut count = 0u64;
    enumerate_cycles(g, len, |_| count += 1);
    count
}

/// Enumerate simple cycles of length exactly `len`, each exactly once.
///
/// `f` receives the cycle's vertices in traversal order, starting at the
/// cycle's minimum vertex; the second vertex is smaller than the last, which
/// fixes the orientation.
pub fn enumerate_cycles<F: FnMut(&[VertexId])>(g: &Graph, len: usize, mut f: F) {
    assert!(len >= 3, "simple cycles have length >= 3");
    let n = g.vertex_count();
    if n < len {
        return;
    }
    let mut on_path = vec![false; n];
    let mut path: Vec<VertexId> = Vec::with_capacity(len);
    for s in g.vertices() {
        on_path[s.index()] = true;
        path.push(s);
        dfs(g, s, len, &mut path, &mut on_path, &mut f);
        path.pop();
        on_path[s.index()] = false;
    }
}

fn dfs<F: FnMut(&[VertexId])>(
    g: &Graph,
    root: VertexId,
    len: usize,
    path: &mut Vec<VertexId>,
    on_path: &mut [bool],
    f: &mut F,
) {
    let last = *path.last().unwrap();
    if path.len() == len {
        // Close the cycle back to the root; orientation rule kills the
        // reverse traversal: require path[1] < path[len-1].
        if path[1] < path[len - 1] && g.has_edge(last, root) {
            f(path);
        }
        return;
    }
    for &w in g.neighbors(last) {
        // Root must be the minimum vertex on the cycle.
        if w <= root || on_path[w.index()] {
            continue;
        }
        // Orientation pruning at depth 1 is subsumed by the final check, but
        // pruning early halves the search when possible: once the path has
        // at least 2 vertices beyond the root, any completion keeps path[1],
        // so we can't prune on it until the end. No-op here.
        on_path[w.index()] = true;
        path.push(w);
        dfs(g, root, len, path, on_path, f);
        path.pop();
        on_path[w.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exact::{count_four_cycles, count_triangles};
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_triangle_counter() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let g = gen::gnm(18, 60, &mut rng);
            assert_eq!(count_cycles(&g, 3), count_triangles(&g));
        }
    }

    #[test]
    fn matches_four_cycle_counter() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..10 {
            let g = gen::gnm(15, 45, &mut rng);
            assert_eq!(count_cycles(&g, 4), count_four_cycles(&g));
        }
    }

    #[test]
    fn cycle_graph_has_one_cycle() {
        for len in 3..=8usize {
            let g = gen::cycle(len);
            for probe in 3..=8usize {
                let expect = if probe == len { 1 } else { 0 };
                assert_eq!(count_cycles(&g, probe), expect, "C{len} probe {probe}");
            }
        }
    }

    #[test]
    fn complete_graph_five_cycles() {
        // K_n has n!/(2·5·(n-5)!) 5-cycles = C(n,5) * 4!/2.
        for n in 5..=7u64 {
            let g = gen::complete(n as usize);
            let choose5 = n * (n - 1) * (n - 2) * (n - 3) * (n - 4) / 120;
            let expect = choose5 * 12;
            assert_eq!(count_cycles(&g, 5), expect, "K{n}");
        }
    }

    #[test]
    fn petersen_graph_cycle_spectrum() {
        // The Petersen graph famously has girth 5, 12 five-cycles, 10
        // six-cycles and 0 seven-cycles.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges = outer.iter().chain(&spokes).chain(&inner).copied();
        let g = GraphBuilder::from_edges(10, edges).unwrap();
        assert_eq!(count_cycles(&g, 3), 0);
        assert_eq!(count_cycles(&g, 4), 0);
        assert_eq!(count_cycles(&g, 5), 12);
        assert_eq!(count_cycles(&g, 6), 10);
        assert_eq!(count_cycles(&g, 7), 0);
        assert_eq!(count_cycles(&g, 8), 15);
    }

    #[test]
    fn enumeration_reports_valid_cycles_once() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = gen::gnm(12, 35, &mut rng);
        let mut seen = std::collections::HashSet::new();
        enumerate_cycles(&g, 5, |path| {
            assert_eq!(path.len(), 5);
            // Valid cycle edges.
            for i in 0..5 {
                assert!(g.has_edge(path[i], path[(i + 1) % 5]));
            }
            // Canonical: min first, orientation fixed.
            assert!(path.iter().skip(1).all(|&v| v > path[0]));
            assert!(path[1] < path[4]);
            let mut key: Vec<_> = path.to_vec();
            key.sort_unstable();
            // Same vertex set can host distinct cycles, so key on the path.
            assert!(seen.insert(path.to_vec()), "duplicate {path:?}");
            let _ = key;
        });
    }

    #[test]
    #[should_panic(expected = "length >= 3")]
    fn rejects_too_short() {
        let g = gen::complete(4);
        count_cycles(&g, 2);
    }
}

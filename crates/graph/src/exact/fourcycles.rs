//! Exact 4-cycle counting.
//!
//! The count uses the codegree identity: every 4-cycle is determined by its
//! two diagonal (opposite-vertex) pairs, so
//! `C₄(G) = ½ · Σ_{u<v} C(codeg(u,v), 2)`, where the sum ranges over vertex
//! pairs and each cycle is counted once per diagonal pair (there are two).
//! Codegrees are accumulated by enumerating wedges, `O(Σ deg²)` time.
//!
//! Enumeration produces each 4-cycle exactly once by restricting to the
//! diagonal pair containing the cycle's minimum vertex.

use std::collections::HashMap;

use super::EdgeIndexMap;
use crate::csr::Graph;
use crate::ids::{FourCycleKey, VertexId, WedgeKey};

/// Pack an ascending vertex pair into a `u64` map key.
#[inline]
fn pack_pair(a: VertexId, b: VertexId) -> u64 {
    debug_assert!(a.0 < b.0);
    ((a.0 as u64) << 32) | b.0 as u64
}

/// Codegree table over all vertex pairs joined by at least one wedge.
fn codegree_table(g: &Graph) -> HashMap<u64, u32> {
    let mut codeg: HashMap<u64, u32> = HashMap::new();
    for c in g.vertices() {
        let nb = g.neighbors(c);
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                *codeg.entry(pack_pair(nb[i], nb[j])).or_insert(0) += 1;
            }
        }
    }
    codeg
}

/// Exact number of 4-cycles via the codegree identity.
pub fn count_four_cycles(g: &Graph) -> u64 {
    let codeg = codegree_table(g);
    let twice: u64 = codeg
        .values()
        .map(|&c| {
            let c = c as u64;
            c * (c - 1) / 2
        })
        .sum();
    debug_assert_eq!(twice % 2, 0, "each 4-cycle has exactly two diagonal pairs");
    twice / 2
}

/// Enumerate every 4-cycle exactly once, invoking `f` on its canonical key.
///
/// For each vertex pair `(a, c)` with `a < c`, and each pair `{b, d}` of their
/// common neighbors with `a < b < d`, report the cycle `a—b—c—d—a`. Requiring
/// `a < b` (hence `a < d`) selects the diagonal pair containing the cycle's
/// minimum vertex, so each cycle fires for exactly one `(a, c)`.
pub fn enumerate_four_cycles<F: FnMut(FourCycleKey)>(g: &Graph, mut f: F) {
    // Group common neighbors per pair. To keep memory proportional to the
    // number of wedge-connected pairs we build lists lazily per pair.
    let mut common: HashMap<u64, Vec<VertexId>> = HashMap::new();
    for c in g.vertices() {
        let nb = g.neighbors(c);
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                common.entry(pack_pair(nb[i], nb[j])).or_default().push(c);
            }
        }
    }
    for (&pair, centers) in &common {
        let a = VertexId((pair >> 32) as u32);
        let c = VertexId(pair as u32);
        // centers are the common neighbors of {a, c}.
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                let (b, d) = (centers[i], centers[j]);
                // Canonical-selection rule: only when a is the global min.
                if a < b && a < d {
                    f(FourCycleKey::from_diagonals(a, c, b, d));
                }
            }
        }
    }
}

/// Per-edge 4-cycle counts, indexed by `idx`, plus the total count.
pub fn four_cycle_edge_counts(g: &Graph, idx: &EdgeIndexMap) -> (Vec<u64>, u64) {
    let mut per_edge = vec![0u64; idx.len()];
    let mut total = 0u64;
    enumerate_four_cycles(g, |c| {
        total += 1;
        for e in c.edges() {
            per_edge[idx.index_of(e).expect("cycle edge must exist")] += 1;
        }
    });
    (per_edge, total)
}

/// Per-wedge 4-cycle counts.
///
/// For a wedge `u—c—v`, the number of 4-cycles containing it equals the
/// number of common neighbors of `u` and `v` other than `c`, i.e.
/// `codeg(u, v) − 1`. Returns a map over all wedges with a nonzero count,
/// plus the total 4-cycle count.
pub fn four_cycle_wedge_counts(g: &Graph) -> (HashMap<WedgeKey, u64>, u64) {
    let codeg = codegree_table(g);
    let mut per_wedge = HashMap::new();
    for c in g.vertices() {
        let nb = g.neighbors(c);
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                let (u, v) = (nb[i], nb[j]);
                let cd = codeg[&pack_pair(u, v)] as u64;
                if cd > 1 {
                    per_wedge.insert(WedgeKey::new(u, c, v), cd - 1);
                }
            }
        }
    }
    (per_wedge, count_four_cycles(g))
}

/// Heaviness statistics mirroring Definition 4.1 of the paper.
///
/// With `T` the 4-cycle count: an edge is *heavy* if it lies on at least
/// `40√T` 4-cycles; a wedge is *overused* if it lies on at least `40·T^{1/4}`
/// 4-cycles; a wedge is *bad* if overused or containing a heavy edge; a cycle
/// is *good* if it has at least one good (non-bad) wedge. Lemma 4.2 proves
/// the number of good cycles is `Ω(T)` (at least `T/50`).
#[derive(Debug, Clone, PartialEq)]
pub struct FourCycleStats {
    /// Total 4-cycle count `T`.
    pub total: u64,
    /// Max per-edge 4-cycle count.
    pub max_edge_count: u64,
    /// Max per-wedge 4-cycle count.
    pub max_wedge_count: u64,
    /// Number of heavy edges (`≥ 40√T` cycles).
    pub heavy_edges: u64,
    /// Number of overused wedges (`≥ 40·T^{1/4}` cycles).
    pub overused_wedges: u64,
    /// Number of good cycles (≥ 1 good wedge).
    pub good_cycles: u64,
}

impl FourCycleStats {
    /// Compute the Definition-4.1 statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let idx = EdgeIndexMap::new(g);
        let (per_edge, total) = four_cycle_edge_counts(g, &idx);
        let (per_wedge, _) = four_cycle_wedge_counts(g);
        if total == 0 {
            return FourCycleStats {
                total: 0,
                max_edge_count: 0,
                max_wedge_count: 0,
                heavy_edges: 0,
                overused_wedges: 0,
                good_cycles: 0,
            };
        }
        let tf = total as f64;
        let heavy_edge_thresh = 40.0 * tf.sqrt();
        let overused_thresh = 40.0 * tf.powf(0.25);
        let is_heavy_edge =
            |e: crate::ids::EdgeKey| per_edge[idx.index_of(e).unwrap()] as f64 >= heavy_edge_thresh;
        let wedge_cycles = |w: &WedgeKey| per_wedge.get(w).copied().unwrap_or(0);
        let is_bad_wedge = |w: &WedgeKey| {
            let (e1, e2) = w.edges();
            wedge_cycles(w) as f64 >= overused_thresh || is_heavy_edge(e1) || is_heavy_edge(e2)
        };
        let heavy_edges = idx.iter().filter(|&(_, e)| is_heavy_edge(e)).count() as u64;
        let overused_wedges = per_wedge
            .values()
            .filter(|&&c| c as f64 >= overused_thresh)
            .count() as u64;
        let mut good_cycles = 0u64;
        let mut max_edge = 0u64;
        let mut max_wedge = 0u64;
        enumerate_four_cycles(g, |c| {
            if c.wedges().iter().any(|w| !is_bad_wedge(w)) {
                good_cycles += 1;
            }
        });
        for &c in &per_edge {
            max_edge = max_edge.max(c);
        }
        for &c in per_wedge.values() {
            max_wedge = max_wedge.max(c);
        }
        FourCycleStats {
            total,
            max_edge_count: max_edge,
            max_wedge_count: max_wedge,
            heavy_edges,
            overused_wedges,
            good_cycles,
        }
    }
}

/// Brute-force 4-cycle count (`O(n⁴)`), for cross-checking on tiny graphs.
pub fn count_four_cycles_brute(g: &Graph) -> u64 {
    let n = g.vertex_count() as u32;
    let mut total = 0u64;
    // Canonical traversal a-b-c-d with a = min, b < d (kills reflection).
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                continue;
            }
            for c in (a + 1)..n {
                if c == b || !g.has_edge(VertexId(b), VertexId(c)) {
                    continue;
                }
                for d in (b + 1)..n {
                    if d == c
                        || !g.has_edge(VertexId(c), VertexId(d))
                        || !g.has_edge(VertexId(d), VertexId(a))
                    {
                        continue;
                    }
                    total += 1;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_cycle() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(count_four_cycles(&g), 1);
        assert_eq!(count_four_cycles_brute(&g), 1);
    }

    #[test]
    fn complete_graph_formula() {
        // K_n has 3·C(n,4) four-cycles.
        for n in 4..=8u64 {
            let g = gen::complete(n as usize);
            let expect = 3 * n * (n - 1) * (n - 2) * (n - 3) / 24;
            assert_eq!(count_four_cycles(&g), expect, "K{n}");
            assert_eq!(count_four_cycles_brute(&g), expect, "K{n} brute");
        }
    }

    #[test]
    fn complete_bipartite_formula() {
        // K_{a,b} has C(a,2)·C(b,2) four-cycles.
        for (a, b) in [(2u64, 2u64), (3, 4), (4, 4), (2, 5)] {
            let g = gen::complete_bipartite(a as usize, b as usize);
            let expect = (a * (a - 1) / 2) * (b * (b - 1) / 2);
            assert_eq!(count_four_cycles(&g), expect, "K{a},{b}");
        }
    }

    #[test]
    fn count_matches_brute_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..15 {
            let g = gen::gnm(18, 55, &mut rng);
            assert_eq!(
                count_four_cycles(&g),
                count_four_cycles_brute(&g),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn enumeration_is_duplicate_free_and_complete() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnm(16, 50, &mut rng);
        let mut seen = std::collections::HashSet::new();
        enumerate_four_cycles(&g, |c| {
            assert!(seen.insert(c), "duplicate cycle {c:?}");
            let [a, b, cc, d] = c.vertices();
            assert!(g.has_edge(a, b) && g.has_edge(b, cc) && g.has_edge(cc, d) && g.has_edge(d, a));
        });
        assert_eq!(seen.len() as u64, count_four_cycles_brute(&g));
    }

    #[test]
    fn edge_counts_sum_to_four_t() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::gnm(20, 70, &mut rng);
        let idx = EdgeIndexMap::new(&g);
        let (per_edge, total) = four_cycle_edge_counts(&g, &idx);
        assert_eq!(per_edge.iter().sum::<u64>(), 4 * total);
    }

    #[test]
    fn wedge_counts_sum_to_four_t() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = gen::gnm(20, 70, &mut rng);
        let (per_wedge, total) = four_cycle_wedge_counts(&g);
        assert_eq!(per_wedge.values().sum::<u64>(), 4 * total);
    }

    #[test]
    fn wedge_count_is_codegree_minus_one() {
        let g = gen::complete_bipartite(3, 3);
        let (per_wedge, total) = four_cycle_wedge_counts(&g);
        assert_eq!(total, 9);
        // Every wedge leaf pair in K_{3,3} (same side) has codegree 3 -> 2.
        for (&w, &c) in per_wedge.iter().take(3) {
            let _ = w;
            assert_eq!(c, 2);
        }
    }

    #[test]
    fn stats_good_cycles_lower_bound() {
        // Lemma 4.2: |F_G| >= T/50. On moderate graphs every cycle is good
        // because nothing is heavy relative to 40√T.
        let mut rng = StdRng::seed_from_u64(17);
        let g = gen::gnm(40, 250, &mut rng);
        let stats = FourCycleStats::compute(&g);
        assert!(stats.good_cycles * 50 >= stats.total);
        // With thresholds this large and counts this small, all cycles good.
        assert_eq!(stats.good_cycles, stats.total);
        assert_eq!(stats.heavy_edges, 0);
    }

    #[test]
    fn four_cycle_free_graphs() {
        let g = gen::complete(3);
        assert_eq!(count_four_cycles(&g), 0);
        let tree = GraphBuilder::from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]).unwrap();
        assert_eq!(count_four_cycles(&tree), 0);
        let stats = FourCycleStats::compute(&tree);
        assert_eq!(stats.total, 0);
    }
}

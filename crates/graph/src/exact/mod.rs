//! Exact (non-streaming) subgraph counters.
//!
//! Every streaming experiment in this repository compares against these
//! counters, so they are deliberately written three different ways where
//! feasible (fast algorithm, combinatorial formula, brute force) and
//! cross-checked in tests.

pub mod cycles;
pub mod fourcycles;
pub mod girth;
pub mod triangles;
pub mod wedges;

use crate::csr::Graph;
use crate::ids::EdgeKey;

pub use cycles::{count_cycles, enumerate_cycles};
pub use fourcycles::{
    count_four_cycles, enumerate_four_cycles, four_cycle_edge_counts, four_cycle_wedge_counts,
    FourCycleStats,
};
pub use girth::girth;
pub use triangles::{
    count_triangles, count_triangles_brute, enumerate_triangles, triangle_edge_counts,
    triangle_vertex_counts, TriangleStats,
};
pub use wedges::{enumerate_wedges, wedge_count};

/// A compact map from canonical edges to dense indices `0..m`.
///
/// The exact counters hand back per-edge statistics as `Vec`s indexed by this
/// map; binary search over the packed, sorted edge keys keeps lookups
/// allocation-free and cache-friendly.
#[derive(Debug, Clone)]
pub struct EdgeIndexMap {
    packed: Vec<u64>,
}

impl EdgeIndexMap {
    /// Build the index for `g`. Edges are numbered in ascending canonical
    /// `(lo, hi)` order, matching `Graph::edges()` iteration order.
    pub fn new(g: &Graph) -> Self {
        let packed: Vec<u64> = g.edges().map(|e| e.pack()).collect();
        debug_assert!(packed.windows(2).all(|w| w[0] < w[1]));
        EdgeIndexMap { packed }
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the graph had no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Dense index of `e`, or `None` if `e` is not an edge of the graph.
    #[inline]
    pub fn index_of(&self, e: EdgeKey) -> Option<usize> {
        self.packed.binary_search(&e.pack()).ok()
    }

    /// The edge at dense index `i`.
    #[inline]
    pub fn edge_at(&self, i: usize) -> EdgeKey {
        EdgeKey::unpack(self.packed[i])
    }

    /// Iterate `(index, edge)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, EdgeKey)> + '_ {
        self.packed
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, EdgeKey::unpack(p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::VertexId;

    #[test]
    fn edge_index_roundtrip() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let idx = EdgeIndexMap::new(&g);
        assert_eq!(idx.len(), 5);
        for (i, e) in idx.iter() {
            assert_eq!(idx.index_of(e), Some(i));
            assert_eq!(idx.edge_at(i), e);
        }
        assert_eq!(idx.index_of(EdgeKey::new(VertexId(0), VertexId(2))), None);
    }
}

//! Graph substrate for the PODS 2019 adjacency-list streaming reproduction.
//!
//! This crate provides everything the streaming layer and the algorithms need
//! to know about *static* graphs:
//!
//! * a compact [`Graph`] type in CSR (compressed sparse row) form, built
//!   through a validating [`GraphBuilder`],
//! * workload generators in [`gen`] (Erdős–Rényi, Chung–Lu power law, planted
//!   cycle/clique families, projective-plane incidence graphs, and structured
//!   graphs used by the lower-bound gadgets),
//! * exact (non-streaming) subgraph counters in [`exact`] — triangles,
//!   4-cycles, general ℓ-cycles, wedges, per-edge and per-wedge incidence
//!   counts — used as ground truth by every experiment and test,
//! * structural analytics in [`analysis`] (degree statistics, heavy-edge
//!   profiles, girth).
//!
//! All graphs are **simple and undirected**: no self loops, no multi-edges.
//! Vertices are dense `u32` indices. This matches the paper's model, where a
//! stream presents each undirected edge `{x, y}` twice, once in each
//! endpoint's adjacency list.

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod csr;
pub mod exact;
pub mod gen;
pub mod ids;
pub mod import;
pub mod io;

pub use builder::{BuildError, GraphBuilder};
pub use csr::Graph;
pub use ids::{EdgeKey, VertexId};

//! Edge-list I/O in the whitespace-separated format used by SNAP and most
//! graph repositories: one `u v` pair per line, `#` comments ignored.
//!
//! Vertex ids in the file may be arbitrary `u64`s; they are densified to
//! `0..n` on load (the mapping is returned so results can be reported in
//! the original id space). Self-loops are dropped with a count, duplicate
//! edges are deduplicated by the builder — real-world edge lists contain
//! both.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;

/// Outcome of loading an edge list.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The densified graph.
    pub graph: Graph,
    /// Original id of each dense vertex.
    pub original_ids: Vec<u64>,
    /// Self-loops dropped during load.
    pub self_loops_dropped: usize,
    /// Input lines skipped as comments or blanks.
    pub lines_skipped: usize,
}

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment, blank, nor a `u v` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Malformed { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, IoError> {
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut self_loops_dropped = 0usize;
    let mut lines_skipped = 0usize;
    let densify = |raw: u64, ids: &mut HashMap<u64, u32>, orig: &mut Vec<u64>| -> u32 {
        *ids.entry(raw).or_insert_with(|| {
            orig.push(raw);
            (orig.len() - 1) as u32
        })
    };
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            lines_skipped += 1;
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Malformed {
                line: lineno + 1,
                content: line.clone(),
            });
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Malformed {
                line: lineno + 1,
                content: line.clone(),
            });
        };
        if a == b {
            self_loops_dropped += 1;
            continue;
        }
        let da = densify(a, &mut ids, &mut original_ids);
        let db = densify(b, &mut ids, &mut original_ids);
        edges.push((da, db));
    }
    let mut builder = GraphBuilder::with_capacity(original_ids.len(), edges.len());
    for (u, v) in edges {
        builder
            .add_edge(VertexId(u), VertexId(v))
            .expect("densified ids are in range");
    }
    Ok(LoadedGraph {
        graph: builder.build().expect("validated during parse"),
        original_ids,
        self_loops_dropped,
        lines_skipped,
    })
}

/// Load an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph as an edge list (dense ids), one canonical edge per line.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    writeln!(
        w,
        "# adjstream edge list: n={} m={}",
        g.vertex_count(),
        g.edge_count()
    )?;
    for e in g.edges() {
        writeln!(w, "{} {}", e.lo(), e.hi())?;
    }
    w.flush()
}

/// Save a graph to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_through_bytes() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::gnm(50, 200, &mut rng);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let loaded = read_edge_list(&buf[..]).unwrap();
        // Dense ids are assigned in file order, so compare canonical edge
        // sets through the id mapping.
        assert_eq!(loaded.graph.edge_count(), g.edge_count());
        let mut orig_edges: Vec<(u64, u64)> = loaded
            .graph
            .edges()
            .map(|e| {
                let a = loaded.original_ids[e.lo().index()];
                let b = loaded.original_ids[e.hi().index()];
                (a.min(b), a.max(b))
            })
            .collect();
        orig_edges.sort_unstable();
        let mut expect: Vec<(u64, u64)> = g
            .edges()
            .map(|e| (e.lo().0 as u64, e.hi().0 as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(orig_edges, expect);
    }

    #[test]
    fn parses_comments_blanks_and_sparse_ids() {
        let input = "# a comment\n\n1000000 42\n% another comment\n42 7\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.vertex_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 2);
        assert_eq!(loaded.lines_skipped, 3);
        assert_eq!(loaded.original_ids, vec![1_000_000, 42, 7]);
    }

    #[test]
    fn drops_self_loops_and_dedupes() {
        let input = "1 1\n1 2\n2 1\n1 2\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.self_loops_dropped, 1);
        assert_eq!(loaded.graph.edge_count(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list("1 2\nnot numbers\n".as_bytes()).unwrap_err();
        match err {
            IoError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
        let err = read_edge_list("3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Malformed { line: 1, .. }));
    }

    #[test]
    fn file_roundtrip() {
        let g = gen::complete(6);
        let path =
            std::env::temp_dir().join(format!("adjstream-io-test-{}.txt", std::process::id()));
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.graph.edge_count(), 15);
        assert_eq!(loaded.graph.vertex_count(), 6);
    }
}

//! Validating construction of [`Graph`]s from edge lists.

use crate::csr::Graph;
use crate::ids::{EdgeKey, VertexId};

/// Errors raised while assembling a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: VertexId,
        /// The vertex-count bound it violated.
        n: usize,
    },
    /// A self-loop `{v, v}` was added; the model forbids loops.
    SelfLoop {
        /// The looped vertex.
        vertex: VertexId,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for n={n}")
            }
            BuildError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates edges and produces a validated CSR [`Graph`].
///
/// Duplicate edges are tolerated and deduplicated (generators sometimes
/// produce collisions); self-loops and out-of-range endpoints are errors.
///
/// ```
/// use adjstream_graph::{GraphBuilder, VertexId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1)).unwrap();
/// b.add_edge(VertexId(1), VertexId(2)).unwrap();
/// b.add_edge(VertexId(2), VertexId(1)).unwrap(); // duplicate, deduped
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<EdgeKey>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// A builder expecting roughly `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{u, v}`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), BuildError> {
        if u == v {
            return Err(BuildError::SelfLoop { vertex: u });
        }
        for w in [u, v] {
            if w.index() >= self.n {
                return Err(BuildError::VertexOutOfRange {
                    vertex: w,
                    n: self.n,
                });
            }
        }
        self.edges.push(EdgeKey::new(u, v));
        Ok(())
    }

    /// Add every edge in `it`.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        it: I,
    ) -> Result<(), BuildError> {
        for (u, v) in it {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Current number of (possibly duplicate) accumulated edges.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finish: sort, dedupe, and build the CSR arrays.
    pub fn build(mut self) -> Result<Graph, BuildError> {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut degrees = vec![0usize; n];
        for e in &self.edges {
            degrees[e.lo().index()] += 1;
            degrees[e.hi().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degrees[v]);
        }
        let total = offsets[n];
        let mut neighbors = vec![VertexId(0); total];
        // Fill positions; `cursor` walks each vertex's slot range.
        let mut cursor = offsets.clone();
        for e in &self.edges {
            let (lo, hi) = e.endpoints();
            neighbors[cursor[lo.index()]] = hi;
            cursor[lo.index()] += 1;
            neighbors[cursor[hi.index()]] = lo;
            cursor[hi.index()] += 1;
        }
        // Edges were globally sorted by (lo, hi): for a fixed `lo` the `hi`
        // side fills ascending, but the `lo`-as-neighbor entries written into
        // `hi`'s list also arrive ascending in `lo`... however both kinds
        // interleave within one vertex's list, so sort each list to be safe.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(Graph::from_parts(offsets, neighbors))
    }

    /// Convenience: build a graph straight from an edge list.
    pub fn from_edges<I>(n: usize, it: I) -> Result<Graph, BuildError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in it {
            b.add_edge(VertexId(u), VertexId(v))?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(v(1), v(1)),
            Err(BuildError::SelfLoop { vertex: v(1) })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(v(0), v(3)),
            Err(BuildError::VertexOutOfRange { vertex: v(3), n: 3 })
        );
    }

    #[test]
    fn dedupes_parallel_edges() {
        let g = GraphBuilder::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(v(0)), 1);
    }

    #[test]
    fn builds_sorted_adjacency() {
        let g = GraphBuilder::from_edges(5, [(4, 0), (2, 0), (0, 3), (1, 0)]).unwrap();
        assert_eq!(g.neighbors(v(0)), &[v(1), v(2), v(3), v(4)]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn error_display_is_informative() {
        let e = BuildError::SelfLoop { vertex: v(7) };
        assert!(e.to_string().contains('7'));
        let e = BuildError::VertexOutOfRange { vertex: v(9), n: 4 };
        assert!(e.to_string().contains("n=4"));
    }

    #[test]
    fn from_edges_large_star() {
        let n = 1000;
        let g = GraphBuilder::from_edges(n, (1..n as u32).map(|i| (0, i))).unwrap();
        assert_eq!(g.degree(v(0)), n - 1);
        assert_eq!(g.edge_count(), n - 1);
        assert_eq!(g.wedge_count(), ((n - 1) * (n - 2) / 2) as u64);
    }
}

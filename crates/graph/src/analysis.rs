//! Structural analytics used by the experiment harness for reporting.

use crate::csr::Graph;

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Number of isolated vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Compute degree statistics; `n = 0` yields all-zero stats.
    pub fn compute(g: &Graph) -> Self {
        let n = g.vertex_count();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                isolated: 0,
            };
        }
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        DegreeStats {
            min: degs[0],
            max: degs[n - 1],
            mean: 2.0 * g.edge_count() as f64 / n as f64,
            median: degs[n / 2],
            isolated: degs.iter().take_while(|&&d| d == 0).count(),
        }
    }
}

/// The quantity `m / T^{2/3}` — the paper's two-pass triangle space bound —
/// for reporting expected sample sizes. Returns `m` when `t == 0`.
pub fn triangle_two_pass_budget(m: usize, t: u64) -> f64 {
    if t == 0 {
        m as f64
    } else {
        m as f64 / (t as f64).powf(2.0 / 3.0)
    }
}

/// `m / √T`, the one-pass triangle bound.
pub fn triangle_one_pass_budget(m: usize, t: u64) -> f64 {
    if t == 0 {
        m as f64
    } else {
        m as f64 / (t as f64).sqrt()
    }
}

/// `m^{3/2} / T`, the multipass arbitrary-order bound used as a baseline row.
pub fn triangle_three_pass_budget(m: usize, t: u64) -> f64 {
    if t == 0 {
        m as f64
    } else {
        (m as f64).powf(1.5) / t as f64
    }
}

/// `m / T^{3/8}`, the two-pass 4-cycle bound.
pub fn four_cycle_budget(m: usize, t: u64) -> f64 {
    if t == 0 {
        m as f64
    } else {
        m as f64 / (t as f64).powf(3.0 / 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;

    #[test]
    fn degree_stats_basic() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (1, 3)]).unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert_eq!(s.isolated, 1);
        assert!((s.mean - 6.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_regular() {
        let g = gen::cycle(8);
        let s = DegreeStats::compute(&g);
        assert_eq!((s.min, s.max, s.median), (2, 2, 2));
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn budgets_scale_correctly() {
        assert_eq!(triangle_two_pass_budget(1000, 0), 1000.0);
        let b1 = triangle_two_pass_budget(1_000_000, 1000);
        assert!((b1 - 10_000.0).abs() < 1e-6); // 10^6 / 10^2
        let b2 = triangle_one_pass_budget(1_000_000, 10_000);
        assert!((b2 - 10_000.0).abs() < 1e-6);
        let b3 = triangle_three_pass_budget(10_000, 100);
        assert!((b3 - 10_000.0).abs() < 1e-6);
        let b4 = four_cycle_budget(1 << 16, 1 << 16);
        assert!((b4 - 2f64.powf(16.0 - 6.0)).abs() < 1e-6);
    }
}

/// Connected components: labels (`labels[v] = component id`, ids dense from
/// 0 in discovery order) and the component count.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.vertex_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if labels[s] != u32::MAX {
            continue;
        }
        labels[s] = next;
        stack.push(s as u32);
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(crate::ids::VertexId(v)) {
                if labels[w.index()] == u32::MAX {
                    labels[w.index()] = next;
                    stack.push(w.0);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Degeneracy (the maximum `k` such that a `k`-core exists) and a
/// degeneracy ordering, via linear-time peeling (Matula–Beck).
///
/// The degeneracy bounds the forward-algorithm work of the exact triangle
/// counter and characterizes how clustered a workload is; the harness
/// reports it alongside heavy-edge statistics.
pub fn degeneracy(g: &Graph) -> (usize, Vec<crate::ids::VertexId>) {
    let n = g.vertex_count();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut deg: Vec<usize> = (0..n)
        .map(|v| g.degree(crate::ids::VertexId(v as u32)))
        .collect();
    let max_d = deg.iter().copied().max().unwrap_or(0);
    // Bucket queue over current degrees.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_d + 1];
    for (v, &d) in deg.iter().enumerate() {
        buckets[d].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket; the cursor can retreat by at
        // most one per removal, so start one below the last position.
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1;
        }
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Pop a vertex with current minimum degree (skip stale entries).
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && deg[v as usize] == cursor => break v,
                Some(_) => continue,
                None => {
                    // Bucket ran dry of live entries; rescan.
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        degeneracy = degeneracy.max(cursor);
        removed[v as usize] = true;
        order.push(crate::ids::VertexId(v));
        for &w in g.neighbors(crate::ids::VertexId(v)) {
            if !removed[w.index()] {
                let d = deg[w.index()];
                deg[w.index()] = d - 1;
                buckets[d - 1].push(w.0);
            }
        }
    }
    (degeneracy, order)
}

#[cfg(test)]
mod structure_tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen;

    #[test]
    fn components_of_disjoint_union() {
        let g = gen::complete(4).disjoint_union(&gen::cycle(5));
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert!(labels[..4].iter().all(|&l| l == labels[0]));
        assert!(labels[4..].iter().all(|&l| l == labels[4]));
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let g = GraphBuilder::from_edges(5, [(0, 1)]).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 4);
    }

    #[test]
    fn degeneracy_of_standard_families() {
        assert_eq!(degeneracy(&gen::complete(6)).0, 5);
        assert_eq!(degeneracy(&gen::cycle(8)).0, 2);
        assert_eq!(degeneracy(&gen::star(9)).0, 1);
        let tree = GraphBuilder::from_edges(6, [(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]).unwrap();
        assert_eq!(degeneracy(&tree).0, 1);
        assert_eq!(degeneracy(&gen::complete_bipartite(3, 7)).0, 3);
        assert_eq!(degeneracy(&crate::Graph::empty(4)).0, 0);
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation_witnessing_the_bound() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::gnm(60, 300, &mut rng);
        let (d, order) = degeneracy(&g);
        assert_eq!(order.len(), 60);
        let mut seen = [false; 60];
        for v in &order {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        // Each vertex has at most `d` neighbors later in the order.
        let mut pos = vec![0usize; 60];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (i, v) in order.iter().enumerate() {
            let later = g
                .neighbors(*v)
                .iter()
                .filter(|w| pos[w.index()] > i)
                .count();
            assert!(later <= d, "vertex {v}: {later} later neighbors > {d}");
        }
    }
}

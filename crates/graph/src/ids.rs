//! Vertex and edge identifiers.
//!
//! Vertices are dense `u32` indices into a graph's CSR arrays. Edges are
//! identified by their *canonical key*: the ordered pair `(min, max)` of their
//! endpoints. The canonical key is what streaming samplers hash, so that both
//! stream appearances of an undirected edge (`xy` and `yx`) map to the same
//! sampling decision.

use std::fmt;

/// A vertex identifier: a dense index in `0..n`.
///
/// The newtype exists to keep vertex indices from being confused with counts,
/// positions in the stream, or sample sizes, all of which are also integers
/// and all of which circulate through the same algorithms.
///
/// `repr(transparent)` guarantees the layout *is* a `u32`, which the binary
/// trace reader relies on to reinterpret little-endian `(u32, u32)` pair
/// buffers as stream items without a decode pass.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

/// Canonical identifier of an undirected edge: endpoints sorted ascending.
///
/// Both `EdgeKey::new(u, v)` and `EdgeKey::new(v, u)` produce the same key.
/// Self-loops are rejected in debug builds (the model forbids them).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeKey {
    lo: VertexId,
    hi: VertexId,
}

impl EdgeKey {
    /// Canonicalize `{u, v}`; panics (debug) on a self-loop.
    #[inline]
    pub fn new(u: VertexId, v: VertexId) -> Self {
        debug_assert_ne!(u, v, "self-loops are not representable");
        if u.0 <= v.0 {
            EdgeKey { lo: u, hi: v }
        } else {
            EdgeKey { lo: v, hi: u }
        }
    }

    /// Smaller endpoint.
    #[inline]
    pub fn lo(self) -> VertexId {
        self.lo
    }

    /// Larger endpoint.
    #[inline]
    pub fn hi(self) -> VertexId {
        self.hi
    }

    /// Both endpoints, ascending.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.lo, self.hi)
    }

    /// Whether `v` is one of the endpoints.
    #[inline]
    pub fn touches(self, v: VertexId) -> bool {
        self.lo == v || self.hi == v
    }

    /// Given one endpoint, return the other; `None` if `v` is not an endpoint.
    #[inline]
    pub fn other(self, v: VertexId) -> Option<VertexId> {
        if v == self.lo {
            Some(self.hi)
        } else if v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Pack into a `u64` (`lo` in the high half). The packing is strictly
    /// monotone in `(lo, hi)` order, so it can double as a sort key, and it is
    /// what the samplers hash.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.lo.0 as u64) << 32) | self.hi.0 as u64
    }

    /// Inverse of [`EdgeKey::pack`].
    #[inline]
    pub fn unpack(packed: u64) -> Self {
        let lo = VertexId((packed >> 32) as u32);
        let hi = VertexId(packed as u32);
        debug_assert!(lo.0 < hi.0);
        EdgeKey { lo, hi }
    }
}

impl fmt::Debug for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e({},{})", self.lo.0, self.hi.0)
    }
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{},{}}}", self.lo.0, self.hi.0)
    }
}

/// Canonical identifier of a wedge (path of length two) `u — center — v`.
///
/// The two leaf endpoints are stored in ascending order; the center is kept
/// separately. `WedgeKey::new(u, c, v) == WedgeKey::new(v, c, u)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WedgeKey {
    /// Smaller leaf endpoint.
    pub a: VertexId,
    /// Larger leaf endpoint.
    pub b: VertexId,
    /// Center vertex, adjacent to both leaves.
    pub center: VertexId,
}

impl WedgeKey {
    /// Canonicalize the wedge `u — center — v`.
    #[inline]
    pub fn new(u: VertexId, center: VertexId, v: VertexId) -> Self {
        debug_assert_ne!(u, v, "a wedge has two distinct leaves");
        debug_assert_ne!(u, center);
        debug_assert_ne!(v, center);
        let (a, b) = if u.0 <= v.0 { (u, v) } else { (v, u) };
        WedgeKey { a, b, center }
    }

    /// The two edges making up the wedge.
    #[inline]
    pub fn edges(self) -> (EdgeKey, EdgeKey) {
        (
            EdgeKey::new(self.a, self.center),
            EdgeKey::new(self.b, self.center),
        )
    }

    /// Leaf endpoints (ascending).
    #[inline]
    pub fn leaves(self) -> (VertexId, VertexId) {
        (self.a, self.b)
    }
}

impl fmt::Debug for WedgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w({}-{}-{})", self.a.0, self.center.0, self.b.0)
    }
}

/// Canonical identifier of a triangle: its vertices sorted ascending.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TriangleKey {
    verts: [VertexId; 3],
}

impl TriangleKey {
    /// Canonicalize the triangle on `{u, v, w}`.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, w: VertexId) -> Self {
        debug_assert!(u != v && v != w && u != w);
        let mut verts = [u, v, w];
        verts.sort_unstable();
        TriangleKey { verts }
    }

    /// Vertices in ascending order.
    #[inline]
    pub fn vertices(self) -> [VertexId; 3] {
        self.verts
    }

    /// The three edges of the triangle.
    #[inline]
    pub fn edges(self) -> [EdgeKey; 3] {
        let [a, b, c] = self.verts;
        [EdgeKey::new(a, b), EdgeKey::new(a, c), EdgeKey::new(b, c)]
    }

    /// The vertex opposite edge `e` (the paper's `τ^{-e}`); `None` if `e` is
    /// not an edge of this triangle.
    #[inline]
    pub fn apex(self, e: EdgeKey) -> Option<VertexId> {
        let [a, b, c] = self.verts;
        let (lo, hi) = e.endpoints();
        if lo == a && hi == b {
            Some(c)
        } else if lo == a && hi == c {
            Some(b)
        } else if lo == b && hi == c {
            Some(a)
        } else {
            None
        }
    }

    /// Whether `v` is one of the triangle's vertices.
    #[inline]
    pub fn contains(self, v: VertexId) -> bool {
        self.verts.contains(&v)
    }
}

impl fmt::Debug for TriangleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c] = self.verts;
        write!(f, "t({},{},{})", a.0, b.0, c.0)
    }
}

/// Canonical identifier of a 4-cycle.
///
/// A 4-cycle `a—b—c—d—a` is determined by its two *diagonal pairs*
/// `{a, c}` and `{b, d}` (opposite vertices). We canonicalize by storing the
/// pair containing the globally smallest vertex first, each pair sorted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FourCycleKey {
    /// Diagonal pair containing the smallest vertex, sorted ascending.
    p: [VertexId; 2],
    /// The other diagonal pair, sorted ascending.
    q: [VertexId; 2],
}

impl FourCycleKey {
    /// Canonicalize the 4-cycle with diagonals `{a, c}` and `{b, d}` — i.e.
    /// the cycle `a—b—c—d—a`.
    #[inline]
    pub fn from_diagonals(a: VertexId, c: VertexId, b: VertexId, d: VertexId) -> Self {
        debug_assert!(a != c && b != d);
        let mut p = [a, c];
        p.sort_unstable();
        let mut q = [b, d];
        q.sort_unstable();
        if p[0].0 <= q[0].0 {
            FourCycleKey { p, q }
        } else {
            FourCycleKey { p: q, q: p }
        }
    }

    /// Canonicalize from a traversal `a—b—c—d—a`.
    #[inline]
    pub fn from_path(a: VertexId, b: VertexId, c: VertexId, d: VertexId) -> Self {
        Self::from_diagonals(a, c, b, d)
    }

    /// The four vertices (in diagonal-pair order `[p0, q0, p1, q1]` such that
    /// consecutive entries are adjacent on the cycle).
    #[inline]
    pub fn vertices(self) -> [VertexId; 4] {
        [self.p[0], self.q[0], self.p[1], self.q[1]]
    }

    /// The four edges of the cycle.
    #[inline]
    pub fn edges(self) -> [EdgeKey; 4] {
        let [a, b, c, d] = self.vertices();
        [
            EdgeKey::new(a, b),
            EdgeKey::new(b, c),
            EdgeKey::new(c, d),
            EdgeKey::new(d, a),
        ]
    }

    /// The four wedges of the cycle (each centered at one cycle vertex).
    #[inline]
    pub fn wedges(self) -> [WedgeKey; 4] {
        let [a, b, c, d] = self.vertices();
        [
            WedgeKey::new(d, a, b),
            WedgeKey::new(a, b, c),
            WedgeKey::new(b, c, d),
            WedgeKey::new(c, d, a),
        ]
    }
}

impl fmt::Debug for FourCycleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.vertices();
        write!(f, "c4({},{},{},{})", a.0, b.0, c.0, d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn edge_key_canonicalizes() {
        assert_eq!(EdgeKey::new(v(3), v(1)), EdgeKey::new(v(1), v(3)));
        let e = EdgeKey::new(v(7), v(2));
        assert_eq!(e.lo(), v(2));
        assert_eq!(e.hi(), v(7));
        assert_eq!(e.endpoints(), (v(2), v(7)));
    }

    #[test]
    fn edge_key_other_endpoint() {
        let e = EdgeKey::new(v(4), v(9));
        assert_eq!(e.other(v(4)), Some(v(9)));
        assert_eq!(e.other(v(9)), Some(v(4)));
        assert_eq!(e.other(v(5)), None);
        assert!(e.touches(v(4)) && e.touches(v(9)) && !e.touches(v(0)));
    }

    #[test]
    fn edge_key_pack_roundtrip() {
        let e = EdgeKey::new(v(123_456), v(7));
        assert_eq!(EdgeKey::unpack(e.pack()), e);
        // Packing is monotone in (lo, hi).
        let a = EdgeKey::new(v(1), v(2)).pack();
        let b = EdgeKey::new(v(1), v(3)).pack();
        let c = EdgeKey::new(v(2), v(3)).pack();
        assert!(a < b && b < c);
    }

    #[test]
    fn wedge_key_canonicalizes_leaves() {
        let w1 = WedgeKey::new(v(5), v(2), v(9));
        let w2 = WedgeKey::new(v(9), v(2), v(5));
        assert_eq!(w1, w2);
        assert_eq!(w1.leaves(), (v(5), v(9)));
        let (e1, e2) = w1.edges();
        assert_eq!(e1, EdgeKey::new(v(2), v(5)));
        assert_eq!(e2, EdgeKey::new(v(2), v(9)));
    }

    #[test]
    fn triangle_key_apex() {
        let t = TriangleKey::new(v(5), v(1), v(3));
        assert_eq!(t.vertices(), [v(1), v(3), v(5)]);
        assert_eq!(t.apex(EdgeKey::new(v(1), v(3))), Some(v(5)));
        assert_eq!(t.apex(EdgeKey::new(v(5), v(1))), Some(v(3)));
        assert_eq!(t.apex(EdgeKey::new(v(3), v(5))), Some(v(1)));
        assert_eq!(t.apex(EdgeKey::new(v(1), v(9))), None);
    }

    #[test]
    fn triangle_key_edges_are_canonical() {
        let t = TriangleKey::new(v(9), v(4), v(6));
        let es = t.edges();
        assert_eq!(es[0], EdgeKey::new(v(4), v(6)));
        assert_eq!(es[1], EdgeKey::new(v(4), v(9)));
        assert_eq!(es[2], EdgeKey::new(v(6), v(9)));
    }

    #[test]
    fn four_cycle_key_rotations_and_reflections_agree() {
        // Cycle 1—2—3—4.
        let base = FourCycleKey::from_path(v(1), v(2), v(3), v(4));
        // All 8 traversals of the same cycle.
        let traversals = [
            (1, 2, 3, 4),
            (2, 3, 4, 1),
            (3, 4, 1, 2),
            (4, 1, 2, 3),
            (4, 3, 2, 1),
            (3, 2, 1, 4),
            (2, 1, 4, 3),
            (1, 4, 3, 2),
        ];
        for (a, b, c, d) in traversals {
            assert_eq!(FourCycleKey::from_path(v(a), v(b), v(c), v(d)), base);
        }
        // A different cycle on the same vertices is a different key.
        let other = FourCycleKey::from_path(v(1), v(3), v(2), v(4));
        assert_ne!(other, base);
    }

    #[test]
    fn four_cycle_key_edges_and_wedges() {
        let k = FourCycleKey::from_path(v(1), v(2), v(3), v(4));
        let mut es = k.edges().to_vec();
        es.sort_unstable();
        let mut expect = vec![
            EdgeKey::new(v(1), v(2)),
            EdgeKey::new(v(2), v(3)),
            EdgeKey::new(v(3), v(4)),
            EdgeKey::new(v(4), v(1)),
        ];
        expect.sort_unstable();
        assert_eq!(es, expect);
        assert_eq!(k.wedges().len(), 4);
        // Each wedge is centered at a distinct cycle vertex.
        let mut centers: Vec<u32> = k.wedges().iter().map(|w| w.center.0).collect();
        centers.sort_unstable();
        assert_eq!(centers, vec![1, 2, 3, 4]);
    }
}

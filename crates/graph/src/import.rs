//! Streaming SNAP edge-list importer: bounded-memory external grouping.
//!
//! [`read_edge_list`](crate::io::read_edge_list) materializes the whole
//! graph before anything downstream can run, which caps imports at the
//! machine's RAM. Real corpora (SNAP exports routinely reach 10⁸ edges)
//! need the adjacency-list *stream* — each undirected edge once per
//! endpoint's list, lists contiguous — without ever holding the edge set
//! in memory. This module provides that: a single parse pass scatters
//! 8-byte `(owner, neighbor)` records into on-disk buckets partitioned by
//! a seeded hash of the list-owner vertex, then each bucket is loaded,
//! stably sorted, grouped, and emitted in turn. Peak memory is
//! `O(vertices + items / buckets)` — the id-densification map plus one
//! bucket — independent of the edge count.
//!
//! Determinism: the emitted list order is ascending `(key(owner), owner)`
//! where `key` is a SplitMix64 hash of the seed and the owner's dense id.
//! Buckets partition the *key range* monotonically (multiply-shift), so
//! concatenating buckets `0..B` in order yields the same global order for
//! every bucket count: output bytes are a pure function of the input text
//! and the seed. Within each list, neighbors keep input-appearance order
//! (the scatter appends in input order and the per-bucket sort is stable).
//!
//! Policy flags handle the two ways real edge lists deviate from the
//! model's simple-graph promise: duplicate edges (including files that
//! list both `x y` and `y x` — the scatter emits both directions for every
//! input line, so either spelling of a repeat surfaces as a duplicate
//! neighbor in both lists) and self-loops. Each can be dropped (default),
//! kept (producing a trace that deliberately violates the promise, for
//! guard/fault corpora), or treated as a hard error.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use crate::VertexId;

/// Importer semantics version. Bump whenever the grouping order, the
/// bucketing key, or a policy's observable output changes — cached
/// imported fixtures (the nightly corpus workflow keys its cache on this
/// value) must be invalidated when the bytes an import produces change.
pub const IMPORT_VERSION: u32 = 1;

/// What to do with a duplicate edge (the same undirected edge appearing
/// more than once in the input, in either orientation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DupPolicy {
    /// Keep the first occurrence, silently drop repeats (counted in
    /// [`ImportStats::duplicate_items_dropped`]). The default: SNAP
    /// exports commonly list an edge once per direction.
    #[default]
    Drop,
    /// Keep every occurrence. The resulting trace has duplicate neighbors
    /// and violates the simple-graph promise — useful as guard-test input.
    Keep,
    /// Fail the import on the first duplicate.
    Error,
}

/// What to do with a self-loop (`x x`) in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Drop it (counted in [`ImportStats::self_loops_dropped`]). Default.
    #[default]
    Drop,
    /// Emit it as a single `(x, x)` item in `x`'s list. Violates the
    /// promise; useful as guard-test input.
    Keep,
    /// Fail the import on the first self-loop.
    Error,
}

impl DupPolicy {
    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<DupPolicy> {
        Some(match s {
            "drop" => DupPolicy::Drop,
            "keep" => DupPolicy::Keep,
            "error" => DupPolicy::Error,
            _ => return None,
        })
    }
}

impl SelfLoopPolicy {
    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<SelfLoopPolicy> {
        Some(match s {
            "drop" => SelfLoopPolicy::Drop,
            "keep" => SelfLoopPolicy::Keep,
            "error" => SelfLoopPolicy::Error,
            _ => return None,
        })
    }
}

/// Importer knobs.
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// Seed for the list-order key. Same input + same seed ⇒ identical
    /// output bytes; different seeds permute the list order.
    pub seed: u64,
    /// On-disk scatter buckets. More buckets shrink the per-bucket
    /// in-memory working set (`≈ items / buckets` records); the output is
    /// byte-identical for every bucket count ≥ 1.
    pub buckets: usize,
    /// Duplicate-edge policy.
    pub dups: DupPolicy,
    /// Self-loop policy.
    pub self_loops: SelfLoopPolicy,
    /// Directory for the scatter buckets; `None` uses the system temp dir.
    pub tmp_dir: Option<PathBuf>,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            seed: 2019,
            buckets: 64,
            dups: DupPolicy::default(),
            self_loops: SelfLoopPolicy::default(),
            tmp_dir: None,
        }
    }
}

/// What an import read, dropped, and emitted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Input lines read (including comments and blanks).
    pub lines: u64,
    /// Comment / blank lines skipped.
    pub lines_skipped: u64,
    /// Edge lines parsed (before any policy applied).
    pub edges_read: u64,
    /// Distinct vertices seen.
    pub vertices: u32,
    /// Directed stream items emitted.
    pub items: u64,
    /// Adjacency lists emitted (vertices with at least one neighbor).
    pub lists: u64,
    /// Directed items dropped by [`DupPolicy::Drop`] (two per duplicate
    /// undirected edge — one from each endpoint's list).
    pub duplicate_items_dropped: u64,
    /// Self-loop lines dropped by [`SelfLoopPolicy::Drop`].
    pub self_loops_dropped: u64,
}

/// Why an import failed.
#[derive(Debug)]
pub enum ImportError {
    /// The underlying I/O failed (input, scatter buckets, or output).
    Io(io::Error),
    /// A non-comment line did not parse as two integer vertex ids.
    Malformed {
        /// 1-based input line number.
        line: u64,
        /// The offending line (truncated for display).
        content: String,
    },
    /// A duplicate edge under [`DupPolicy::Error`].
    DuplicateEdge {
        /// Raw input ids of the repeated edge.
        edge: (u64, u64),
    },
    /// A self-loop under [`SelfLoopPolicy::Error`].
    SelfLoop {
        /// 1-based input line number.
        line: u64,
        /// The looping raw id.
        id: u64,
    },
    /// More than `u32::MAX` distinct vertices.
    TooManyVertices,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "import I/O error: {e}"),
            ImportError::Malformed { line, content } => {
                write!(f, "line {line}: expected two integer ids, got {content:?}")
            }
            ImportError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge {} {} (policy: error)", edge.0, edge.1)
            }
            ImportError::SelfLoop { line, id } => {
                write!(f, "line {line}: self-loop {id} {id} (policy: error)")
            }
            ImportError::TooManyVertices => write!(f, "more than 2^32 - 1 distinct vertices"),
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ImportError {
    fn from(e: io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// SplitMix64 finalizer — the list-order key. Pure in `(seed, owner)`.
fn order_key(seed: u64, owner: u32) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(owner).wrapping_mul(0x2545_F491_4F6C_DD1D));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Monotone range partition: `key ↦ floor(key · buckets / 2⁶⁴)`. Bucket
/// indices are non-decreasing in the key, which is what makes the output
/// independent of the bucket count.
fn bucket_of(key: u64, buckets: usize) -> usize {
    ((u128::from(key) * buckets as u128) >> 64) as usize
}

/// The on-disk scatter area: one record file per bucket, removed on drop.
struct Buckets {
    dir: PathBuf,
    writers: Vec<BufWriter<File>>,
}

impl Buckets {
    fn create(cfg: &ImportConfig) -> io::Result<Buckets> {
        let base = cfg.tmp_dir.clone().unwrap_or_else(std::env::temp_dir);
        // A collision-resistant-enough name without a clock: pid plus a
        // process-wide counter.
        static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = base.join(format!(
            "adjb-import-{}-{}-{:x}",
            std::process::id(),
            nonce,
            cfg.seed
        ));
        std::fs::create_dir_all(&dir)?;
        let mut writers = Vec::with_capacity(cfg.buckets);
        for b in 0..cfg.buckets.max(1) {
            let f = File::create(dir.join(format!("bucket-{b:04}.rec")))?;
            writers.push(BufWriter::new(f));
        }
        Ok(Buckets { dir, writers })
    }

    fn scatter(&mut self, key: u64, owner: u32, neighbor: u32) -> io::Result<()> {
        let b = bucket_of(key, self.writers.len());
        let mut rec = [0u8; 8];
        rec[..4].copy_from_slice(&owner.to_le_bytes());
        rec[4..].copy_from_slice(&neighbor.to_le_bytes());
        self.writers[b].write_all(&rec)
    }

    fn load(&mut self, b: usize) -> io::Result<Vec<(u32, u32)>> {
        self.writers[b].flush()?;
        let path = self.dir.join(format!("bucket-{b:04}.rec"));
        let mut reader = BufReader::new(File::open(&path)?);
        let mut records = Vec::new();
        let mut rec = [0u8; 8];
        loop {
            match reader.read_exact(&mut rec) {
                Ok(()) => records.push((
                    u32::from_le_bytes(rec[..4].try_into().expect("4 bytes")),
                    u32::from_le_bytes(rec[4..].try_into().expect("4 bytes")),
                )),
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
        }
        Ok(records)
    }
}

impl Drop for Buckets {
    fn drop(&mut self) {
        self.writers.clear(); // close handles before unlinking
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Stream a SNAP-style edge list into grouped adjacency lists.
///
/// `emit` is called once per non-empty list, in the final stream order
/// (ascending `(order_key, owner)`), with the owner's dense id and its
/// neighbors. Raw u64 input ids are densified to `0..vertices` in
/// first-appearance order; the mapping is returned alongside the stats as
/// `original_ids[dense] = raw`.
///
/// Memory: `O(vertices)` for the id map plus `O(items / buckets)` for the
/// bucket being grouped. Everything else stays on disk.
pub fn import_edge_list<R, F>(
    input: R,
    cfg: &ImportConfig,
    mut emit: F,
) -> Result<(ImportStats, Vec<u64>), ImportError>
where
    R: BufRead,
    F: FnMut(VertexId, &[VertexId]) -> Result<(), ImportError>,
{
    let mut stats = ImportStats::default();
    let mut dense: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut buckets = Buckets::create(cfg)?;

    // Phase 1: parse and scatter both directions of every kept edge.
    let mut line_no = 0u64;
    for line in input.lines() {
        let line = line?;
        line_no += 1;
        stats.lines = line_no;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            stats.lines_skipped += 1;
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(malformed(line_no, trimmed));
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(malformed(line_no, trimmed));
        };
        stats.edges_read += 1;
        if a == b {
            match cfg.self_loops {
                SelfLoopPolicy::Drop => {
                    stats.self_loops_dropped += 1;
                    continue;
                }
                SelfLoopPolicy::Error => {
                    return Err(ImportError::SelfLoop {
                        line: line_no,
                        id: a,
                    })
                }
                SelfLoopPolicy::Keep => {
                    let x = densify(a, &mut dense, &mut original_ids)?;
                    buckets.scatter(order_key(cfg.seed, x), x, x)?;
                    continue;
                }
            }
        }
        let u = densify(a, &mut dense, &mut original_ids)?;
        let v = densify(b, &mut dense, &mut original_ids)?;
        buckets.scatter(order_key(cfg.seed, u), u, v)?;
        buckets.scatter(order_key(cfg.seed, v), v, u)?;
    }
    stats.vertices = original_ids.len() as u32;

    // Phase 2: group each bucket, dedup per policy, emit in key order.
    let mut list: Vec<VertexId> = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for b in 0..buckets.writers.len() {
        let mut records = buckets.load(b)?;
        // Stable sort keeps input-appearance order within each list.
        records.sort_by_key(|&(owner, _)| (order_key(cfg.seed, owner), owner));
        let mut i = 0;
        while i < records.len() {
            let owner = records[i].0;
            list.clear();
            seen.clear();
            while i < records.len() && records[i].0 == owner {
                let nb = records[i].1;
                i += 1;
                let duplicate = seen.insert(nb, ()).is_some();
                // A kept self-loop appears once per input line; repeats of
                // it are duplicates like any other neighbor.
                if duplicate {
                    match cfg.dups {
                        DupPolicy::Drop => {
                            stats.duplicate_items_dropped += 1;
                            continue;
                        }
                        DupPolicy::Error => {
                            return Err(ImportError::DuplicateEdge {
                                edge: (original_ids[owner as usize], original_ids[nb as usize]),
                            })
                        }
                        DupPolicy::Keep => {}
                    }
                }
                list.push(VertexId(nb));
            }
            if !list.is_empty() {
                stats.lists += 1;
                stats.items += list.len() as u64;
                emit(VertexId(owner), &list)?;
            }
        }
    }
    Ok((stats, original_ids))
}

fn densify(
    raw: u64,
    dense: &mut HashMap<u64, u32>,
    original_ids: &mut Vec<u64>,
) -> Result<u32, ImportError> {
    if let Some(&d) = dense.get(&raw) {
        return Ok(d);
    }
    if original_ids.len() >= u32::MAX as usize {
        return Err(ImportError::TooManyVertices);
    }
    let d = original_ids.len() as u32;
    dense.insert(raw, d);
    original_ids.push(raw);
    Ok(d)
}

fn malformed(line: u64, content: &str) -> ImportError {
    let mut content = content.to_string();
    content.truncate(80);
    ImportError::Malformed { line, content }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    type Collected = (ImportStats, Vec<u64>, Vec<(u32, Vec<u32>)>);

    fn collect(text: &str, cfg: &ImportConfig) -> Result<Collected, ImportError> {
        let mut lists = Vec::new();
        let (stats, ids) = import_edge_list(Cursor::new(text.as_bytes()), cfg, |owner, nbrs| {
            lists.push((owner.0, nbrs.iter().map(|v| v.0).collect()));
            Ok(())
        })?;
        Ok((stats, ids, lists))
    }

    #[test]
    fn groups_both_directions_of_every_edge() {
        let (stats, ids, lists) = collect("# c\n10 20\n20 30\n", &ImportConfig::default()).unwrap();
        assert_eq!(stats.edges_read, 2);
        assert_eq!(stats.items, 4);
        assert_eq!(stats.lists, 3);
        assert_eq!(ids, vec![10, 20, 30]);
        let mut adj: Vec<(u32, Vec<u32>)> = lists;
        adj.sort_by_key(|(o, _)| *o);
        assert_eq!(adj, vec![(0, vec![1]), (1, vec![0, 2]), (2, vec![1])]);
    }

    #[test]
    fn output_is_identical_for_every_bucket_count() {
        let text = "1 2\n3 4\n2 3\n5 1\n4 5\n2 5\n1 3\n";
        let want = collect(
            text,
            &ImportConfig {
                buckets: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for buckets in [2, 3, 7, 64] {
            let got = collect(
                text,
                &ImportConfig {
                    buckets,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(got, want, "diverged at {buckets} buckets");
        }
    }

    #[test]
    fn seed_permutes_list_order_but_not_content() {
        let text = "1 2\n2 3\n3 1\n";
        let a = collect(
            text,
            &ImportConfig {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = collect(
            text,
            &ImportConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.0, b.0, "stats are seed-independent");
        let sorted = |mut l: Vec<(u32, Vec<u32>)>| {
            l.sort_by_key(|(o, _)| *o);
            l
        };
        assert_eq!(sorted(a.2), sorted(b.2));
    }

    #[test]
    fn dup_policies() {
        // Edge 1-2 appears twice forward and once reversed.
        let text = "1 2\n1 2\n2 1\n1 3\n";
        let (stats, _, lists) = collect(text, &ImportConfig::default()).unwrap();
        assert_eq!(stats.duplicate_items_dropped, 4); // 2 repeats × 2 directions
        let adj: std::collections::BTreeMap<u32, Vec<u32>> = lists.into_iter().collect();
        assert_eq!(adj[&0], vec![1, 2]);
        assert_eq!(adj[&1], vec![0]);

        let keep = ImportConfig {
            dups: DupPolicy::Keep,
            ..Default::default()
        };
        let (stats, _, lists) = collect(text, &keep).unwrap();
        assert_eq!(stats.duplicate_items_dropped, 0);
        let adj: std::collections::BTreeMap<u32, Vec<u32>> = lists.into_iter().collect();
        assert_eq!(adj[&0], vec![1, 1, 1, 2]);

        let err = ImportConfig {
            dups: DupPolicy::Error,
            ..Default::default()
        };
        assert!(matches!(
            collect(text, &err),
            Err(ImportError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn self_loop_policies() {
        let text = "1 1\n1 2\n";
        let (stats, _, _) = collect(text, &ImportConfig::default()).unwrap();
        assert_eq!(stats.self_loops_dropped, 1);

        let keep = ImportConfig {
            self_loops: SelfLoopPolicy::Keep,
            ..Default::default()
        };
        let (stats, _, lists) = collect(text, &keep).unwrap();
        assert_eq!(stats.self_loops_dropped, 0);
        assert_eq!(stats.items, 3);
        let adj: std::collections::BTreeMap<u32, Vec<u32>> = lists.into_iter().collect();
        assert_eq!(adj[&0], vec![0, 1]);

        let err = ImportConfig {
            self_loops: SelfLoopPolicy::Error,
            ..Default::default()
        };
        assert!(matches!(
            collect(text, &err),
            Err(ImportError::SelfLoop { line: 1, id: 1 })
        ));
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = collect("1 2\nnot an edge\n", &ImportConfig::default()).unwrap_err();
        match err {
            ImportError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn empty_input_imports_zero_lists() {
        let (stats, ids, lists) = collect("# only comments\n\n", &ImportConfig::default()).unwrap();
        assert_eq!(stats.items, 0);
        assert!(ids.is_empty());
        assert!(lists.is_empty());
    }
}

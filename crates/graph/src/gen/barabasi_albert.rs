//! Barabási–Albert preferential attachment graphs.
//!
//! Along with Chung–Lu, the other standard synthetic model for the
//! heavy-tailed networks the paper's applications target. Each arriving
//! vertex attaches to `k` existing vertices chosen proportionally to
//! degree, via the repeated-endpoints trick (sample a uniform endpoint of
//! an existing edge), which realizes preferential attachment exactly
//! without maintaining a degree distribution.

use rand::{Rng, RngExt};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;

/// Sample a Barabási–Albert graph: start from a `k+1`-clique, then each new
/// vertex attaches to `k` distinct degree-proportional targets, up to `n`
/// vertices total.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(k >= 1, "attachment count must be positive");
    assert!(n > k + 1, "need more vertices than the seed clique");
    let mut builder = GraphBuilder::with_capacity(n, k * n);
    // Flat list of edge endpoints: sampling a uniform element is sampling
    // a vertex with probability proportional to its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * k * n);
    for u in 0..=k as u32 {
        for v in (u + 1)..=k as u32 {
            builder.add_edge(VertexId(u), VertexId(v)).expect("seed");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (k + 1)..n {
        let mut targets = Vec::with_capacity(k);
        while targets.len() < k {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            builder
                .add_edge(VertexId(v as u32), VertexId(t))
                .expect("in range");
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    builder.build().expect("valid construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, k) = (500, 3);
        let g = barabasi_albert(n, k, &mut rng);
        assert_eq!(g.vertex_count(), n);
        // Seed clique C(k+1, 2) plus k per later vertex.
        assert_eq!(g.edge_count(), k * (k + 1) / 2 + k * (n - k - 1));
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(2_000, 4, &mut rng);
        let mean = 2.0 * g.edge_count() as f64 / 2_000.0;
        let max = g.max_degree() as f64;
        assert!(max > 5.0 * mean, "max {max} vs mean {mean}");
        // Early vertices accumulate degree.
        assert!(g.degree(VertexId(0)) > g.degree(VertexId(1_999)));
    }

    #[test]
    fn minimum_degree_is_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(300, 2, &mut rng);
        assert!(g.vertices().all(|v| g.degree(v) >= 2));
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = barabasi_albert(200, 3, &mut StdRng::seed_from_u64(9));
        let g2 = barabasi_albert(200, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edge_vec(), g2.edge_vec());
    }

    #[test]
    #[should_panic(expected = "seed clique")]
    fn rejects_tiny_n() {
        let mut rng = StdRng::seed_from_u64(1);
        barabasi_albert(3, 3, &mut rng);
    }
}

//! Deterministic structured graph families.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n.saturating_sub(1)) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
    }
    b.build().unwrap()
}

/// Complete bipartite graph `K_{a,b}` with sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::with_capacity(a + b, a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            builder
                .add_edge(VertexId(u), VertexId(a as u32 + v))
                .unwrap();
        }
    }
    builder.build().unwrap()
}

/// Cycle graph `C_n` on vertices `0..n` (requires `n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for u in 0..n as u32 {
        b.add_edge(VertexId(u), VertexId((u + 1) % n as u32))
            .unwrap();
    }
    b.build().unwrap()
}

/// Path graph `P_n` on vertices `0..n` (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 1..n as u32 {
        b.add_edge(VertexId(u - 1), VertexId(u)).unwrap();
    }
    b.build().unwrap()
}

/// Star graph: center `0` joined to leaves `1..=k`.
pub fn star(k: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(k + 1, k);
    for u in 1..=k as u32 {
        b.add_edge(VertexId(0), VertexId(u)).unwrap();
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_edge_counts() {
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(complete(5).max_degree(), 4);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(VertexId(0)), 4);
        assert_eq!(g.degree(VertexId(3)), 3);
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn cycle_and_path_shape() {
        let c = cycle(6);
        assert_eq!(c.edge_count(), 6);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
        let p = path(6);
        assert_eq!(p.edge_count(), 5);
        assert_eq!(p.degree(VertexId(0)), 1);
        assert_eq!(p.degree(VertexId(3)), 2);
    }

    #[test]
    fn star_shape() {
        let s = star(7);
        assert_eq!(s.degree(VertexId(0)), 7);
        assert_eq!(s.edge_count(), 7);
        assert_eq!(s.wedge_count(), 21);
    }
}

//! Graph generators: structured families, random models, planted-subgraph
//! workloads, and the projective-plane incidence graphs used by the Section 5
//! lower-bound constructions.

mod barabasi_albert;
mod chung_lu;
mod er;
mod planted;
mod projective;
mod structured;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::chung_lu;
pub use er::{bipartite_gnm, gnm, gnp};
pub use planted::{
    book, disjoint_cliques, disjoint_cycles, disjoint_four_cycles, disjoint_triangles,
    planted_triangles_on_bipartite, theta_k2k,
};
pub use projective::{plane_order_for, projective_plane_incidence, ProjectivePlane};
pub use structured::{complete, complete_bipartite, cycle, path, star};

//! Projective plane incidence graphs (Section 5.2 of the paper).
//!
//! For a prime `q`, the field plane `PG(2, q)` has `q² + q + 1` points and as
//! many lines; its bipartite point–line incidence graph is `(q+1)`-regular
//! with `(q²+q+1)(q+1) = Θ(r^{3/2})` edges on `r = 2(q²+q+1)` vertices, and
//! — because two points share exactly one line and two lines exactly one
//! point — contains **no 4-cycles** (girth 6). The Theorem 5.3 / 5.4 gadgets
//! build on exactly this graph.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;

/// A constructed field plane `PG(2, q)` for prime `q`.
#[derive(Debug, Clone)]
pub struct ProjectivePlane {
    /// The (prime) order of the plane.
    pub q: u32,
    /// Canonical homogeneous coordinates of the points (first nonzero
    /// coordinate is 1); lines use the same representative set.
    pub points: Vec<[u32; 3]>,
}

impl ProjectivePlane {
    /// Construct the plane of prime order `q`.
    ///
    /// Panics if `q` is not prime. (Prime powers also yield planes, but need
    /// extension-field arithmetic which the experiments never require; see
    /// DESIGN.md §2.)
    pub fn new(q: u32) -> Self {
        assert!(is_prime(q), "projective plane order must be prime, got {q}");
        let mut points = Vec::with_capacity((q * q + q + 1) as usize);
        // Canonical representatives: (1, y, z), (0, 1, z), (0, 0, 1).
        for y in 0..q {
            for z in 0..q {
                points.push([1, y, z]);
            }
        }
        for z in 0..q {
            points.push([0, 1, z]);
        }
        points.push([0, 0, 1]);
        debug_assert_eq!(points.len(), (q * q + q + 1) as usize);
        ProjectivePlane { q, points }
    }

    /// Number of points (= number of lines) `q² + q + 1`.
    pub fn size(&self) -> usize {
        self.points.len()
    }

    /// Whether point `p` lies on line `l` (dot product ≡ 0 mod q).
    #[inline]
    pub fn incident(&self, p: usize, l: usize) -> bool {
        let a = self.points[p];
        let b = self.points[l];
        let dot = a[0] as u64 * b[0] as u64 + a[1] as u64 * b[1] as u64 + a[2] as u64 * b[2] as u64;
        dot.is_multiple_of(self.q as u64)
    }

    /// The bipartite incidence graph: points are `0..size`, lines are
    /// `size..2·size`.
    pub fn incidence_graph(&self) -> Graph {
        let s = self.size();
        let mut b = GraphBuilder::with_capacity(2 * s, s * (self.q as usize + 1));
        for p in 0..s {
            for l in 0..s {
                if self.incident(p, l) {
                    b.add_edge(VertexId(p as u32), VertexId((s + l) as u32))
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    /// Edges of the incidence structure as `(point, line)` index pairs.
    /// The lower-bound gadgets index *these* (the "bits" of the INDEX/DISJ
    /// strings correspond to incidences).
    pub fn incidence_pairs(&self) -> Vec<(usize, usize)> {
        let s = self.size();
        let mut out = Vec::with_capacity(s * (self.q as usize + 1));
        for p in 0..s {
            for l in 0..s {
                if self.incident(p, l) {
                    out.push((p, l));
                }
            }
        }
        out
    }
}

/// Convenience: the incidence graph of `PG(2, q)` directly.
pub fn projective_plane_incidence(q: u32) -> Graph {
    ProjectivePlane::new(q).incidence_graph()
}

/// Smallest prime `q` such that the plane's point count `q²+q+1` is at least
/// `min_size`. Used by the gadget builders to pick a plane large enough for a
/// requested instance size.
pub fn plane_order_for(min_size: usize) -> u32 {
    let mut q = 2u32;
    loop {
        if is_prime(q) && (q as usize * q as usize + q as usize + 1) >= min_size {
            return q;
        }
        q += 1;
    }
}

fn is_prime(q: u32) -> bool {
    if q < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= q {
        if q.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{count_four_cycles, girth};

    #[test]
    fn fano_plane() {
        let pl = ProjectivePlane::new(2);
        assert_eq!(pl.size(), 7);
        let g = pl.incidence_graph();
        assert_eq!(g.vertex_count(), 14);
        assert_eq!(g.edge_count(), 21); // 7 lines × 3 points
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(girth(&g), Some(6));
    }

    #[test]
    fn planes_are_regular_and_four_cycle_free() {
        for q in [2u32, 3, 5, 7] {
            let pl = ProjectivePlane::new(q);
            let g = pl.incidence_graph();
            let s = pl.size();
            assert_eq!(g.vertex_count(), 2 * s);
            assert_eq!(g.edge_count(), s * (q as usize + 1));
            assert!(
                g.vertices().all(|v| g.degree(v) == q as usize + 1),
                "q={q} not regular"
            );
            assert_eq!(count_four_cycles(&g), 0, "q={q} has a 4-cycle");
        }
    }

    #[test]
    fn two_points_share_exactly_one_line() {
        let pl = ProjectivePlane::new(3);
        let g = pl.incidence_graph();
        let s = pl.size();
        for p1 in 0..s {
            for p2 in (p1 + 1)..s {
                let c = g.codegree(VertexId(p1 as u32), VertexId(p2 as u32));
                assert_eq!(c, 1, "points {p1},{p2} share {c} lines");
            }
        }
    }

    #[test]
    fn incidence_pairs_match_graph() {
        let pl = ProjectivePlane::new(3);
        let g = pl.incidence_graph();
        let pairs = pl.incidence_pairs();
        assert_eq!(pairs.len(), g.edge_count());
        for &(p, l) in &pairs {
            assert!(g.has_edge(VertexId(p as u32), VertexId((pl.size() + l) as u32)));
        }
    }

    #[test]
    fn plane_order_for_sizes() {
        assert_eq!(plane_order_for(1), 2);
        assert_eq!(plane_order_for(7), 2);
        assert_eq!(plane_order_for(8), 3);
        assert_eq!(plane_order_for(13), 3);
        assert_eq!(plane_order_for(14), 5); // q=4 not prime, skip to 31
        assert_eq!(plane_order_for(100), 11); // 11²+11+1 = 133 ≥ 100; q=7 gives 57
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn rejects_composite_order() {
        ProjectivePlane::new(4);
    }

    #[test]
    fn edge_density_is_theta_r_three_halves() {
        // m = s(q+1) where s = q²+q+1 ≈ r/2: check m ≥ (r/2)^{3/2} / 4.
        for q in [3u32, 5, 7, 11] {
            let g = projective_plane_incidence(q);
            let r = g.vertex_count() as f64;
            let m = g.edge_count() as f64;
            assert!(m >= (r / 2.0).powf(1.5) / 4.0, "q={q}: m={m} r={r}");
        }
    }
}

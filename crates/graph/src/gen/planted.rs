//! Planted-subgraph workloads with *known* cycle counts.
//!
//! The space–accuracy experiments need graph families where `m` and the cycle
//! count `T` can be dialed independently. The generators here combine
//! cycle-free backgrounds (bipartite for triangles, forests/odd structures
//! for 4-cycles) with planted vertex-disjoint cycles, so the planted count is
//! exact; tests verify against the exact counters.

use rand::Rng;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::gen::bipartite_gnm;
use crate::ids::VertexId;

/// `t` vertex-disjoint triangles (3t vertices, 3t edges, exactly `t`
/// triangles).
pub fn disjoint_triangles(t: usize) -> Graph {
    disjoint_cycles(3, t)
}

/// `t` vertex-disjoint 4-cycles.
pub fn disjoint_four_cycles(t: usize) -> Graph {
    disjoint_cycles(4, t)
}

/// `t` vertex-disjoint cycles of length `len`.
pub fn disjoint_cycles(len: usize, t: usize) -> Graph {
    assert!(len >= 3);
    let n = len * t;
    let mut b = GraphBuilder::with_capacity(n, n);
    for c in 0..t {
        let base = (c * len) as u32;
        for i in 0..len as u32 {
            b.add_edge(VertexId(base + i), VertexId(base + (i + 1) % len as u32))
                .unwrap();
        }
    }
    b.build().unwrap()
}

/// `k` vertex-disjoint complete graphs `K_s` (`k·C(s,3)` triangles, spread
/// across `k·C(s,2)` edges — a moderately clustered triangle workload).
pub fn disjoint_cliques(s: usize, k: usize) -> Graph {
    let n = s * k;
    let mut b = GraphBuilder::with_capacity(n, k * s * (s - 1) / 2);
    for c in 0..k {
        let base = (c * s) as u32;
        for i in 0..s as u32 {
            for j in (i + 1)..s as u32 {
                b.add_edge(VertexId(base + i), VertexId(base + j)).unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// The *book* graph `B_t`: one spine edge `{0,1}` shared by `t` triangles
/// (pages `2..t+2`). The spine lies on all `t` triangles — the canonical
/// heavy-edge adversary for sampling estimators (Section 2.1).
pub fn book(t: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(t + 2, 2 * t + 1);
    b.add_edge(VertexId(0), VertexId(1)).unwrap();
    for p in 0..t as u32 {
        b.add_edge(VertexId(0), VertexId(2 + p)).unwrap();
        b.add_edge(VertexId(1), VertexId(2 + p)).unwrap();
    }
    b.build().unwrap()
}

/// The *theta* workload `K_{2,k}`: two hub vertices joined to `k` spokes,
/// giving `C(k,2)` 4-cycles all sharing the hub pair — the heavy-wedge
/// adversary for 4-cycle sampling (Section 2.2).
pub fn theta_k2k(k: usize) -> Graph {
    super::complete_bipartite(2, k)
}

/// A triangle workload with independent `m` and `T` knobs: a bipartite
/// `G(a, b, m_bg)` background (triangle-free) plus `t` vertex-disjoint
/// planted triangles on fresh vertices. Exactly `t` triangles total.
pub fn planted_triangles_on_bipartite<R: Rng + ?Sized>(
    a: usize,
    b: usize,
    m_bg: usize,
    t: usize,
    rng: &mut R,
) -> Graph {
    let bg = bipartite_gnm(a, b, m_bg, rng);
    let tri = disjoint_triangles(t);
    bg.disjoint_union(&tri)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{count_cycles, count_four_cycles, count_triangles};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disjoint_triangles_exact_count() {
        for t in [0, 1, 5, 40] {
            let g = disjoint_triangles(t);
            assert_eq!(count_triangles(&g), t as u64);
            assert_eq!(g.edge_count(), 3 * t);
        }
    }

    #[test]
    fn disjoint_four_cycles_exact_count() {
        for t in [1, 7, 25] {
            let g = disjoint_four_cycles(t);
            assert_eq!(count_four_cycles(&g), t as u64);
            assert_eq!(count_triangles(&g), 0);
        }
    }

    #[test]
    fn disjoint_long_cycles_exact_count() {
        for len in 5..=7 {
            let g = disjoint_cycles(len, 9);
            assert_eq!(count_cycles(&g, len), 9);
            assert_eq!(count_cycles(&g, len - 1), 0);
        }
    }

    #[test]
    fn disjoint_cliques_count() {
        let g = disjoint_cliques(5, 3);
        assert_eq!(count_triangles(&g), 3 * 10);
        assert_eq!(g.edge_count(), 3 * 10);
    }

    #[test]
    fn book_is_heavy_on_spine() {
        let g = book(10);
        assert_eq!(count_triangles(&g), 10);
        assert_eq!(g.codegree(VertexId(0), VertexId(1)), 10);
    }

    #[test]
    fn theta_heavy_wedges() {
        let g = theta_k2k(6);
        assert_eq!(count_four_cycles(&g), 15); // C(6,2)
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn planted_background_does_not_disturb_count() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = planted_triangles_on_bipartite(40, 40, 400, 12, &mut rng);
        assert_eq!(count_triangles(&g), 12);
        assert_eq!(g.edge_count(), 400 + 36);
    }
}

//! Erdős–Rényi random graphs.

use std::collections::HashSet;

use rand::{Rng, RngExt};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::{EdgeKey, VertexId};

/// `G(n, m)`: a uniform graph with exactly `m` distinct edges.
///
/// Uses rejection sampling while the graph is sparse and switches to a
/// partial Fisher–Yates over the full pair space when `m` exceeds 40% of
/// `C(n,2)` (where rejection would thrash).
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "requested m={m} exceeds C({n},2)={max_m}");
    let mut b = GraphBuilder::with_capacity(n, m);
    if max_m == 0 || m == 0 {
        return b.build().unwrap();
    }
    if m * 5 <= max_m * 2 {
        // Sparse: rejection-sample canonical keys.
        let mut chosen: HashSet<u64> = HashSet::with_capacity(m * 2);
        while chosen.len() < m {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = EdgeKey::new(VertexId(u), VertexId(v));
            if chosen.insert(key.pack()) {
                b.add_edge(key.lo(), key.hi()).unwrap();
            }
        }
    } else {
        // Dense: partial Fisher–Yates over the enumerated pair space.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(max_m);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                pairs.push((u, v));
            }
        }
        for i in 0..m {
            let j = rng.random_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
    }
    b.build().unwrap()
}

/// `G(n, p)`: each pair independently an edge with probability `p`.
///
/// Implemented with geometric skipping, `O(n + m)` expected time.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build().unwrap();
    }
    if p == 1.0 {
        return super::complete(n);
    }
    // Walk the linearized upper-triangular pair index with geometric skips.
    let log_q = (1.0 - p).ln();
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.random();
        let skip = ((1.0 - r).ln() / log_q).floor() as i64 + 1;
        idx += skip.max(1);
        if idx as u64 >= total {
            break;
        }
        let (u, v) = unrank_pair(idx as u64, n as u64);
        b.add_edge(VertexId(u as u32), VertexId(v as u32)).unwrap();
    }
    b.build().unwrap()
}

/// Invert the row-major linearization of upper-triangular pairs `(u, v)`,
/// `u < v`, of `0..n`.
fn unrank_pair(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by scanning rows
    // is O(n) worst; use the closed form via quadratic formula.
    // Offset of row u: f(u) = u*(2n - u - 1)/2.
    let fidx = idx as f64;
    let nf = n as f64;
    // Solve u from f(u) <= idx: u ≈ n - 0.5 - sqrt((n-0.5)^2 - 2 idx).
    let mut u = (nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * fidx).max(0.0).sqrt()) as u64;
    // Fix floating error.
    while row_offset(u + 1, n) <= idx {
        u += 1;
    }
    while row_offset(u, n) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - row_offset(u, n));
    (u, v)
}

#[inline]
fn row_offset(u: u64, n: u64) -> u64 {
    u * (2 * n - u - 1) / 2
}

/// Uniform bipartite graph with sides of size `a` (vertices `0..a`) and `b`
/// (vertices `a..a+b`) and exactly `m` cross edges. Triangle-free by
/// construction, which the distinguishing experiments rely on.
pub fn bipartite_gnm<R: Rng + ?Sized>(a: usize, b: usize, m: usize, rng: &mut R) -> Graph {
    let max_m = a * b;
    assert!(m <= max_m, "requested m={m} exceeds a*b={max_m}");
    let mut builder = GraphBuilder::with_capacity(a + b, m);
    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    if m * 5 <= max_m * 2 {
        while chosen.len() < m {
            let u = rng.random_range(0..a as u32);
            let v = rng.random_range(0..b as u32);
            if chosen.insert((u, v)) {
                builder
                    .add_edge(VertexId(u), VertexId(a as u32 + v))
                    .unwrap();
            }
        }
    } else {
        let mut pairs: Vec<(u32, u32)> = (0..a as u32)
            .flat_map(|u| (0..b as u32).map(move |v| (u, v)))
            .collect();
        for i in 0..m {
            let j = rng.random_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            builder
                .add_edge(VertexId(u), VertexId(a as u32 + v))
                .unwrap();
        }
    }
    builder.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_triangles;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, m) in &[(10, 0), (10, 45), (50, 100), (20, 150)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.edge_count(), m, "n={n} m={m}");
            assert_eq!(g.vertex_count(), n);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_overfull() {
        let mut rng = StdRng::seed_from_u64(1);
        gnm(5, 11, &mut rng);
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, &mut rng);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt() + 10.0,
            "edges {got} vs expected {expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnp(30, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn unrank_pair_is_exact() {
        let n = 7u64;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(unrank_pair(idx, n), (u, v), "idx={idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = bipartite_gnm(30, 40, 500, &mut rng);
        assert_eq!(g.edge_count(), 500);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn bipartite_dense_path() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = bipartite_gnm(10, 10, 95, &mut rng);
        assert_eq!(g.edge_count(), 95);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn gnm_is_seed_deterministic() {
        let g1 = gnm(40, 120, &mut StdRng::seed_from_u64(77));
        let g2 = gnm(40, 120, &mut StdRng::seed_from_u64(77));
        assert_eq!(g1.edge_vec(), g2.edge_vec());
    }
}

//! Chung–Lu random graphs with power-law expected degrees.
//!
//! The paper motivates triangle counting with massive social-network
//! analysis; Chung–Lu graphs are the standard synthetic stand-in for such
//! skew-degree networks and are what the `social_network` example and the
//! heavy-edge ablations stream.

use rand::{Rng, RngExt};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;

/// Sample a Chung–Lu graph on `n` vertices with power-law exponent `gamma`
/// (typically 2–3) and average expected degree `avg_degree`.
///
/// Vertex `i` gets weight `w_i ∝ (i + i₀)^{-1/(γ-1)}`, scaled so the mean
/// weight is `avg_degree`; the pair `{i, j}` is an edge with probability
/// `min(1, w_i w_j / W)` where `W = Σ w_k`. Uses the Miller–Hagberg skipping
/// sampler, `O(n + m)` expected time.
pub fn chung_lu<R: Rng + ?Sized>(n: usize, gamma: f64, avg_degree: f64, rng: &mut R) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(n >= 2);
    // Weights descending in i.
    let i0 = 1.0;
    let exp = -1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(exp)).collect();
    let mean: f64 = w.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for wi in &mut w {
        *wi *= scale;
    }
    let total: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    // Miller–Hagberg: for each i, scan j > i with geometric skips at rate
    // q = min(1, w_i w_j / W) bounded above by p = min(1, w_i w_{i+1} / W)
    // (weights are non-increasing), then accept with prob q/p.
    for i in 0..n - 1 {
        let mut j = i + 1;
        let mut p = (w[i] * w[j] / total).min(1.0);
        if p <= 0.0 {
            continue;
        }
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.random();
                let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j >= n {
                break;
            }
            let q = (w[i] * w[j] / total).min(1.0);
            if rng.random::<f64>() < q / p {
                b.add_edge(VertexId(i as u32), VertexId(j as u32)).unwrap();
            }
            p = q;
            j += 1;
        }
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn average_degree_is_plausible() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 2000;
        let avg = 8.0;
        let g = chung_lu(n, 2.5, avg, &mut rng);
        let got = 2.0 * g.edge_count() as f64 / n as f64;
        // Truncation at p=1 loses a little mass; allow a wide band.
        assert!(
            got > avg * 0.5 && got < avg * 1.5,
            "average degree {got} not near {avg}"
        );
    }

    #[test]
    fn degrees_are_skewed() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let g = chung_lu(n, 2.2, 6.0, &mut rng);
        let max = g.max_degree() as f64;
        let mean = 2.0 * g.edge_count() as f64 / n as f64;
        assert!(
            max > 6.0 * mean,
            "expected heavy tail: max {max}, mean {mean}"
        );
        // Early (high-weight) vertices should dominate.
        assert!(g.degree(VertexId(0)) > g.degree(VertexId((n - 1) as u32)));
    }

    #[test]
    fn seed_deterministic() {
        let g1 = chung_lu(300, 2.5, 5.0, &mut StdRng::seed_from_u64(42));
        let g2 = chung_lu(300, 2.5, 5.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1.edge_vec(), g2.edge_vec());
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_flat_exponent() {
        let mut rng = StdRng::seed_from_u64(1);
        chung_lu(10, 1.0, 2.0, &mut rng);
    }
}

//! Compressed sparse row graph representation.
//!
//! [`Graph`] stores an undirected simple graph as a CSR structure: an offset
//! array of length `n + 1` and a neighbor array of length `2m`. Neighbor
//! lists are sorted ascending, which gives `O(log d)` adjacency queries and
//! linear-time sorted-list intersections for the exact counters.

use crate::ids::{EdgeKey, VertexId};

/// An immutable undirected simple graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`] or the generators in [`crate::gen`].
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists; length `2m`.
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Build directly from CSR arrays. Callers must uphold the invariants:
    /// sorted, deduplicated, loop-free, symmetric neighbor lists. The builder
    /// is the only intended caller.
    pub(crate) fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        Graph { offsets, neighbors }
    }

    /// An empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(VertexId(v as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Whether the edge `{u, v}` is present. `O(log deg)`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count() as u32).map(VertexId)
    }

    /// Iterate over all undirected edges, each once, as canonical keys in
    /// ascending `(lo, hi)` order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| EdgeKey::new(u, v))
        })
    }

    /// Number of wedges (paths of length two), `Σ_v C(deg(v), 2)`.
    ///
    /// This is the quantity the paper calls `P₂` when discussing the
    /// Buriol et al. bound `Õ(P₂/T)`.
    pub fn wedge_count(&self) -> u64 {
        self.vertices()
            .map(|v| {
                let d = self.degree(v) as u64;
                d * (d.saturating_sub(1)) / 2
            })
            .sum()
    }

    /// Size of the sorted intersection of the neighbor lists of `u` and `v`,
    /// i.e. their co-degree. Linear merge over the shorter pair.
    pub fn codegree(&self, u: VertexId, v: VertexId) -> usize {
        sorted_intersection_count(self.neighbors(u), self.neighbors(v))
    }

    /// Common neighbors of `u` and `v`, ascending.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// The disjoint union of `self` and `other`: vertices of `other` are
    /// shifted up by `self.vertex_count()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.vertex_count() as u32;
        let mut offsets = Vec::with_capacity(self.vertex_count() + other.vertex_count() + 1);
        offsets.extend_from_slice(&self.offsets);
        let base = *self.offsets.last().unwrap();
        // Skip other's leading 0 offset.
        offsets.extend(other.offsets.iter().skip(1).map(|&o| o + base));
        let mut neighbors = Vec::with_capacity(self.neighbors.len() + other.neighbors.len());
        neighbors.extend_from_slice(&self.neighbors);
        neighbors.extend(other.neighbors.iter().map(|&v| VertexId(v.0 + shift)));
        Graph { offsets, neighbors }
    }

    /// Collect all edges into a vector (each once, canonical).
    pub fn edge_vec(&self) -> Vec<EdgeKey> {
        self.edges().collect()
    }

    /// Total bytes of the CSR arrays (used for reporting, not correctness).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Graph(n={}, m={})",
            self.vertex_count(),
            self.edge_count()
        )
    }
}

/// Count elements common to two ascending slices by linear merge.
pub(crate) fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn triangle_plus_pendant() -> Graph {
        // 0-1-2 triangle, 3 pendant off 0.
        let mut b = GraphBuilder::new(4);
        for (x, y) in [(0, 1), (1, 2), (0, 2), (0, 3)] {
            b.add_edge(v(x), v(y)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_pendant();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(v(0)), 3);
        assert_eq!(g.degree(v(1)), 2);
        assert_eq!(g.degree(v(3)), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(v(0)), &[v(1), v(2), v(3)]);
        assert_eq!(g.neighbors(v(3)), &[v(0)]);
        for u in g.vertices() {
            for &w in g.neighbors(u) {
                assert!(g.has_edge(u, w));
                assert!(g.has_edge(w, u));
            }
        }
    }

    #[test]
    fn has_edge_negative_cases() {
        let g = triangle_plus_pendant();
        assert!(!g.has_edge(v(1), v(3)));
        assert!(!g.has_edge(v(2), v(3)));
        assert!(!g.has_edge(v(0), v(0)));
    }

    #[test]
    fn edges_iterates_each_once_in_order() {
        let g = triangle_plus_pendant();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(
            es,
            vec![
                EdgeKey::new(v(0), v(1)),
                EdgeKey::new(v(0), v(2)),
                EdgeKey::new(v(0), v(3)),
                EdgeKey::new(v(1), v(2)),
            ]
        );
    }

    #[test]
    fn wedge_count_matches_formula() {
        let g = triangle_plus_pendant();
        // deg 3,2,2,1 -> C(3,2)+C(2,2 choose)=3+1+1+0 = 5.
        assert_eq!(g.wedge_count(), 5);
    }

    #[test]
    fn codegree_and_common_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.codegree(v(1), v(2)), 1);
        assert_eq!(g.common_neighbors(v(1), v(2)), vec![v(0)]);
        assert_eq!(g.codegree(v(0), v(3)), 0);
    }

    #[test]
    fn disjoint_union_shifts_second_graph() {
        let g = triangle_plus_pendant();
        let u = g.disjoint_union(&g);
        assert_eq!(u.vertex_count(), 8);
        assert_eq!(u.edge_count(), 8);
        assert!(u.has_edge(v(0), v(1)));
        assert!(u.has_edge(v(4), v(5)));
        assert!(!u.has_edge(v(0), v(4)));
        assert_eq!(u.neighbors(v(4)), &[v(5), v(6), v(7)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}

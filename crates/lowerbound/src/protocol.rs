//! Protocol simulation: run a streaming algorithm as a communication
//! protocol over a gadget (Section 5.1).
//!
//! Each pass over the stream corresponds to one round: the players run the
//! algorithm over their own adjacency lists in speaking order and hand the
//! algorithm's state to the next player. The *communication cost* of the
//! induced protocol is the state size at every handoff — exactly what the
//! reductions charge. Since the whole simulation lives in one process, the
//! "message" is measured as the algorithm's reported
//! [`adjstream_stream::meter::SpaceUsage::space_bytes`] at each boundary.

use adjstream_stream::adjlist::AdjListStream;
use adjstream_stream::order::WithinListOrder;
use adjstream_stream::runner::MultiPassAlgorithm;

use crate::gadgets::Gadget;

/// Communication transcript of a simulated protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolReport {
    /// State size (bytes) at each player handoff, in order. One pass over
    /// `p` players produces `p − 1` handoffs; `c` passes produce
    /// `c·p − 1` (the state also travels back to the first player between
    /// passes).
    pub message_bytes: Vec<usize>,
    /// Largest single message.
    pub max_message: usize,
    /// Total communication.
    pub total_bytes: usize,
    /// Number of passes executed.
    pub passes: usize,
}

/// Run `algo` over the gadget's stream in speaking order, recording the
/// message sizes at every player boundary.
pub fn run_protocol<A: MultiPassAlgorithm>(
    gadget: &Gadget,
    mut algo: A,
    within: WithinListOrder,
) -> (A::Output, ProtocolReport) {
    assert!(
        gadget.players_partition_vertices(),
        "gadget players must partition the vertex set"
    );
    let order = gadget.stream_order(within);
    let stream = AdjListStream::new(&gadget.graph, order);
    // Precompute which player each list owner belongs to.
    let mut owner_player = vec![usize::MAX; gadget.graph.vertex_count()];
    for (p, verts) in gadget.players.iter().enumerate() {
        for v in verts {
            owner_player[v.index()] = p;
        }
    }
    let passes = algo.passes();
    let players = gadget.players.len();
    let mut message_bytes = Vec::with_capacity(passes * players);
    for pass in 0..passes {
        algo.begin_pass(pass);
        let mut current_player = 0usize;
        for (owner, neighbors) in stream.lists() {
            let p = owner_player[owner.index()];
            if p != current_player {
                // Handoff: the state crosses to the next player. (Speaking
                // order is monotone within a pass by construction.)
                debug_assert!(p > current_player);
                message_bytes.push(algo.space_bytes());
                current_player = p;
            }
            algo.begin_list(owner);
            for w in neighbors {
                algo.item(owner, w);
            }
            algo.end_list(owner);
        }
        algo.end_pass(pass);
        if pass + 1 < passes {
            // State returns to the first player for the next round.
            message_bytes.push(algo.space_bytes());
        }
    }
    let max_message = message_bytes.iter().copied().max().unwrap_or(0);
    let total_bytes = message_bytes.iter().sum();
    (
        algo.finish(),
        ProtocolReport {
            message_bytes,
            max_message,
            total_bytes,
            passes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{disj_long_cycle_gadget, pj3_triangle_gadget};
    use crate::problems::{DisjInstance, Pj3Instance};
    use adjstream_core::exact_stream::{ExactKind, ExactStreamCounter};

    #[test]
    fn exact_counter_solves_pj3_through_the_protocol() {
        for seed in 0..6 {
            let answer = seed % 2 == 0;
            let inst = Pj3Instance::random_with_answer(6, answer, seed);
            let g = pj3_triangle_gadget(&inst, 3);
            let (count, report) = run_protocol(
                &g,
                ExactStreamCounter::new(ExactKind::Triangles),
                WithinListOrder::Sorted,
            );
            assert_eq!(count > 0, answer, "seed {seed}");
            if answer {
                assert_eq!(count, 9);
            }
            // Three players, one pass: two handoffs.
            assert_eq!(report.message_bytes.len(), 2);
            assert_eq!(report.passes, 1);
            // The exact counter's message is Ω(m) — the cost the lower
            // bound says is unavoidable in one pass.
            assert!(report.max_message >= g.graph.edge_count() * 8);
        }
    }

    #[test]
    fn handoff_counts_scale_with_passes() {
        let inst = DisjInstance::random_promise(8, 0.3, true, 1);
        let g = disj_long_cycle_gadget(&inst, 5, 4);
        // A 1-pass algorithm over 2 players: 1 handoff.
        let (_, r1) = run_protocol(
            &g,
            ExactStreamCounter::new(ExactKind::Cycles(5)),
            WithinListOrder::Sorted,
        );
        assert_eq!(r1.message_bytes.len(), 1);
        assert_eq!(r1.total_bytes, r1.max_message);
    }
}

//! Figure 1c: one-pass 4-cycle counting from INDEX (Theorem 5.3).
//!
//! Alice holds `A = {a_i}`, `B = {b_j}` (the two sides of a 4-cycle-free
//! bipartite graph `H` — a projective-plane incidence graph, Section 5.2)
//! and keeps the `H`-edge for bit `t` iff `s_t = 1`. Bob holds blocks
//! `C_i, D_j` of size `k` with the fixed stars `a_i×C_i`, `b_j×D_j`, plus a
//! size-`k` matching between `C_{i*}` and `D_{j*}` where `(i*, j*)` is the
//! `H`-edge for his index `x`. The graph then contains exactly `k` 4-cycles
//! `a_{i*} – C_{i*}(t) – D_{j*}(t) – b_{j*}` iff `s_x = 1`, and none
//! otherwise — `H`'s girth kills every other candidate.

use adjstream_graph::gen::ProjectivePlane;
use adjstream_graph::{GraphBuilder, VertexId};

use super::{block, Gadget};
use crate::problems::IndexInstance;

/// Build the Theorem 5.3 gadget from an INDEX instance over the incidence
/// bits of `PG(2, q)`. The instance length must equal the plane's edge
/// count `(q²+q+1)(q+1)`; `k` is the planted cycle count `T`.
pub fn index_four_cycle_gadget(inst: &IndexInstance, q: u32, k: usize) -> Gadget {
    let plane = ProjectivePlane::new(q);
    let pairs = plane.incidence_pairs();
    assert_eq!(
        inst.len(),
        pairs.len(),
        "INDEX string must have one bit per incidence of PG(2,{q})"
    );
    let r = plane.size();
    // Layout: A = [0, r), B = [r, 2r), C_i = [2r + i·k, …),
    // D_j = [2r + rk + j·k, …).
    let a_base = 0u32;
    let b_base = r as u32;
    let c_base = (2 * r) as u32;
    let d_base = (2 * r + r * k) as u32;
    let c_block = |i: usize| c_base + (i * k) as u32;
    let d_block = |j: usize| d_base + (j * k) as u32;
    let n = 2 * r + 2 * r * k;
    let mut builder = GraphBuilder::new(n);
    // Alice: H edges with bit 1.
    for (t, &(i, j)) in pairs.iter().enumerate() {
        if inst.s[t] {
            builder
                .add_edge(VertexId(a_base + i as u32), VertexId(b_base + j as u32))
                .expect("in range");
        }
    }
    // Bob: matching C_{i*} × D_{j*} along his index's H-edge.
    let (i_star, j_star) = pairs[inst.x];
    for t in 0..k as u32 {
        builder
            .add_edge(VertexId(c_block(i_star) + t), VertexId(d_block(j_star) + t))
            .expect("in range");
    }
    // Fixed stars: a_i × C_i and b_j × D_j.
    for i in 0..r {
        for t in 0..k as u32 {
            builder
                .add_edge(VertexId(a_base + i as u32), VertexId(c_block(i) + t))
                .expect("in range");
            builder
                .add_edge(VertexId(b_base + i as u32), VertexId(d_block(i) + t))
                .expect("in range");
        }
    }
    let graph = builder.build().expect("valid gadget");
    Gadget {
        graph,
        players: vec![block(0, 2 * r), block(c_base, 2 * r * k)],
        cycle_len: 4,
        promised_cycles: k as u64,
        answer: inst.answer(),
    }
}

/// Convenience: a random INDEX instance of the right size for `PG(2, q)`
/// with the given forced answer.
pub fn random_index_instance_for_plane(q: u32, answer: bool, seed: u64) -> IndexInstance {
    let plane = ProjectivePlane::new(q);
    let len = plane.incidence_pairs().len();
    IndexInstance::random_with_answer(len, answer, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::exact::count_four_cycles;

    #[test]
    fn yes_instances_have_k_four_cycles() {
        for seed in 0..6 {
            let inst = random_index_instance_for_plane(2, true, seed);
            let g = index_four_cycle_gadget(&inst, 2, 5);
            assert_eq!(count_four_cycles(&g.graph), 5, "seed {seed}");
            assert!(g.players_partition_vertices());
        }
    }

    #[test]
    fn no_instances_are_four_cycle_free() {
        for seed in 0..6 {
            let inst = random_index_instance_for_plane(2, false, seed);
            let g = index_four_cycle_gadget(&inst, 2, 5);
            assert_eq!(count_four_cycles(&g.graph), 0, "seed {seed}");
        }
    }

    #[test]
    fn larger_plane_still_clean() {
        let inst = random_index_instance_for_plane(3, true, 9);
        let g = index_four_cycle_gadget(&inst, 3, 7);
        assert_eq!(count_four_cycles(&g.graph), 7);
        // m = |ones| + k + 2rk where r = 13.
        assert!(g.graph.edge_count() > 2 * 13 * 7);
    }

    #[test]
    #[should_panic(expected = "one bit per incidence")]
    fn wrong_sized_instance_rejected() {
        let inst = IndexInstance::random(10, 1);
        index_four_cycle_gadget(&inst, 2, 3);
    }
}

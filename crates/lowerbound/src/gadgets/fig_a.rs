//! Figure 1a: one-pass triangle counting from 3-PJ (Theorem 5.1).
//!
//! Vertex sets: `A = {a_1..a_r}` (Alice), `B` of size `k` (Bob), and
//! `C_1..C_r` of size `k` each (Charlie). Edges:
//!
//! * `E₁` (the single pointer `v* → V₂[i*]`): all `k²` edges `B × C_{i*}`,
//! * `E₂` (`V₂[i] → V₃[j]`): `k` edges `C_i × {a_j}`,
//! * `E₃` (`V₃[j] → v₄₁`): `k` edges `{a_j} × B`; pointers to `v₄₀` add
//!   nothing.
//!
//! The only possible triangles use one `B–C`, one `C–a` and one `a–B` edge;
//! they exist iff the pointer path ends at `v₄₁`, giving exactly `k²`
//! triangles (one per `(b, c) ∈ B × C_{i*}`).

use adjstream_graph::{GraphBuilder, VertexId};

use super::{block, Gadget};
use crate::problems::Pj3Instance;

/// Build the Theorem 5.1 gadget for `inst` with block size `k`.
pub fn pj3_triangle_gadget(inst: &Pj3Instance, k: usize) -> Gadget {
    let r = inst.len();
    assert!(r >= 1 && k >= 1);
    // Layout: A = [0, r), B = [r, r+k), C_i = [r + k + i·k, …).
    let a_base = 0u32;
    let b_base = r as u32;
    let c_base = (r + k) as u32;
    let c_block = |i: usize| c_base + (i * k) as u32;
    let n = r + k + r * k;
    let mut builder = GraphBuilder::new(n);
    // E1: B × C_{i*}.
    for b in 0..k as u32 {
        for c in 0..k as u32 {
            builder
                .add_edge(VertexId(b_base + b), VertexId(c_block(inst.e1) + c))
                .expect("in range");
        }
    }
    // E2: C_i × a_{e2[i]}.
    for (i, &j) in inst.e2.iter().enumerate() {
        for c in 0..k as u32 {
            builder
                .add_edge(VertexId(c_block(i) + c), VertexId(a_base + j as u32))
                .expect("in range");
        }
    }
    // E3: a_j × B for pointers to v41.
    for (j, &bit) in inst.e3.iter().enumerate() {
        if bit {
            for b in 0..k as u32 {
                builder
                    .add_edge(VertexId(a_base + j as u32), VertexId(b_base + b))
                    .expect("in range");
            }
        }
    }
    let graph = builder.build().expect("valid gadget");
    Gadget {
        graph,
        players: vec![block(a_base, r), block(b_base, k), block(c_base, r * k)],
        cycle_len: 3,
        promised_cycles: (k * k) as u64,
        answer: inst.answer(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::exact::count_triangles;

    #[test]
    fn yes_instances_have_k_squared_triangles() {
        for seed in 0..10 {
            let inst = Pj3Instance::random_with_answer(8, true, seed);
            let g = pj3_triangle_gadget(&inst, 4);
            assert_eq!(count_triangles(&g.graph), 16, "seed {seed}");
            assert_eq!(g.expected_cycles(), 16);
            assert!(g.players_partition_vertices());
        }
    }

    #[test]
    fn no_instances_are_triangle_free() {
        for seed in 0..10 {
            let inst = Pj3Instance::random_with_answer(8, false, seed);
            let g = pj3_triangle_gadget(&inst, 4);
            assert_eq!(count_triangles(&g.graph), 0, "seed {seed}");
            assert_eq!(g.expected_cycles(), 0);
        }
    }

    #[test]
    fn edge_count_scales_as_rk_plus_k_squared() {
        let inst = Pj3Instance::random_with_answer(20, true, 3);
        let g = pj3_triangle_gadget(&inst, 5);
        let m = g.graph.edge_count();
        // k² (E1) + rk (E2) + |ones|·k (E3) ≤ k² + 2rk.
        assert!((25 + 100..=25 + 200).contains(&m), "m = {m}");
    }
}

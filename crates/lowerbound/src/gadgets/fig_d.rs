//! Figure 1d: multi-pass 4-cycle counting from DISJ (Theorem 5.4).
//!
//! Two 4-cycle-free bipartite graphs: `H₁` (sides of size `r`, one DISJ bit
//! per edge) and `H₂` (sides of size `k`). Alice holds blocks
//! `A_1..A_r, B_1..B_r` of size `k`; Bob holds `C_1..C_r, D_1..D_r`. Fixed
//! copies of `H₂` join `A_i↔C_i` and `B_i↔D_i`. For each `H₁`-edge
//! `(i, j)` with bit index `t`: Alice adds the size-`k` matching `A_i↔B_j`
//! iff `s¹_t = 1`, Bob adds `C_i↔D_j` iff `s²_t = 1`. On an intersecting
//! coordinate the composite `A_i(p) – B_j(p) – D_j(l) – C_i(l) – A_i(p)`
//! closes once per `H₂`-edge `(p, l)`, giving `|E(H₂)| = Θ(k^{3/2})`
//! 4-cycles; with no intersection the girth-6 pieces leave none.

use adjstream_graph::gen::ProjectivePlane;
use adjstream_graph::{GraphBuilder, VertexId};

use super::{block, Gadget};
use crate::problems::DisjInstance;

/// Build the Theorem 5.4 gadget: `q1` is the order of the outer plane `H₁`
/// (instance length = its edge count), `q2` the order of the inner plane
/// `H₂` (block size `k = q2² + q2 + 1`; planted cycles `k·(q2+1)`).
pub fn disj_four_cycle_gadget(inst: &DisjInstance, q1: u32, q2: u32) -> Gadget {
    let h1 = ProjectivePlane::new(q1);
    let h1_pairs = h1.incidence_pairs();
    assert_eq!(
        inst.len(),
        h1_pairs.len(),
        "DISJ strings must have one bit per incidence of PG(2,{q1})"
    );
    let h2 = ProjectivePlane::new(q2);
    let h2_pairs = h2.incidence_pairs();
    let r = h1.size();
    let k = h2.size();
    // Layout: A_i = [i·k, …), B_i = [(r+i)·k, …), C_i = [(2r+i)·k, …),
    // D_i = [(3r+i)·k, …).
    let a_block = |i: usize| (i * k) as u32;
    let b_block = |i: usize| ((r + i) * k) as u32;
    let c_block = |i: usize| ((2 * r + i) * k) as u32;
    let d_block = |i: usize| ((3 * r + i) * k) as u32;
    let n = 4 * r * k;
    let mut builder = GraphBuilder::new(n);
    // Fixed H₂ copies.
    for i in 0..r {
        for &(p, l) in &h2_pairs {
            builder
                .add_edge(
                    VertexId(a_block(i) + p as u32),
                    VertexId(c_block(i) + l as u32),
                )
                .expect("in range");
            builder
                .add_edge(
                    VertexId(b_block(i) + p as u32),
                    VertexId(d_block(i) + l as u32),
                )
                .expect("in range");
        }
    }
    // Input-dependent matchings along H₁ edges.
    for (t, &(i, j)) in h1_pairs.iter().enumerate() {
        if inst.s1[t] {
            for x in 0..k as u32 {
                builder
                    .add_edge(VertexId(a_block(i) + x), VertexId(b_block(j) + x))
                    .expect("in range");
            }
        }
        if inst.s2[t] {
            for x in 0..k as u32 {
                builder
                    .add_edge(VertexId(c_block(i) + x), VertexId(d_block(j) + x))
                    .expect("in range");
            }
        }
    }
    let graph = builder.build().expect("valid gadget");
    Gadget {
        graph,
        players: vec![block(0, 2 * r * k), block((2 * r * k) as u32, 2 * r * k)],
        cycle_len: 4,
        promised_cycles: h2_pairs.len() as u64,
        answer: inst.answer(),
    }
}

/// Convenience: a random promise DISJ instance sized for outer plane `q1`.
pub fn random_disj_instance_for_plane(
    q1: u32,
    density: f64,
    intersect: bool,
    seed: u64,
) -> DisjInstance {
    let len = ProjectivePlane::new(q1).incidence_pairs().len();
    DisjInstance::random_promise(len, density, intersect, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::exact::count_four_cycles;

    #[test]
    fn yes_instances_have_h2_edge_count_cycles() {
        for seed in 0..4 {
            let inst = random_disj_instance_for_plane(2, 0.3, true, seed);
            let g = disj_four_cycle_gadget(&inst, 2, 2);
            // |E(H₂)| for q2=2 is 7·3 = 21.
            assert_eq!(count_four_cycles(&g.graph), 21, "seed {seed}");
            assert_eq!(g.promised_cycles, 21);
            assert!(g.players_partition_vertices());
        }
    }

    #[test]
    fn no_instances_are_four_cycle_free() {
        for seed in 0..4 {
            let inst = random_disj_instance_for_plane(2, 0.3, false, seed);
            let g = disj_four_cycle_gadget(&inst, 2, 2);
            assert_eq!(count_four_cycles(&g.graph), 0, "seed {seed}");
        }
    }

    #[test]
    fn vertex_layout_is_four_blocks() {
        let inst = random_disj_instance_for_plane(2, 0.2, true, 7);
        let g = disj_four_cycle_gadget(&inst, 2, 2);
        assert_eq!(g.graph.vertex_count(), 4 * 7 * 7);
        assert_eq!(g.players.len(), 2);
    }
}

//! The five Figure-1 gadget constructions.
//!
//! Each builder encodes one communication-problem instance as an adjacency
//! list stream: a graph plus an assignment of vertices to players in
//! speaking order. The graph has `promised_cycles` ℓ-cycles if the
//! instance's answer is 1 and **zero** otherwise — so any streaming
//! algorithm distinguishing `0` from `T` cycles solves the problem when run
//! as a protocol ([`crate::protocol`]), transferring its state at each
//! player handoff.

mod fig_a;
mod fig_b;
mod fig_c;
mod fig_d;
mod fig_e;

use adjstream_graph::{Graph, VertexId};
use adjstream_stream::order::{StreamOrder, WithinListOrder};

pub use fig_a::pj3_triangle_gadget;
pub use fig_b::disj3_triangle_gadget;
pub use fig_c::{index_four_cycle_gadget, random_index_instance_for_plane};
pub use fig_d::{disj_four_cycle_gadget, random_disj_instance_for_plane};
pub use fig_e::disj_long_cycle_gadget;

/// A built lower-bound gadget.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// The encoded graph.
    pub graph: Graph,
    /// Vertex sets per player, in speaking order (Alice first). The sets
    /// partition the vertex set; each player streams the adjacency lists of
    /// its own vertices.
    pub players: Vec<Vec<VertexId>>,
    /// Length of the cycles being counted.
    pub cycle_len: usize,
    /// Number of `cycle_len`-cycles the graph contains if the instance's
    /// answer is 1 (it contains zero when the answer is 0).
    pub promised_cycles: u64,
    /// The instance's ground-truth answer.
    pub answer: bool,
}

impl Gadget {
    /// The ℓ-cycle count this graph is promised to have.
    pub fn expected_cycles(&self) -> u64 {
        if self.answer {
            self.promised_cycles
        } else {
            0
        }
    }

    /// The stream order induced by the speaking order: each player's lists
    /// in sequence. `within` controls neighbor order inside lists.
    pub fn stream_order(&self, within: WithinListOrder) -> StreamOrder {
        let lists: Vec<VertexId> = self.players.iter().flatten().copied().collect();
        StreamOrder::custom(lists, within)
    }

    /// Sanity check: players partition the vertex set.
    pub fn players_partition_vertices(&self) -> bool {
        let n = self.graph.vertex_count();
        let mut seen = vec![false; n];
        let mut count = 0usize;
        for p in &self.players {
            for v in p {
                if v.index() >= n || seen[v.index()] {
                    return false;
                }
                seen[v.index()] = true;
                count += 1;
            }
        }
        count == n
    }
}

/// Contiguous vertex-id block `[start, start + len)`.
pub(crate) fn block(start: u32, len: usize) -> Vec<VertexId> {
    (start..start + len as u32).map(VertexId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::GraphBuilder;

    #[test]
    fn partition_check_catches_overlap() {
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let good = Gadget {
            graph: g.clone(),
            players: vec![block(0, 2), block(2, 1)],
            cycle_len: 3,
            promised_cycles: 0,
            answer: false,
        };
        assert!(good.players_partition_vertices());
        let bad = Gadget {
            graph: g,
            players: vec![block(0, 2), block(1, 2)],
            cycle_len: 3,
            promised_cycles: 0,
            answer: false,
        };
        assert!(!bad.players_partition_vertices());
    }
}

//! Figure 1e: multi-pass ℓ-cycle counting for ℓ ≥ 5 from DISJ
//! (Theorem 5.5) — the `Ω(m)` bound showing no sublinear algorithm exists
//! for longer cycles in any constant number of passes.
//!
//! Alice holds `a_1..a_{r+1}`; Bob holds `b_1..b_r`, `c_1..c_T`, and a path
//! `d_1 – … – d_{ℓ-4}`. Fixed edges: `(a_i, b_i)`, `(a_{r+1}, c_t)`,
//! `(d_{ℓ-4}, c_t)`, and the `d`-path. Input edges: `(a_i, a_{r+1})` iff
//! `s¹_i`, `(b_i, d_1)` iff `s²_i`. An ℓ-cycle must traverse
//! `a_{r+1} → c_t → d_{ℓ-4} → … → d_1 → b_x → a_x → a_{r+1}`, which exists
//! iff `s¹_x = s²_x = 1`; one cycle per `c_t` gives exactly `T`.

use adjstream_graph::{GraphBuilder, VertexId};

use super::{block, Gadget};
use crate::problems::DisjInstance;

/// Build the Theorem 5.5 gadget for cycle length `ell ≥ 5` planting `t`
/// cycles on a yes-instance.
pub fn disj_long_cycle_gadget(inst: &DisjInstance, ell: usize, t: usize) -> Gadget {
    assert!(ell >= 5, "Theorem 5.5 concerns ℓ ≥ 5");
    assert!(t >= 1);
    let r = inst.len();
    let d_len = ell - 4;
    // Layout: a_1..a_{r+1} = [0, r+1), b = [r+1, 2r+1), c = [2r+1, 2r+1+t),
    // d = [2r+1+t, 2r+1+t+d_len).
    let a = |i: usize| i as u32; // a_{r+1} is a(r)
    let b = |i: usize| (r + 1 + i) as u32;
    let c = |i: usize| (2 * r + 1 + i) as u32;
    let d = |i: usize| (2 * r + 1 + t + i) as u32;
    let n = 2 * r + 1 + t + d_len;
    let mut builder = GraphBuilder::new(n);
    for i in 0..r {
        builder
            .add_edge(VertexId(a(i)), VertexId(b(i)))
            .expect("in range");
    }
    for i in 0..t {
        builder
            .add_edge(VertexId(a(r)), VertexId(c(i)))
            .expect("in range");
        builder
            .add_edge(VertexId(d(d_len - 1)), VertexId(c(i)))
            .expect("in range");
    }
    for i in 1..d_len {
        builder
            .add_edge(VertexId(d(i - 1)), VertexId(d(i)))
            .expect("in range");
    }
    for i in 0..r {
        if inst.s1[i] {
            builder
                .add_edge(VertexId(a(i)), VertexId(a(r)))
                .expect("in range");
        }
        if inst.s2[i] {
            builder
                .add_edge(VertexId(b(i)), VertexId(d(0)))
                .expect("in range");
        }
    }
    let graph = builder.build().expect("valid gadget");
    Gadget {
        graph,
        players: vec![block(0, r + 1), block((r + 1) as u32, r + t + d_len)],
        cycle_len: ell,
        promised_cycles: t as u64,
        answer: inst.answer(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::exact::count_cycles;

    #[test]
    fn yes_instances_have_t_cycles_for_each_length() {
        for ell in 5..=8 {
            for seed in 0..5 {
                let inst = DisjInstance::random_promise(12, 0.3, true, seed);
                let g = disj_long_cycle_gadget(&inst, ell, 6);
                assert_eq!(count_cycles(&g.graph, ell), 6, "ell {ell} seed {seed}");
                assert!(g.players_partition_vertices());
            }
        }
    }

    #[test]
    fn no_instances_are_cycle_free() {
        for ell in 5..=8 {
            for seed in 0..5 {
                let inst = DisjInstance::random_promise(12, 0.3, false, seed);
                let g = disj_long_cycle_gadget(&inst, ell, 6);
                assert_eq!(count_cycles(&g.graph, ell), 0, "ell {ell} seed {seed}");
            }
        }
    }

    #[test]
    fn edge_count_is_theta_r_plus_t() {
        let inst = DisjInstance::random_promise(40, 0.25, true, 2);
        let g = disj_long_cycle_gadget(&inst, 6, 15);
        let m = g.graph.edge_count();
        // r fixed + 2t around c + path + input edges ≤ 2r.
        assert!((40 + 30..=3 * 40 + 2 * 15 + 2).contains(&m), "m = {m}");
    }

    #[test]
    #[should_panic(expected = "ℓ ≥ 5")]
    fn rejects_short_cycles() {
        let inst = DisjInstance::random_promise(5, 0.2, true, 1);
        disj_long_cycle_gadget(&inst, 4, 2);
    }
}

//! Figure 1b: multi-pass triangle counting from 3-DISJ (Theorem 5.2).
//!
//! Blocks `A_i, B_i, C_i` of size `k` for each coordinate `i ∈ [r]`; for
//! each `i`, complete bipartite bundles `A_i×C_i` iff `s¹_i`, `A_i×B_i` iff
//! `s²_i`, `B_i×C_i` iff `s³_i`. A triangle needs all three bundles of one
//! coordinate, so the graph has `k³` triangles iff the three sets intersect
//! (uniquely, under the promise) and none otherwise.

use adjstream_graph::{GraphBuilder, VertexId};

use super::{block, Gadget};
use crate::problems::Disj3Instance;

/// Build the Theorem 5.2 gadget for `inst` with block size `k`.
pub fn disj3_triangle_gadget(inst: &Disj3Instance, k: usize) -> Gadget {
    let r = inst.len();
    assert!(r >= 1 && k >= 1);
    let a_block = |i: usize| (i * k) as u32;
    let b_block = |i: usize| ((r + i) * k) as u32;
    let c_block = |i: usize| ((2 * r + i) * k) as u32;
    let n = 3 * r * k;
    let mut builder = GraphBuilder::new(n);
    let mut bundle = |base1: u32, base2: u32| {
        for x in 0..k as u32 {
            for y in 0..k as u32 {
                builder
                    .add_edge(VertexId(base1 + x), VertexId(base2 + y))
                    .expect("in range");
            }
        }
    };
    for i in 0..r {
        if inst.s1[i] {
            bundle(a_block(i), c_block(i));
        }
        if inst.s2[i] {
            bundle(a_block(i), b_block(i));
        }
        if inst.s3[i] {
            bundle(b_block(i), c_block(i));
        }
    }
    let graph = builder.build().expect("valid gadget");
    Gadget {
        graph,
        players: vec![
            block(0, r * k),
            block((r * k) as u32, r * k),
            block((2 * r * k) as u32, r * k),
        ],
        cycle_len: 3,
        promised_cycles: (k * k * k) as u64,
        answer: inst.answer(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::exact::count_triangles;

    #[test]
    fn yes_instances_have_k_cubed_triangles() {
        for seed in 0..10 {
            let inst = Disj3Instance::random_promise(10, 0.4, true, seed);
            let g = disj3_triangle_gadget(&inst, 3);
            assert_eq!(count_triangles(&g.graph), 27, "seed {seed}");
            assert!(g.players_partition_vertices());
        }
    }

    #[test]
    fn no_instances_are_triangle_free() {
        for seed in 0..10 {
            let inst = Disj3Instance::random_promise(10, 0.4, false, seed);
            let g = disj3_triangle_gadget(&inst, 3);
            assert_eq!(count_triangles(&g.graph), 0, "seed {seed}");
        }
    }

    #[test]
    fn blocks_are_assigned_per_player() {
        let inst = Disj3Instance::random_promise(4, 0.5, true, 1);
        let g = disj3_triangle_gadget(&inst, 2);
        assert_eq!(g.players.len(), 3);
        assert_eq!(g.players[0].len(), 8);
        assert_eq!(g.graph.vertex_count(), 24);
    }
}

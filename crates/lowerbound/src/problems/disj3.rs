//! Three-party number-on-forehead disjointness (3-DISJ): strings
//! `s¹, s², s³`; Alice sees `(s¹, s²)`, Bob `(s², s³)`, Charlie `(s³, s¹)`;
//! output 1 iff some coordinate is 1 in all three. Best known lower bound
//! `Ω(√r)` (Sherstov); conjectured `Ω̃(r)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 3-DISJ instance (promise form: at most one triple-intersection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disj3Instance {
    /// First string.
    pub s1: Vec<bool>,
    /// Second string.
    pub s2: Vec<bool>,
    /// Third string.
    pub s3: Vec<bool>,
}

impl Disj3Instance {
    /// 1 iff some coordinate is in all three sets.
    pub fn answer(&self) -> bool {
        (0..self.s1.len()).any(|i| self.s1[i] && self.s2[i] && self.s3[i])
    }

    /// Instance size `r`.
    pub fn len(&self) -> usize {
        self.s1.len()
    }

    /// Whether the instance is empty (never true for generated instances).
    pub fn is_empty(&self) -> bool {
        self.s1.is_empty()
    }

    /// Number of triple-intersecting coordinates.
    pub fn intersection_size(&self) -> usize {
        (0..self.s1.len())
            .filter(|&i| self.s1[i] && self.s2[i] && self.s3[i])
            .count()
    }

    /// Random promise instance: independent `density` bits, triple
    /// collisions broken by clearing `s³`, then (if `intersect`) one
    /// coordinate set in all three.
    pub fn random_promise(r: usize, density: f64, intersect: bool, seed: u64) -> Self {
        assert!(r >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s1: Vec<bool> = (0..r).map(|_| rng.random::<f64>() < density).collect();
        let mut s2: Vec<bool> = (0..r).map(|_| rng.random::<f64>() < density).collect();
        let mut s3: Vec<bool> = (0..r).map(|_| rng.random::<f64>() < density).collect();
        for i in 0..r {
            if s1[i] && s2[i] && s3[i] {
                s3[i] = false;
            }
        }
        if intersect {
            let x = rng.random_range(0..r);
            s1[x] = true;
            s2[x] = true;
            s3[x] = true;
        }
        Disj3Instance { s1, s2, s3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_requires_triple_intersection() {
        let inst = Disj3Instance {
            s1: vec![true, true],
            s2: vec![true, false],
            s3: vec![false, true],
        };
        assert!(!inst.answer());
        let inst2 = Disj3Instance {
            s1: vec![true],
            s2: vec![true],
            s3: vec![true],
        };
        assert!(inst2.answer());
    }

    #[test]
    fn promise_instances_have_correct_answers() {
        for seed in 0..30 {
            let yes = Disj3Instance::random_promise(30, 0.4, true, seed);
            assert!(yes.answer());
            assert_eq!(yes.intersection_size(), 1);
            let no = Disj3Instance::random_promise(30, 0.4, false, seed);
            assert!(!no.answer());
        }
    }
}

//! Three-party number-on-forehead pointer jumping (3-PJ).
//!
//! A layered digraph `V₁ = {v*}`, `V₂`, `V₃` (size `r` each),
//! `V₄ = {v₄₀, v₄₁}`; every vertex of layers 1–3 has out-degree exactly one.
//! Alice sees `(E₂, E₃)`, Bob `(E₁, E₃)`, Charlie `(E₁, E₂)`; speaking
//! one-way Alice → Bob → Charlie they must output which of `v₄₀/v₄₁` the
//! pointer path from `v*` reaches. Best known lower bound `Ω(√r)`
//! (Viola–Wigderson); conjectured `Ω̃(r)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 3-PJ instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pj3Instance {
    /// `E₁`: the single pointer `v* → V₂[e1]`.
    pub e1: usize,
    /// `E₂`: pointers `V₂[i] → V₃[e2[i]]`.
    pub e2: Vec<usize>,
    /// `E₃`: pointers `V₃[i] → v₄_{e3[i]}` (`true` = `v₄₁`).
    pub e3: Vec<bool>,
}

impl Pj3Instance {
    /// Follow the pointers: `true` iff the path from `v*` ends at `v₄₁`.
    pub fn answer(&self) -> bool {
        self.e3[self.e2[self.e1]]
    }

    /// Layer size `r`.
    pub fn len(&self) -> usize {
        self.e2.len()
    }

    /// Whether the instance is empty (never true for generated instances).
    pub fn is_empty(&self) -> bool {
        self.e2.is_empty()
    }

    /// Uniformly random instance with the final pointer forced so the
    /// answer is `answer`.
    pub fn random_with_answer(r: usize, answer: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let e1 = rng.random_range(0..r);
        let e2: Vec<usize> = (0..r).map(|_| rng.random_range(0..r)).collect();
        let mut e3: Vec<bool> = (0..r).map(|_| rng.random()).collect();
        e3[e2[e1]] = answer;
        Pj3Instance { e1, e2, e3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_follows_the_path() {
        let inst = Pj3Instance {
            e1: 1,
            e2: vec![0, 2, 1],
            e3: vec![false, false, true],
        };
        // v* -> V2[1] -> V3[2] -> v41.
        assert!(inst.answer());
    }

    #[test]
    fn forced_answers() {
        for seed in 0..20 {
            assert!(Pj3Instance::random_with_answer(25, true, seed).answer());
            assert!(!Pj3Instance::random_with_answer(25, false, seed).answer());
        }
    }
}

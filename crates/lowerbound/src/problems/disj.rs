//! Two-party set disjointness: Alice holds `s¹`, Bob `s²`; output 1 iff
//! some coordinate has `s¹_x = s²_x = 1`. Randomized communication `Ω(r)`
//! (Kalyanasundaram–Schnitger, Razborov).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A DISJ instance (promise form: at most one intersecting coordinate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjInstance {
    /// Alice's set (characteristic vector).
    pub s1: Vec<bool>,
    /// Bob's set.
    pub s2: Vec<bool>,
}

impl DisjInstance {
    /// 1 iff the sets intersect.
    pub fn answer(&self) -> bool {
        self.s1.iter().zip(&self.s2).any(|(&a, &b)| a && b)
    }

    /// Instance size `r`.
    pub fn len(&self) -> usize {
        self.s1.len()
    }

    /// Whether the instance is empty (never true for generated instances).
    pub fn is_empty(&self) -> bool {
        self.s1.is_empty()
    }

    /// Number of intersecting coordinates.
    pub fn intersection_size(&self) -> usize {
        self.s1
            .iter()
            .zip(&self.s2)
            .filter(|&(&a, &b)| a && b)
            .count()
    }

    /// Random promise instance: each player holds ~`density·r` elements,
    /// made disjoint, then (if `intersect`) one uniformly chosen coordinate
    /// is put in both sets.
    pub fn random_promise(r: usize, density: f64, intersect: bool, seed: u64) -> Self {
        assert!(r >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s1: Vec<bool> = (0..r).map(|_| rng.random::<f64>() < density).collect();
        let mut s2: Vec<bool> = (0..r).map(|_| rng.random::<f64>() < density).collect();
        // Enforce disjointness by flipping Bob's copy of collisions.
        for i in 0..r {
            if s1[i] && s2[i] {
                s2[i] = false;
            }
        }
        if intersect {
            let x = rng.random_range(0..r);
            s1[x] = true;
            s2[x] = true;
        }
        DisjInstance { s1, s2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_detects_intersection() {
        let yes = DisjInstance {
            s1: vec![true, false, true],
            s2: vec![false, false, true],
        };
        assert!(yes.answer());
        let no = DisjInstance {
            s1: vec![true, false, true],
            s2: vec![false, true, false],
        };
        assert!(!no.answer());
    }

    #[test]
    fn promise_instances_have_correct_answers() {
        for seed in 0..30 {
            let yes = DisjInstance::random_promise(40, 0.3, true, seed);
            assert!(yes.answer(), "seed {seed}");
            assert_eq!(yes.intersection_size(), 1, "unique intersection");
            let no = DisjInstance::random_promise(40, 0.3, false, seed);
            assert!(!no.answer(), "seed {seed}");
        }
    }

    #[test]
    fn density_zero_gives_empty_sets() {
        let inst = DisjInstance::random_promise(20, 0.0, false, 1);
        assert!(inst.s1.iter().all(|&b| !b));
        assert!(inst.s2.iter().all(|&b| !b));
    }
}

//! INDEX: Alice holds `s ∈ {0,1}^r`, Bob holds `x ∈ [r]`, Bob must output
//! `s_x`. One-way communication complexity `Ω(r)` (Kremer–Nisan–Ron).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An INDEX instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInstance {
    /// Alice's string.
    pub s: Vec<bool>,
    /// Bob's index into `s`.
    pub x: usize,
}

impl IndexInstance {
    /// The answer `s_x`.
    pub fn answer(&self) -> bool {
        self.s[self.x]
    }

    /// Instance size `r`.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Uniformly random string and index.
    pub fn random(r: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        IndexInstance {
            s: (0..r).map(|_| rng.random()).collect(),
            x: rng.random_range(0..r),
        }
    }

    /// Random instance with the answer forced to `answer` (the bit at the
    /// queried index is set accordingly; the rest stays uniform).
    pub fn random_with_answer(r: usize, answer: bool, seed: u64) -> Self {
        let mut inst = Self::random(r, seed);
        inst.s[inst.x] = answer;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_reads_the_indexed_bit() {
        let inst = IndexInstance {
            s: vec![false, true, false],
            x: 1,
        };
        assert!(inst.answer());
        assert_eq!(inst.len(), 3);
    }

    #[test]
    fn forced_answers() {
        for seed in 0..20 {
            assert!(IndexInstance::random_with_answer(50, true, seed).answer());
            assert!(!IndexInstance::random_with_answer(50, false, seed).answer());
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(IndexInstance::random(30, 5), IndexInstance::random(30, 5));
        assert_ne!(IndexInstance::random(30, 5), IndexInstance::random(30, 6));
    }
}

//! Communication complexity problems (Section 5 definitions).
//!
//! Each type holds one instance; `answer()` computes the ground truth. The
//! generators produce *promise* instances — for the disjointness variants,
//! the intersecting case has a unique intersecting coordinate, which is the
//! hard regime used by the reductions (and keeps the gadget cycle count
//! exactly `T` rather than a multiple).

mod disj;
mod disj3;
mod index;
mod pj3;

pub use disj::DisjInstance;
pub use disj3::Disj3Instance;
pub use index::IndexInstance;
pub use pj3::Pj3Instance;

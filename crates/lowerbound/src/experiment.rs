//! Success-probability sweeps over hard instances.
//!
//! A lower bound manifests empirically as a *threshold*: algorithms given
//! space at or above the matching upper bound distinguish the yes/no gadget
//! instances reliably, while sketches well below the bound degrade toward
//! chance. These helpers measure that success probability for any
//! (gadget-family, algorithm) pairing; the `repro_fig1_*` binaries sweep
//! them across instance sizes and budgets.

use crate::gadgets::Gadget;

/// Outcome of a distinguishing sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessReport {
    /// Trials run per answer class.
    pub trials: usize,
    /// Yes-instances classified correctly (estimate ≥ threshold).
    pub yes_correct: usize,
    /// No-instances classified correctly (estimate < threshold).
    pub no_correct: usize,
}

impl SuccessReport {
    /// Overall success probability across both classes.
    pub fn success_rate(&self) -> f64 {
        (self.yes_correct + self.no_correct) as f64 / (2 * self.trials) as f64
    }

    /// One-sided rates.
    pub fn yes_rate(&self) -> f64 {
        self.yes_correct as f64 / self.trials as f64
    }

    /// One-sided rates.
    pub fn no_rate(&self) -> f64 {
        self.no_correct as f64 / self.trials as f64
    }
}

/// Run `trials` yes- and no-instances through an estimator and classify by
/// comparing the estimate against half the promised cycle count.
///
/// `build` maps `(answer, seed)` to a gadget; `estimate` runs the algorithm
/// over the gadget (typically via [`crate::protocol::run_protocol`] or the
/// plain runner) and returns the estimated cycle count.
pub fn distinguishing_success<B, E>(trials: usize, mut build: B, mut estimate: E) -> SuccessReport
where
    B: FnMut(bool, u64) -> Gadget,
    E: FnMut(&Gadget, u64) -> f64,
{
    let mut yes_correct = 0;
    let mut no_correct = 0;
    for seed in 0..trials as u64 {
        let yes = build(true, seed);
        let threshold = yes.promised_cycles as f64 / 2.0;
        if estimate(&yes, seed) >= threshold {
            yes_correct += 1;
        }
        let no = build(false, seed);
        if estimate(&no, seed) < threshold {
            no_correct += 1;
        }
    }
    SuccessReport {
        trials,
        yes_correct,
        no_correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::disj3_triangle_gadget;
    use crate::problems::Disj3Instance;
    use adjstream_core::exact_stream::{ExactKind, ExactStreamCounter};
    use adjstream_stream::order::WithinListOrder;

    #[test]
    fn exact_counter_always_succeeds() {
        let report = distinguishing_success(
            6,
            |answer, seed| {
                let inst = Disj3Instance::random_promise(6, 0.4, answer, seed);
                disj3_triangle_gadget(&inst, 2)
            },
            |g, _seed| {
                let (count, _) = crate::protocol::run_protocol(
                    g,
                    ExactStreamCounter::new(ExactKind::Triangles),
                    WithinListOrder::Sorted,
                );
                count as f64
            },
        );
        assert_eq!(report.success_rate(), 1.0);
        assert_eq!(report.yes_rate(), 1.0);
        assert_eq!(report.no_rate(), 1.0);
    }

    #[test]
    fn blind_estimator_is_at_chance_or_worse() {
        // An estimator that always answers 0 gets every yes-instance wrong.
        let report = distinguishing_success(
            5,
            |answer, seed| {
                let inst = Disj3Instance::random_promise(6, 0.4, answer, seed);
                disj3_triangle_gadget(&inst, 2)
            },
            |_g, _seed| 0.0,
        );
        assert_eq!(report.yes_correct, 0);
        assert_eq!(report.no_correct, 5);
        assert_eq!(report.success_rate(), 0.5);
    }
}

//! Lower-bound constructions from Section 5 of the paper.
//!
//! Lower bounds cannot be *proven* by running code, but every ingredient of
//! the paper's proofs is constructive, and this crate builds all of them:
//!
//! * [`problems`] — the four communication problems (INDEX, DISJ, 3-PJ,
//!   3-DISJ) with seeded instance generators,
//! * [`gadgets`] — the five Figure-1 encodings of those problems into
//!   adjacency-list streams whose graphs have either `0` or `T` ℓ-cycles,
//! * [`protocol`] — a simulator that runs any streaming algorithm as the
//!   players' protocol, measuring the communication (= algorithm state at
//!   each handoff) that a space-`s` algorithm would imply,
//! * [`experiment`] — success-probability sweeps: how often does a given
//!   algorithm at a given space budget solve the hard instances?
//!
//! Together these reproduce Figure 1 and the lower-bound rows of Table 1:
//! the gadget generators verify the promised cycle gaps, and the sweeps
//! exhibit the success-probability threshold as the sketch size crosses the
//! bound the theorems predict.

#![warn(missing_docs)]

pub mod experiment;
pub mod gadgets;
pub mod problems;
pub mod protocol;

pub use gadgets::Gadget;
pub use protocol::{run_protocol, ProtocolReport};

//! The real-world scenario corpus: seeded, checksummed stream workloads.
//!
//! Every estimate this repo produced before this module came from
//! synthetic gnm traces; the paper's bounds (Theorems 3.7/4.6) are about
//! how `T`, `Δ`, and *arrival order* drive space — the dimensions a
//! corpus of real-world-shaped instances stresses. Each [`Scenario`]
//! fixes one point in that space as a concrete item trace:
//!
//! * `power-law` — Chung–Lu with exponent 2.3, the degree shape of web /
//!   social graphs (heavy hubs, heavy per-edge triangle counts),
//! * `high-girth` — projective-plane incidence graphs, girth 6 and
//!   provably zero triangles (the estimator must say 0, not "small"),
//! * `planted` — triangle-free bipartite background plus `t` disjoint
//!   planted triangles: exact known truth with independent `m` and `T`,
//! * `temporal` — preferential attachment streamed in vertex-arrival
//!   order, the layout a crawl or a log replay actually produces,
//! * `adversarial` — hubs-last list order, the adversary's choice that
//!   starves early-wedge context (Section 1.2's "order is adversarial").
//!
//! Scenarios are pure functions of their seed: the item trace, its
//! [`Scenario::checksum`], and the exact truth reproduce bit-for-bit on
//! every host, which is what lets the cross-mode conformance harness
//! (`scenario_matrix`) assert *bit-identical* estimates rather than
//! approximate agreement.

use adjstream_graph::{exact, gen, Graph};
use adjstream_stream::adjlist::AdjListStream;
use adjstream_stream::adversarial;
use adjstream_stream::hashing::Checksum64;
use adjstream_stream::{StreamItem, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema version stamped into `CORPUS.json`.
pub const CORPUS_SCHEMA_VERSION: u32 = 1;

/// Corpus size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// One small scenario — the PR-time CI smoke leg.
    Smoke,
    /// One scenario per family, small enough for a nightly job.
    Reduced,
    /// Two per family at larger sizes.
    Full,
}

impl Scale {
    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        Some(match s {
            "smoke" => Scale::Smoke,
            "reduced" => Scale::Reduced,
            "full" => Scale::Full,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Smoke => "smoke",
            Scale::Reduced => "reduced",
            Scale::Full => "full",
        })
    }
}

/// One corpus entry: a named, seeded, checksummed item trace with its
/// exact triangle count.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique display name, e.g. `power-law(n=400,s=11)`.
    pub name: String,
    /// Family tag (one of the five module-doc families).
    pub family: &'static str,
    /// The seed everything below derives from.
    pub seed: u64,
    /// The adjacency-list stream.
    pub items: Vec<StreamItem>,
    /// [`trace_checksum`] of `items` — pins the exact byte content.
    pub checksum: u64,
    /// Exact triangle count of the underlying graph.
    pub truth: u64,
}

/// Checksum of an item sequence: the 8-byte little-endian `(src, dst)`
/// encoding fed through the streaming [`Checksum64`] — the same digest
/// `.adjb` files record for their pair region prefix, usable to pin a
/// trace without serializing it.
pub fn trace_checksum(items: &[StreamItem]) -> u64 {
    let mut h = Checksum64::new();
    let mut buf = [0u8; 8];
    for it in items {
        buf[..4].copy_from_slice(&it.src.0.to_le_bytes());
        buf[4..].copy_from_slice(&it.dst.0.to_le_bytes());
        h.update(&buf);
    }
    h.finalize()
}

fn scenario(
    name: String,
    family: &'static str,
    seed: u64,
    g: &Graph,
    order: StreamOrder,
) -> Scenario {
    let items = AdjListStream::new(g, order).collect_items();
    Scenario {
        checksum: trace_checksum(&items),
        truth: exact::count_triangles(g),
        name,
        family,
        seed,
        items,
    }
}

/// Power-law (Chung–Lu, exponent 2.3) graph in seeded-shuffled order.
pub fn power_law(n: usize, avg_deg: f64, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::chung_lu(n, 2.3, avg_deg, &mut rng);
    let order = StreamOrder::shuffled(g.vertex_count(), seed ^ 0x50_57);
    scenario(
        format!("power-law(n={n},s={seed})"),
        "power-law",
        seed,
        &g,
        order,
    )
}

/// Projective-plane incidence graph (girth 6 ⇒ zero triangles).
pub fn high_girth(min_size: usize, seed: u64) -> Scenario {
    let q = gen::plane_order_for(min_size);
    let g = gen::projective_plane_incidence(q);
    let order = StreamOrder::shuffled(g.vertex_count(), seed ^ 0x61_72);
    scenario(
        format!("high-girth(q={q},s={seed})"),
        "high-girth",
        seed,
        &g,
        order,
    )
}

/// Bipartite background plus `t` planted triangles: truth exactly `t`.
pub fn planted(m_bg: usize, t: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = ((m_bg as f64).sqrt() as usize * 2).max(16);
    let g = gen::planted_triangles_on_bipartite(side, side, m_bg.min(side * side), t, &mut rng);
    let order = StreamOrder::shuffled(g.vertex_count(), seed ^ 0x70_6C);
    scenario(
        format!("planted(m={m_bg},T={t},s={seed})"),
        "planted",
        seed,
        &g,
        order,
    )
}

/// Preferential attachment in vertex-arrival (temporal) order: list `i`
/// streams `i`-th, neighbors in id order — a crawl replay.
pub fn temporal(n: usize, k: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::barabasi_albert(n, k, &mut rng);
    let order = StreamOrder::natural(g.vertex_count());
    scenario(
        format!("temporal(n={n},k={k},s={seed})"),
        "temporal",
        seed,
        &g,
        order,
    )
}

/// Power-law graph in the hubs-last adversarial order.
pub fn adversarial_order(n: usize, avg_deg: f64, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::chung_lu(n, 2.3, avg_deg, &mut rng);
    let order = adversarial::hubs_last(&g);
    scenario(
        format!("adversarial(n={n},s={seed})"),
        "adversarial",
        seed,
        &g,
        order,
    )
}

/// The corpus at a given scale. Deterministic: same scale ⇒ same
/// scenarios, same checksums, on every host.
pub fn corpus(scale: Scale) -> Vec<Scenario> {
    match scale {
        Scale::Smoke => vec![planted(160, 12, 11)],
        Scale::Reduced => vec![
            power_law(400, 6.0, 11),
            high_girth(300, 11),
            planted(600, 40, 11),
            temporal(400, 4, 11),
            adversarial_order(400, 6.0, 11),
        ],
        Scale::Full => vec![
            power_law(2000, 8.0, 11),
            power_law(4000, 6.0, 23),
            high_girth(1000, 11),
            high_girth(2400, 23),
            planted(4000, 120, 11),
            planted(8000, 500, 23),
            temporal(2000, 6, 11),
            temporal(4000, 4, 23),
            adversarial_order(2000, 8.0, 11),
            adversarial_order(4000, 6.0, 23),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_stream::validate::validate_stream;

    #[test]
    fn corpus_is_deterministic_and_promise_valid() {
        let a = corpus(Scale::Reduced);
        let b = corpus(Scale::Reduced);
        assert_eq!(a.len(), 5);
        let families: std::collections::BTreeSet<_> = a.iter().map(|s| s.family).collect();
        assert_eq!(families.len(), 5, "one scenario per family");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.checksum, y.checksum, "{} not reproducible", x.name);
            assert_eq!(x.items, y.items);
            assert!(
                validate_stream(x.items.iter().copied()).is_ok(),
                "{} violates the promise",
                x.name
            );
        }
    }

    #[test]
    fn known_truths() {
        assert_eq!(planted(200, 17, 3).truth, 17);
        assert_eq!(high_girth(200, 3).truth, 0, "girth 6 has no triangles");
    }

    #[test]
    fn checksum_pins_content_and_order() {
        let s = planted(100, 5, 1);
        let mut reversed = s.items.clone();
        reversed.reverse();
        assert_ne!(trace_checksum(&reversed), s.checksum);
        assert_eq!(trace_checksum(&s.items), s.checksum);
    }
}

//! Plain-text table rendering for the repro binaries.
//!
//! The binaries print the same rows the paper's tables would contain;
//! keeping the renderer tiny and dependency-free makes the output easy to
//! diff into EXPERIMENTS.md.

/// A simple aligned-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] + 2 {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Format a byte count as KiB/MiB where sensible.
pub fn fbytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns align: "value" column starts at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 1], "2");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(123456.0), "123456");
        assert_eq!(fbytes(512), "512B");
        assert_eq!(fbytes(2048), "2.0KiB");
        assert_eq!(fbytes(3 << 20), "3.0MiB");
    }
}

//! Workload registry: graph families with known (or exactly computed)
//! cycle counts, parameterized so `m` and `T` can be dialed independently —
//! the knobs every Table-1 experiment sweeps.

use adjstream_graph::{exact, gen, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A prepared workload: a graph plus its exact cycle count ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name for tables.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// Exact count of the target cycle (triangles or 4-cycles depending on
    /// the family).
    pub truth: u64,
}

impl Workload {
    /// Edge count.
    pub fn m(&self) -> usize {
        self.graph.edge_count()
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.graph.vertex_count()
    }
}

/// Triangle workload: bipartite background (triangle-free) of ~`m_bg` edges
/// plus `t` planted disjoint triangles. `T = t` exactly.
pub fn planted_triangles(m_bg: usize, t: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = ((m_bg as f64).sqrt() as usize * 2).max(16);
    let g = gen::planted_triangles_on_bipartite(side, side, m_bg.min(side * side), t, &mut rng);
    Workload {
        name: format!("planted-tri(m_bg={m_bg},T={t})"),
        graph: g,
        truth: t as u64,
    }
}

/// Triangle workload: `k` disjoint `K_s` cliques (clustered triangles,
/// moderate per-edge counts `s − 2`).
pub fn clique_triangles(s: usize, k: usize) -> Workload {
    let g = gen::disjoint_cliques(s, k);
    let truth = (k * s * (s - 1) * (s - 2) / 6) as u64;
    Workload {
        name: format!("cliques(s={s},k={k})"),
        graph: g,
        truth,
    }
}

/// Triangle workload: book graph (all triangles share one heavy spine
/// edge) padded with a triangle-free background — the heavy-edge adversary.
pub fn book_triangles(m_bg: usize, t: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = ((m_bg as f64).sqrt() as usize * 2).max(16);
    let bg = gen::bipartite_gnm(side, side, m_bg.min(side * side), &mut rng);
    let g = bg.disjoint_union(&gen::book(t));
    Workload {
        name: format!("book(m_bg={m_bg},T={t})"),
        graph: g,
        truth: t as u64,
    }
}

/// Triangle workload: Chung–Lu power-law graph (exact count computed).
pub fn chung_lu_triangles(n: usize, avg_deg: f64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::chung_lu(n, 2.3, avg_deg, &mut rng);
    let truth = exact::count_triangles(&g);
    Workload {
        name: format!("chung-lu(n={n},d̄={avg_deg})"),
        graph: g,
        truth,
    }
}

/// 4-cycle workload: triangle background (4-cycle-free) plus `t` planted
/// disjoint 4-cycles. `T = t` exactly.
pub fn planted_four_cycles(bg_triangles: usize, t: usize) -> Workload {
    let bg = gen::disjoint_triangles(bg_triangles);
    let g = bg.disjoint_union(&gen::disjoint_four_cycles(t));
    Workload {
        name: format!("planted-c4(bg={bg_triangles},T={t})"),
        graph: g,
        truth: t as u64,
    }
}

/// 4-cycle workload: `K_{2,k}` theta graph plus background — the
/// heavy-wedge adversary (`C(k,2)` cycles all through one leaf pair).
pub fn theta_four_cycles(bg_triangles: usize, k: usize) -> Workload {
    let bg = gen::disjoint_triangles(bg_triangles);
    let g = bg.disjoint_union(&gen::theta_k2k(k));
    Workload {
        name: format!("theta(bg={bg_triangles},k={k})"),
        graph: g,
        truth: (k * (k - 1) / 2) as u64,
    }
}

/// 4-cycle workload: bipartite `G(a,b,m)` (exact count computed).
pub fn bipartite_four_cycles(side: usize, m: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::bipartite_gnm(side, side, m, &mut rng);
    let truth = exact::count_four_cycles(&g);
    Workload {
        name: format!("bip-gnm(side={side},m={m})"),
        graph: g,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_triangle_truth_is_exact() {
        let w = planted_triangles(2000, 64, 1);
        assert_eq!(w.truth, 64);
        assert_eq!(exact::count_triangles(&w.graph), 64);
        assert!(w.m() >= 2000);
    }

    #[test]
    fn clique_truth_formula() {
        let w = clique_triangles(6, 5);
        assert_eq!(w.truth, 100);
        assert_eq!(exact::count_triangles(&w.graph), 100);
    }

    #[test]
    fn book_truth() {
        let w = book_triangles(500, 32, 2);
        assert_eq!(exact::count_triangles(&w.graph), 32);
    }

    #[test]
    fn planted_c4_truth() {
        let w = planted_four_cycles(100, 40);
        assert_eq!(exact::count_four_cycles(&w.graph), 40);
        assert_eq!(w.truth, 40);
    }

    #[test]
    fn theta_truth() {
        let w = theta_four_cycles(50, 9);
        assert_eq!(w.truth, 36);
        assert_eq!(exact::count_four_cycles(&w.graph), 36);
    }

    #[test]
    fn computed_truth_families() {
        let w = chung_lu_triangles(400, 6.0, 3);
        assert_eq!(w.truth, exact::count_triangles(&w.graph));
        let w = bipartite_four_cycles(40, 400, 4);
        assert_eq!(w.truth, exact::count_four_cycles(&w.graph));
    }
}

//! Reproduces **Figure 1a/1b** and the Table-1 triangle lower-bound rows
//! (Theorems 5.1 and 5.2): the 3-PJ and 3-DISJ gadget encodings.
//!
//! For each instance size the harness (i) certifies the 0-vs-T triangle gap
//! with the exact counter, (ii) simulates the induced protocol: running the
//! paper's own two-pass algorithm at its upper-bound budget *solves* the
//! communication problem — the reduction in action — with per-handoff
//! message sizes matching the algorithm's space, while starving the
//! algorithm of space drives it to chance.

use adjstream_bench::report::{fbytes, fnum, Table};
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream_lowerbound::experiment::distinguishing_success;
use adjstream_lowerbound::gadgets::{disj3_triangle_gadget, pj3_triangle_gadget};
use adjstream_lowerbound::problems::{Disj3Instance, Pj3Instance};
use adjstream_lowerbound::protocol::run_protocol;
use adjstream_lowerbound::Gadget;
use adjstream_stream::order::WithinListOrder;

fn two_pass_estimate(g: &Gadget, budget: usize, seed: u64) -> (f64, usize) {
    let cfg = TwoPassTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    };
    let (est, report) = run_protocol(g, TwoPassTriangle::new(cfg), WithinListOrder::Sorted);
    (est.estimate, report.max_message)
}

fn sweep(label: &str, build: &dyn Fn(bool, u64) -> Gadget) {
    let trials = 15;
    let probe = build(true, 0);
    let m = probe.graph.edge_count();
    let t = probe.promised_cycles;
    let bound = m as f64 / (t as f64).powf(2.0 / 3.0);
    println!(
        "-- {label}: m = {m}, T = {t}, upper-bound budget m/T^(2/3) = {} --",
        fnum(bound)
    );
    let mut table = Table::new([
        "budget",
        "budget/bound",
        "max-message",
        "success-rate",
        "P[yes]",
        "P[no]",
    ]);
    for mult in [0.25, 1.0, 4.0, 16.0] {
        let budget = ((bound * mult).ceil() as usize).clamp(2, 2 * m);
        let mut max_msg = 0usize;
        let report = distinguishing_success(trials, build, |g, seed| {
            let (est, msg) = two_pass_estimate(g, budget, seed);
            max_msg = max_msg.max(msg);
            est
        });
        table.row([
            budget.to_string(),
            fnum(mult),
            fbytes(max_msg),
            fnum(report.success_rate()),
            fnum(report.yes_rate()),
            fnum(report.no_rate()),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    println!("== Figure 1a: one-pass triangle LB from 3-PJ (Thm 5.1) ==\n");
    // Gap certification across sizes.
    let mut gap = Table::new(["r", "k", "n", "m", "cycles(yes)", "cycles(no)"]);
    for (r, k) in [(16usize, 4usize), (32, 6), (64, 8)] {
        let yes = pj3_triangle_gadget(&Pj3Instance::random_with_answer(r, true, 1), k);
        let no = pj3_triangle_gadget(&Pj3Instance::random_with_answer(r, false, 1), k);
        gap.row([
            r.to_string(),
            k.to_string(),
            yes.graph.vertex_count().to_string(),
            yes.graph.edge_count().to_string(),
            adjstream_graph::exact::count_triangles(&yes.graph).to_string(),
            adjstream_graph::exact::count_triangles(&no.graph).to_string(),
        ]);
    }
    println!("{gap}", gap = gap.render());
    sweep(
        "3-PJ gadget, 2-pass algorithm as protocol",
        &|answer, seed| pj3_triangle_gadget(&Pj3Instance::random_with_answer(48, answer, seed), 8),
    );

    println!("== Figure 1b: multi-pass triangle LB from 3-DISJ (Thm 5.2) ==\n");
    let mut gap = Table::new(["r", "k", "n", "m", "cycles(yes)", "cycles(no)"]);
    for (r, k) in [(16usize, 3usize), (32, 4), (64, 5)] {
        let yes = disj3_triangle_gadget(&Disj3Instance::random_promise(r, 0.3, true, 1), k);
        let no = disj3_triangle_gadget(&Disj3Instance::random_promise(r, 0.3, false, 1), k);
        gap.row([
            r.to_string(),
            k.to_string(),
            yes.graph.vertex_count().to_string(),
            yes.graph.edge_count().to_string(),
            adjstream_graph::exact::count_triangles(&yes.graph).to_string(),
            adjstream_graph::exact::count_triangles(&no.graph).to_string(),
        ]);
    }
    println!("{}", gap.render());
    sweep(
        "3-DISJ gadget, 2-pass algorithm as protocol",
        &|answer, seed| {
            disj3_triangle_gadget(&Disj3Instance::random_promise(48, 0.3, answer, seed), 4)
        },
    );
}

//! Reproduces the **Table 1** distinguisher row: \[27\]'s two-pass
//! `Õ(m/T^{2/3})` algorithm separating triangle-free graphs from graphs
//! with `T` triangles.
//!
//! For each planted `T`, the budget sweeps multiples of the paper bound
//! `m/T^{2/3}`: detection probability should cross from near-chance to
//! near-certain around constant × the bound, while the no-instance rate
//! stays at 1.0 (one-sided error).

use adjstream_bench::report::{fnum, Table};
use adjstream_bench::sweeps::distinguisher_success;
use adjstream_bench::workloads;

fn main() {
    println!("== Table 1 (2-pass 0-vs-T distinguisher, O(m/T^2/3)) ==\n");
    let trials = 40;
    let mut t = Table::new([
        "T",
        "m",
        "bound=m/T^2/3",
        "budget",
        "budget/bound",
        "P[detect|yes]",
        "P[reject|no]",
    ]);
    for exp in [4u32, 6, 8, 10] {
        let tt = 1usize << exp;
        let yes = workloads::planted_triangles(20_000, tt, 3 + exp as u64);
        let no = workloads::planted_triangles(20_000, 0, 1003 + exp as u64);
        let bound = yes.m() as f64 / (tt as f64).powf(2.0 / 3.0);
        for mult in [0.25, 1.0, 4.0, 16.0] {
            let budget = ((bound * mult).ceil() as usize).clamp(2, yes.m());
            let (py, pn) = distinguisher_success(&yes, &no, budget, trials, 77 + exp as u64);
            t.row([
                tt.to_string(),
                yes.m().to_string(),
                fnum(bound),
                budget.to_string(),
                fnum(mult),
                fnum(py),
                fnum(pn),
            ]);
        }
    }
    println!("{}", t.render());
}

//! Model comparison (Section 1.1 context): what does the adjacency-list
//! *promise* buy over arbitrary edge order at equal space?
//!
//! At each edge budget `m′`, three one/two-pass estimators run on the same
//! graphs: TRIÈST-base in the arbitrary-order model (the practical
//! state-of-the-art there — recall one-pass arbitrary-order counting has an
//! `Ω(m)` worst case \[9\]), the adjacency-list one-pass sampler
//! (`Õ(m/√T)` \[27\]), and the paper's two-pass algorithm
//! (`Õ(m/T^{2/3})`, Theorem 3.7). Seeing whole neighborhoods at once — the
//! promise — should show up as lower error at every budget, with the
//! two-pass algorithm extending the advantage.

use adjstream_bench::report::{fnum, Table};
use adjstream_bench::workloads;
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{
    OnePassTriangle, TriestBase, TwoPassTriangle, TwoPassTriangleConfig,
};
use adjstream_stream::arbitrary::{run_edge_stream, ArbitraryOrderStream};
use adjstream_stream::estimator::{median, variance};
use adjstream_stream::{PassOrders, Runner, StreamOrder};

fn main() {
    println!("== Adjacency-list promise vs arbitrary order, equal edge budget ==\n");
    let reps = 31u64;
    let mut t = Table::new([
        "workload",
        "T",
        "budget",
        "model/algorithm",
        "median-est",
        "rel-err",
        "std-dev",
    ]);
    for w in [
        workloads::planted_triangles(12_000, 256, 1),
        workloads::clique_triangles(6, 40),
        workloads::chung_lu_triangles(3_000, 8.0, 2),
    ] {
        let n = w.n();
        let truth = w.truth as f64;
        for div in [8usize, 32] {
            let budget = (w.m() / div).max(16);
            // Arbitrary order: TRIÈST.
            let vals: Vec<f64> = (0..reps)
                .map(|seed| {
                    let s = ArbitraryOrderStream::new(&w.graph, seed);
                    let (est, _) = run_edge_stream(&s, TriestBase::new(seed ^ 0x7, budget));
                    est.estimate
                })
                .collect();
            push(&mut t, &w, budget, "arbitrary / TRIEST-base", &vals, truth);
            // Adjacency list, one pass.
            let vals: Vec<f64> = (0..reps)
                .map(|seed| {
                    let (est, _) = Runner::run(
                        &w.graph,
                        OnePassTriangle::new(seed, EdgeSampling::BottomK { k: budget }),
                        &PassOrders::Same(StreamOrder::shuffled(n, seed)),
                    );
                    est.estimate
                })
                .collect();
            push(&mut t, &w, budget, "adj-list / 1-pass [27]", &vals, truth);
            // Adjacency list, two passes (Theorem 3.7).
            let vals: Vec<f64> = (0..reps)
                .map(|seed| {
                    let cfg = TwoPassTriangleConfig {
                        seed,
                        edge_sampling: EdgeSampling::BottomK { k: budget },
                        pair_capacity: budget,
                    };
                    let (est, _) = Runner::run(
                        &w.graph,
                        TwoPassTriangle::new(cfg),
                        &PassOrders::Same(StreamOrder::shuffled(n, seed)),
                    );
                    est.estimate
                })
                .collect();
            push(&mut t, &w, budget, "adj-list / 2-pass Thm3.7", &vals, truth);
        }
    }
    println!("{}", t.render());
}

fn push(
    t: &mut Table,
    w: &workloads::Workload,
    budget: usize,
    label: &str,
    vals: &[f64],
    truth: f64,
) {
    let med = median(vals);
    t.row([
        w.name.clone(),
        fnum(truth),
        budget.to_string(),
        label.to_string(),
        fnum(med),
        fnum((med - truth).abs() / truth),
        fnum(variance(vals).sqrt()),
    ]);
}

//! Cross-mode differential conformance harness over the scenario corpus.
//!
//! Drives every corpus entry ([`adjstream_bench::scenario`]) through the
//! full execution-mode matrix and asserts that the Theorem 3.7
//! shard-mergeable estimator returns *bit-identical* estimates in every
//! mode — the flywheel that keeps the batched engine, graph sharding,
//! mmap replay, and the ingestion guard honest against the plain
//! sequential driver on realistically-shaped instances:
//!
//! | mode                  | what it exercises                               |
//! |-----------------------|-------------------------------------------------|
//! | sequential            | reference: one in-process replay per pass       |
//! | batched-t1/t4         | stream-once batched engine, 1 and 4 threads     |
//! | sharded-2/8           | graph-sharded scale-out, per-shard merge        |
//! | mmap                  | zero-copy `.adjb` replay, windowed checksum     |
//! | guarded-repair        | seeded faults injected, repaired inline         |
//! | guarded-repair-shard2 | same faults repaired once upstream, then sharded|
//!
//! The injected faults are the two *removable* kinds (self-loops and
//! duplicate items): repairing them restores the clean stream exactly, so
//! even the guarded modes must land on the reference bits, and the two
//! guarded modes must report identical [`GuardStats`].
//!
//! Output: a schema-versioned `CORPUS.json` (`--out`) plus optional
//! per-scenario metrics snapshots (`--metrics-out DIR`). Exit code 1 on
//! any divergence.
//!
//! ```text
//! cargo run --release -p adjstream-bench --bin scenario_matrix -- \
//!     --scale reduced --out CORPUS.json --metrics-out corpus-metrics/
//! ```

use std::fmt::Write as _;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::time::Instant;

use adjstream_bench::report::Table;
use adjstream_bench::scenario::{corpus, Scale, Scenario, CORPUS_SCHEMA_VERSION};
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{ShardedTriangle, ShardedTriangleConfig};
use adjstream_stream::batch::{BatchConfig, BatchRunner};
use adjstream_stream::fault::{FaultKind, FaultPlan};
use adjstream_stream::mmapfile::MappedTrace;
use adjstream_stream::obs::Metrics;
use adjstream_stream::runner::{run_slice_passes, GuardStats, MultiPassAlgorithm};
use adjstream_stream::shard::{run_sharded, ShardPlan};
use adjstream_stream::trace::ItemTrace;
use adjstream_stream::{GuardPolicy, Guarded, SpaceUsage, StreamItem};

/// One mode's result on one scenario.
struct ModeResult {
    mode: &'static str,
    estimate: f64,
    wall_ms: f64,
    peak_bytes: usize,
    guard: Option<GuardStats>,
}

/// One-pass collector: repairs a faulty stream once, upstream of the
/// shard split (the same construction the CLI and the shard-equivalence
/// suite use).
#[derive(Default)]
struct CollectItems {
    items: Vec<StreamItem>,
}

impl SpaceUsage for CollectItems {
    fn space_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<StreamItem>()
    }
}

impl MultiPassAlgorithm for CollectItems {
    type Output = Vec<StreamItem>;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn item(&mut self, src: adjstream_graph::VertexId, dst: adjstream_graph::VertexId) {
        self.items.push(StreamItem::new(src, dst));
    }

    fn finish(self) -> Vec<StreamItem> {
        self.items
    }
}

fn config(seed: u64, items: usize) -> ShardedTriangleConfig {
    ShardedTriangleConfig {
        seed: seed ^ 0x00C0_FFEE,
        edge_sampling: EdgeSampling::BottomK {
            k: (items / 8).max(8),
        },
        pair_capacity: (items / 8).max(8),
    }
}

fn run_modes(
    sc: &Scenario,
    metrics_dir: Option<&Path>,
    tmp_dir: &Path,
) -> Result<Vec<ModeResult>, String> {
    let items = &sc.items;
    let cfg = config(sc.seed, items.len().max(1));
    let mut results = Vec::new();

    // Reference: plain sequential replay.
    let t0 = Instant::now();
    let (want, want_report) = run_slice_passes(ShardedTriangle::new(cfg), |_pass| &items[..])
        .map_err(|e| format!("sequential run failed: {e}"))?;
    results.push(ModeResult {
        mode: "sequential",
        estimate: want.estimate,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        peak_bytes: want_report.peak_state_bytes,
        guard: None,
    });

    // Batched engine, 1 and 4 worker threads.
    for (mode, threads) in [("batched-t1", 1usize), ("batched-t4", 4)] {
        let t0 = Instant::now();
        let outcome = BatchRunner::try_run_items(
            vec![ShardedTriangle::new(cfg)],
            |_pass| items.clone(),
            &BatchConfig::with_threads(threads),
        )
        .map_err(|e| format!("{mode} run failed: {e}"))?;
        let est = outcome.outputs[0]
            .as_ref()
            .ok_or_else(|| format!("{mode}: instance quarantined"))?;
        results.push(ModeResult {
            mode,
            estimate: est.estimate,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            peak_bytes: outcome.report.per_instance[0].peak_state_bytes,
            guard: None,
        });
    }

    // Graph-sharded scale-out at 2 and 8 shards. The 2-shard run feeds
    // the per-scenario metrics snapshot.
    for (mode, shards) in [("sharded-2", 2usize), ("sharded-8", 8)] {
        let metrics = if shards == 2 && metrics_dir.is_some() {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        };
        let plan = ShardPlan::build(items, shards);
        let t0 = Instant::now();
        let (got, report) = run_sharded(ShardedTriangle::new(cfg), &plan, items, &metrics)
            .map_err(|e| format!("{mode} run failed: {e}"))?;
        if let (Some(dir), Some(snap)) = (metrics_dir.filter(|_| shards == 2), metrics.snapshot()) {
            let path = dir.join(format!("{}.json", slug(&sc.name)));
            std::fs::write(&path, snap.to_json())
                .map_err(|e| format!("writing metrics snapshot {}: {e}", path.display()))?;
        }
        results.push(ModeResult {
            mode,
            estimate: got.estimate,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            peak_bytes: report.peak_state_bytes,
            guard: None,
        });
    }

    // Zero-copy mmap replay of the serialized trace.
    {
        let path = tmp_dir.join(format!("{}.adjb", slug(&sc.name)));
        let trace = ItemTrace::new_unchecked(items.clone());
        let mut f = File::create(&path).map_err(|e| format!("writing {}: {e}", path.display()))?;
        trace
            .write_adjb(&mut f)
            .map_err(|e| format!("serializing {}: {e}", path.display()))?;
        drop(f);
        let t0 = Instant::now();
        let mut mapped =
            MappedTrace::open(&path).map_err(|e| format!("mmap {}: {e}", path.display()))?;
        mapped
            .verify_all(1 << 20)
            .map_err(|e| format!("mmap verify {}: {e}", path.display()))?;
        let (got, report) = run_slice_passes(ShardedTriangle::new(cfg), |_pass| mapped.items())
            .map_err(|e| format!("mmap run failed: {e}"))?;
        let _ = std::fs::remove_file(&path);
        results.push(ModeResult {
            mode: "mmap",
            estimate: got.estimate,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            peak_bytes: report.peak_state_bytes,
            guard: None,
        });
    }

    // Guarded repair under injected faults. Only removable kinds: the
    // repair restores the clean stream, so the estimate must still match.
    let corrupted = FaultPlan::new(sc.seed ^ 0xF417)
        .with(FaultKind::InjectSelfLoop, 3)
        .with(FaultKind::DuplicateItem, 3)
        .apply(items);
    {
        let t0 = Instant::now();
        let (got, report) = run_slice_passes(
            Guarded::new(ShardedTriangle::new(cfg), GuardPolicy::Repair),
            |pass| corrupted.items_for_pass(pass),
        )
        .map_err(|e| format!("guarded-repair run failed: {e}"))?;
        results.push(ModeResult {
            mode: "guarded-repair",
            estimate: got.estimate,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            peak_bytes: report.peak_state_bytes,
            guard: report.guard,
        });
    }
    {
        // Repair once upstream, then shard — the CLI's construction.
        let t0 = Instant::now();
        let (fixed, repair_report) = run_slice_passes(
            Guarded::new(CollectItems::default(), GuardPolicy::Repair),
            |_pass| corrupted.items(),
        )
        .map_err(|e| format!("upstream repair failed: {e}"))?;
        let plan = ShardPlan::build(&fixed, 2);
        let (got, report) = run_sharded(
            ShardedTriangle::new(cfg),
            &plan,
            &fixed,
            &Metrics::disabled(),
        )
        .map_err(|e| format!("guarded-repair-shard2 run failed: {e}"))?;
        results.push(ModeResult {
            mode: "guarded-repair-shard2",
            estimate: got.estimate,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            peak_bytes: report.peak_state_bytes,
            guard: repair_report.guard,
        });
    }

    Ok(results)
}

/// Check one scenario's mode results against the reference (index 0).
/// Returns human-readable divergence descriptions (empty = conformant).
fn divergences(results: &[ModeResult]) -> Vec<String> {
    let mut bad = Vec::new();
    let want = results[0].estimate.to_bits();
    for r in &results[1..] {
        if r.estimate.to_bits() != want {
            bad.push(format!(
                "{}: estimate {:.6} (bits {:#018x}) != reference {:.6} (bits {:#018x})",
                r.mode,
                r.estimate,
                r.estimate.to_bits(),
                results[0].estimate,
                want
            ));
        }
    }
    let guards: Vec<&GuardStats> = results.iter().filter_map(|r| r.guard.as_ref()).collect();
    // The semantic counters must agree; validator_peak_bytes is guard
    // *overhead* and legitimately differs between an inline multi-pass
    // guard and a one-pass upstream repair.
    let semantic = |g: &GuardStats| (g.faults_detected, g.items_repaired, g.edges_quarantined);
    if guards.len() == 2 && semantic(guards[0]) != semantic(guards[1]) {
        bad.push(format!(
            "guard stats diverge between guarded modes: {:?} != {:?}",
            guards[0], guards[1]
        ));
    }
    if let Some(g) = guards.first() {
        if g.faults_detected == 0 {
            bad.push("guarded mode detected no injected faults".to_string());
        }
    }
    bad
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Reduced;
    let mut out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("bad --scale (smoke|reduced|full)");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a directory");
                    std::process::exit(2);
                })));
            }
            other => {
                eprintln!("unknown flag {other:?}");
                eprintln!(
                    "usage: scenario_matrix [--scale smoke|reduced|full] [--out CORPUS.json] [--metrics-out DIR]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(dir) = &metrics_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --metrics-out {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let tmp_dir = std::env::temp_dir().join(format!("scenario-matrix-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&tmp_dir) {
        eprintln!("cannot create temp dir {}: {e}", tmp_dir.display());
        std::process::exit(2);
    }

    let scenarios = corpus(scale);
    let mut table = Table::new([
        "scenario", "family", "items", "truth", "estimate", "modes", "agree",
    ]);
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"schema\":{CORPUS_SCHEMA_VERSION},\"scale\":\"{scale}\",\"scenarios\":["
    );
    let mut failures = 0usize;
    for (idx, sc) in scenarios.iter().enumerate() {
        let results = match run_modes(sc, metrics_out.as_deref(), &tmp_dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", sc.name);
                failures += 1;
                continue;
            }
        };
        let bad = divergences(&results);
        for b in &bad {
            eprintln!("{}: DIVERGENCE: {b}", sc.name);
        }
        failures += bad.len();
        table.row([
            sc.name.clone(),
            sc.family.to_string(),
            sc.items.len().to_string(),
            sc.truth.to_string(),
            format!("{:.2}", results[0].estimate),
            results.len().to_string(),
            if bad.is_empty() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        if idx > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"name\":\"{}\",\"family\":\"{}\",\"seed\":{},\"items\":{},\"checksum\":\"{:#018x}\",\
             \"truth\":{},\"agree\":{},\"modes\":[",
            json_escape(&sc.name),
            sc.family,
            sc.seed,
            sc.items.len(),
            sc.checksum,
            sc.truth,
            bad.is_empty()
        );
        for (j, r) in results.iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"mode\":\"{}\",\"estimate\":{},\"estimate_bits\":\"{:#018x}\",\
                 \"wall_ms\":{:.3},\"peak_bytes\":{}",
                r.mode,
                r.estimate,
                r.estimate.to_bits(),
                r.wall_ms,
                r.peak_bytes
            );
            if let Some(g) = &r.guard {
                let _ = write!(
                    json,
                    ",\"guard\":{{\"faults_detected\":{},\"items_repaired\":{},\"edges_quarantined\":{}}}",
                    g.faults_detected, g.items_repaired, g.edges_quarantined
                );
            }
            json.push('}');
        }
        json.push_str("]}");
    }
    let _ = write!(json, "],\"failures\":{failures}}}");
    let _ = std::fs::remove_dir_all(&tmp_dir);

    println!("{}", table.render());
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("report: {}", path.display());
    }
    if failures > 0 {
        eprintln!("scenario-matrix: {failures} divergence(s)");
        std::process::exit(1);
    }
    println!(
        "scenario-matrix: all {} scenarios bit-identical across all modes",
        scenarios.len()
    );
}

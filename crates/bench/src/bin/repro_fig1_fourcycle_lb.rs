//! Reproduces **Figure 1c/1d** and the Table-1 4-cycle lower-bound rows
//! (Theorems 5.3 and 5.4): INDEX and DISJ encodings over girth-6
//! projective-plane graphs.
//!
//! Figure 1c is a *one-pass* `Ω(m)` bound: the harness shows the one-pass
//! naive sampled-subgraph estimator failing at sublinear budgets while the
//! paper's *two-pass* algorithm — which the one-pass bound does not cover —
//! solves the same instances with sublinear messages, exactly the
//! single-pass/multi-pass separation the paper proves for 4-cycles.
//! Figure 1d is the multi-pass `Ω(m/T^{2/3})` bound; the two-pass
//! algorithm's required budget sits above it.

use adjstream_bench::report::{fbytes, fnum, Table};
use adjstream_core::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream_core::sampled_subgraph::SampledSubgraphCycles;
use adjstream_lowerbound::experiment::distinguishing_success;
use adjstream_lowerbound::gadgets::{
    disj_four_cycle_gadget, index_four_cycle_gadget, random_disj_instance_for_plane,
    random_index_instance_for_plane,
};
use adjstream_lowerbound::protocol::run_protocol;
use adjstream_lowerbound::Gadget;
use adjstream_stream::order::WithinListOrder;

fn two_pass_estimate(g: &Gadget, budget: usize, seed: u64) -> (f64, usize) {
    let cfg = TwoPassFourCycleConfig {
        seed,
        edge_sample_size: budget,
        estimator: FourCycleEstimator::DistinctCycles,
        max_wedges: None,
    };
    let (est, report) = run_protocol(g, TwoPassFourCycle::new(cfg), WithinListOrder::Sorted);
    (est.estimate, report.max_message)
}

fn one_pass_naive_estimate(g: &Gadget, budget: usize, seed: u64) -> (f64, usize) {
    let (est, report) = run_protocol(
        g,
        SampledSubgraphCycles::new(seed, 4, budget),
        WithinListOrder::Sorted,
    );
    (est.estimate, report.max_message)
}

fn main() {
    println!("== Figure 1c: one-pass 4-cycle LB from INDEX (Thm 5.3) ==\n");
    let mut gap = Table::new(["q", "k=T", "n", "m", "C4(yes)", "C4(no)"]);
    for (q, k) in [(2u32, 4usize), (3, 6), (5, 8)] {
        let yes = index_four_cycle_gadget(&random_index_instance_for_plane(q, true, 1), q, k);
        let no = index_four_cycle_gadget(&random_index_instance_for_plane(q, false, 1), q, k);
        gap.row([
            q.to_string(),
            k.to_string(),
            yes.graph.vertex_count().to_string(),
            yes.graph.edge_count().to_string(),
            adjstream_graph::exact::count_four_cycles(&yes.graph).to_string(),
            adjstream_graph::exact::count_four_cycles(&no.graph).to_string(),
        ]);
    }
    println!("{}", gap.render());

    let trials = 15;
    let build_c = |answer: bool, seed: u64| {
        index_four_cycle_gadget(&random_index_instance_for_plane(5, answer, seed), 5, 8)
    };
    let probe = build_c(true, 0);
    let m = probe.graph.edge_count();
    println!(
        "-- INDEX gadget (q=5): m = {m}, T = {} --",
        probe.promised_cycles
    );
    let mut table = Table::new([
        "algorithm",
        "budget",
        "budget/m",
        "max-message",
        "success-rate",
    ]);
    for frac in [0.05, 0.2, 1.0] {
        let budget = ((m as f64 * frac).ceil() as usize).max(2);
        let mut max_msg = 0usize;
        let rep = distinguishing_success(trials, build_c, |g, seed| {
            let (est, msg) = one_pass_naive_estimate(g, budget, seed);
            max_msg = max_msg.max(msg);
            est
        });
        table.row([
            "1-pass sampled-subgraph".to_string(),
            budget.to_string(),
            fnum(frac),
            fbytes(max_msg),
            fnum(rep.success_rate()),
        ]);
    }
    for frac in [0.05, 0.2, 1.0] {
        let budget = ((m as f64 * frac).ceil() as usize).max(2);
        let mut max_msg = 0usize;
        let rep = distinguishing_success(trials, build_c, |g, seed| {
            let (est, msg) = two_pass_estimate(g, budget, seed);
            max_msg = max_msg.max(msg);
            est
        });
        table.row([
            "2-pass Thm 4.6".to_string(),
            budget.to_string(),
            fnum(frac),
            fbytes(max_msg),
            fnum(rep.success_rate()),
        ]);
    }
    println!("{}", table.render());

    println!("== Figure 1d: multi-pass 4-cycle LB from DISJ (Thm 5.4) ==\n");
    let mut gap = Table::new(["q1", "q2", "n", "m", "C4(yes)", "C4(no)"]);
    for (q1, q2) in [(2u32, 2u32), (3, 2), (2, 3)] {
        let yes = disj_four_cycle_gadget(&random_disj_instance_for_plane(q1, 0.3, true, 1), q1, q2);
        let no = disj_four_cycle_gadget(&random_disj_instance_for_plane(q1, 0.3, false, 1), q1, q2);
        gap.row([
            q1.to_string(),
            q2.to_string(),
            yes.graph.vertex_count().to_string(),
            yes.graph.edge_count().to_string(),
            adjstream_graph::exact::count_four_cycles(&yes.graph).to_string(),
            adjstream_graph::exact::count_four_cycles(&no.graph).to_string(),
        ]);
    }
    println!("{}", gap.render());

    let build_d = |answer: bool, seed: u64| {
        disj_four_cycle_gadget(&random_disj_instance_for_plane(3, 0.3, answer, seed), 3, 2)
    };
    let probe = build_d(true, 0);
    let m = probe.graph.edge_count();
    let t = probe.promised_cycles as f64;
    let lb = m as f64 / t.powf(2.0 / 3.0);
    println!(
        "-- DISJ gadget (q1=3, q2=2): m = {m}, T = {t}, LB floor m/T^(2/3) = {} --",
        fnum(lb)
    );
    let mut table = Table::new(["budget", "budget/LB", "max-message", "success-rate"]);
    for mult in [0.5, 2.0, 8.0] {
        let budget = ((lb * mult).ceil() as usize).clamp(2, 2 * m);
        let mut max_msg = 0usize;
        let rep = distinguishing_success(trials, build_d, |g, seed| {
            let (est, msg) = two_pass_estimate(g, budget, seed);
            max_msg = max_msg.max(msg);
            est
        });
        table.row([
            budget.to_string(),
            fnum(mult),
            fbytes(max_msg),
            fnum(rep.success_rate()),
        ]);
    }
    println!("{}", table.render());
}

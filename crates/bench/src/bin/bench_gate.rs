//! Bench-regression gate: compare freshly produced `BENCH_*.json` files
//! against committed baselines and flag throughput drops.
//!
//! ```text
//! bench_gate BASELINE.json CURRENT.json [BASELINE2.json CURRENT2.json ...]
//! ```
//!
//! Every bench harness in this workspace writes its rows one JSON object
//! per line with string labels and an `items_per_sec` field; the gate
//! matches rows across the two files by their concatenated string labels
//! and compares throughput. A row is flagged when current throughput falls
//! below `(1 − tolerance) ×` baseline.
//!
//! The tolerance is resolved per row, most specific wins: a `"tol"` field
//! on the baseline row itself, else a top-level `"gate_tolerance"` field
//! in the baseline file, else `BENCH_GATE_TOLERANCE`, else 0.25. Shared CI
//! runners are noisy, so committed baselines carry generous file-level
//! tolerances and reserve row-level `"tol"` for known-jittery cases.
//!
//! With `BENCH_GATE_STRICT=1` any flagged row fails the run (this is how
//! CI invokes it); `BENCH_GATE_WARN_ONLY=1` is the escape hatch that
//! downgrades a strict run back to advisory without editing the workflow.
//! Baselines live in `crates/bench/baselines/` and are refreshed
//! deliberately, by committing a new file — never automatically.

use adjstream_bench::report::Table;
use std::process::ExitCode;

/// One bench row: its identifying label (the row's string field values
/// joined with `/`), its throughput, and an optional row-level tolerance
/// override (`"tol"` on baseline rows).
#[derive(Debug, PartialEq)]
struct BenchRow {
    label: String,
    items_per_sec: f64,
    tol: Option<f64>,
}

/// Extract `"key": "value"` string fields from a single row line, in
/// order, skipping the shared `"bench"`/`"mode"` headers handled upstream.
fn string_values(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(colon) = rest.find("\": \"") {
        let after = &rest[colon + 4..];
        let Some(end) = after.find('"') else { break };
        out.push(&after[..end]);
        rest = &after[end..];
    }
    out
}

/// Extract the number following `"<key>": ` in the text.
fn num_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let idx = text.find(&needle)?;
    let after = text[idx + needle.len()..].trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Extract the number following `"items_per_sec": ` on the line.
fn items_per_sec(line: &str) -> Option<f64> {
    num_field(line, "items_per_sec")
}

/// A valid tolerance is a finite fraction strictly between 0 and 1.
fn valid_tol(t: f64) -> Option<f64> {
    (t.is_finite() && t > 0.0 && t < 1.0).then_some(t)
}

/// The baseline file's top-level `"gate_tolerance"` field, if present on
/// a line of its own (i.e. not inside a row object).
fn file_tolerance(text: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.contains("items_per_sec"))
        .find_map(|l| num_field(l, "gate_tolerance"))
        .and_then(valid_tol)
}

/// Parse every row object carrying an `items_per_sec` field. The bench
/// harnesses emit one row per line, so line-oriented scanning is exact for
/// files we generate ourselves — this is not a general JSON parser.
fn parse_rows(text: &str) -> Vec<BenchRow> {
    text.lines()
        .filter_map(|line| {
            let ips = items_per_sec(line)?;
            let labels = string_values(line);
            if labels.is_empty() {
                return None;
            }
            Some(BenchRow {
                label: labels.join("/"),
                items_per_sec: ips,
                tol: num_field(line, "tol").and_then(valid_tol),
            })
        })
        .collect()
}

fn env_tolerance() -> f64 {
    std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .and_then(valid_tol)
        .unwrap_or(0.25)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_gate BASELINE.json CURRENT.json [...]");
        return ExitCode::from(2);
    }
    let env_tol = env_tolerance();
    let strict = std::env::var("BENCH_GATE_STRICT").as_deref() == Ok("1")
        && std::env::var("BENCH_GATE_WARN_ONLY").as_deref() != Ok("1");
    let mut table = Table::new([
        "bench pair",
        "row",
        "baseline",
        "current",
        "ratio",
        "tol",
        "status",
    ]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for pair in args.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("bench_gate: cannot read {p}: {e}");
                String::new()
            })
        };
        let base_text = read(base_path);
        let file_tol = file_tolerance(&base_text);
        let base_rows = parse_rows(&base_text);
        let cur_rows = parse_rows(&read(cur_path));
        let pair_name = format!(
            "{} vs {}",
            base_path.rsplit('/').next().unwrap_or(base_path),
            cur_path.rsplit('/').next().unwrap_or(cur_path)
        );
        for b in &base_rows {
            let Some(c) = cur_rows.iter().find(|c| c.label == b.label) else {
                table.row([
                    pair_name.clone(),
                    b.label.clone(),
                    format!("{:.3e}", b.items_per_sec),
                    "missing".into(),
                    "-".into(),
                    "-".into(),
                    "MISSING".into(),
                ]);
                regressions += 1;
                continue;
            };
            compared += 1;
            // Most specific tolerance wins: row > file > env/default.
            let tol = b.tol.or(file_tol).unwrap_or(env_tol);
            let ratio = c.items_per_sec / b.items_per_sec;
            let status = if ratio < 1.0 - tol {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            table.row([
                pair_name.clone(),
                b.label.clone(),
                format!("{:.3e}", b.items_per_sec),
                format!("{:.3e}", c.items_per_sec),
                format!("{ratio:.3}"),
                format!("{tol:.2}"),
                status.into(),
            ]);
        }
    }
    eprintln!("{}", table.render());
    eprintln!(
        "bench_gate: {compared} rows compared, {regressions} flagged ({})",
        if strict { "strict" } else { "warn-only" }
    );
    if regressions > 0 && strict {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str =
        "    {\"variant\": \"plain\", \"wall_secs\": 0.1234, \"items_per_sec\": 1500000}";

    #[test]
    fn parses_single_label_rows() {
        let rows = parse_rows(ROW);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "plain");
        assert_eq!(rows[0].items_per_sec, 1_500_000.0);
        assert_eq!(rows[0].tol, None);
    }

    #[test]
    fn row_level_tol_is_parsed_and_validated() {
        let row = "{\"variant\": \"noisy\", \"tol\": 0.7, \"items_per_sec\": 1e6}";
        assert_eq!(parse_rows(row)[0].tol, Some(0.7));
        let bad = "{\"variant\": \"noisy\", \"tol\": 1.7, \"items_per_sec\": 1e6}";
        assert_eq!(parse_rows(bad)[0].tol, None);
    }

    #[test]
    fn file_tolerance_reads_top_level_field_only() {
        let text = "{\n  \"bench\": \"x\",\n  \"gate_tolerance\": 0.6,\n  \
                    {\"variant\": \"a\", \"items_per_sec\": 1e6},\n}\n";
        assert_eq!(file_tolerance(text), Some(0.6));
        // A `gate_tolerance` that only appears inside a row line is ignored.
        let inline = "{\"variant\": \"a\", \"gate_tolerance\": 0.9, \"items_per_sec\": 1e6}";
        assert_eq!(file_tolerance(inline), None);
        assert_eq!(file_tolerance("{}"), None);
    }

    #[test]
    fn joins_multi_label_rows_and_skips_non_rows() {
        let text = "{\n  \"bench\": \"ingest\",\n    {\"case\": \"file\", \"format\": \"adjb\", \
                    \"dispatch\": \"slice\", \"wall_secs\": 1.0, \"items_per_sec\": 2e6},\n}\n";
        let rows = parse_rows(text);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "file/adjb/slice");
        assert_eq!(rows[0].items_per_sec, 2e6);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(
            items_per_sec("\"items_per_sec\": 1.25e8}"),
            Some(1.25e8_f64)
        );
    }
}

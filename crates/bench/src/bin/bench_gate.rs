//! Warn-only bench-regression gate: compare freshly produced `BENCH_*.json`
//! files against committed baselines and flag throughput drops.
//!
//! ```text
//! bench_gate BASELINE.json CURRENT.json [BASELINE2.json CURRENT2.json ...]
//! ```
//!
//! Every bench harness in this workspace writes its rows one JSON object
//! per line with string labels and an `items_per_sec` field; the gate
//! matches rows across the two files by their concatenated string labels
//! and compares throughput. A row is flagged when current throughput falls
//! below `(1 − tolerance) ×` baseline (`BENCH_GATE_TOLERANCE`, default
//! 0.25 — CI runners are noisy and this gate is advisory).
//!
//! The exit code is always 0 unless `BENCH_GATE_STRICT=1`, in which case
//! any flagged row fails the run. Baselines live in
//! `crates/bench/baselines/` and are refreshed deliberately, by committing
//! a new file — never automatically.

use adjstream_bench::report::Table;
use std::process::ExitCode;

/// One bench row: its identifying label (the row's string field values
/// joined with `/`) and its throughput.
#[derive(Debug, PartialEq)]
struct BenchRow {
    label: String,
    items_per_sec: f64,
}

/// Extract `"key": "value"` string fields from a single row line, in
/// order, skipping the shared `"bench"`/`"mode"` headers handled upstream.
fn string_values(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(colon) = rest.find("\": \"") {
        let after = &rest[colon + 4..];
        let Some(end) = after.find('"') else { break };
        out.push(&after[..end]);
        rest = &after[end..];
    }
    out
}

/// Extract the number following `"items_per_sec": ` on the line.
fn items_per_sec(line: &str) -> Option<f64> {
    let idx = line.find("\"items_per_sec\":")?;
    let after = line[idx + "\"items_per_sec\":".len()..].trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Parse every row object carrying an `items_per_sec` field. The bench
/// harnesses emit one row per line, so line-oriented scanning is exact for
/// files we generate ourselves — this is not a general JSON parser.
fn parse_rows(text: &str) -> Vec<BenchRow> {
    text.lines()
        .filter_map(|line| {
            let ips = items_per_sec(line)?;
            let labels = string_values(line);
            if labels.is_empty() {
                return None;
            }
            Some(BenchRow {
                label: labels.join("/"),
                items_per_sec: ips,
            })
        })
        .collect()
}

fn tolerance() -> f64 {
    std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| t.is_finite() && *t > 0.0 && *t < 1.0)
        .unwrap_or(0.25)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_gate BASELINE.json CURRENT.json [...]");
        return ExitCode::from(2);
    }
    let tol = tolerance();
    let strict = std::env::var("BENCH_GATE_STRICT").as_deref() == Ok("1");
    let mut table = Table::new([
        "bench pair",
        "row",
        "baseline",
        "current",
        "ratio",
        "status",
    ]);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for pair in args.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("bench_gate: cannot read {p}: {e}");
                String::new()
            })
        };
        let base_rows = parse_rows(&read(base_path));
        let cur_rows = parse_rows(&read(cur_path));
        let pair_name = format!(
            "{} vs {}",
            base_path.rsplit('/').next().unwrap_or(base_path),
            cur_path.rsplit('/').next().unwrap_or(cur_path)
        );
        for b in &base_rows {
            let Some(c) = cur_rows.iter().find(|c| c.label == b.label) else {
                table.row([
                    pair_name.clone(),
                    b.label.clone(),
                    format!("{:.3e}", b.items_per_sec),
                    "missing".into(),
                    "-".into(),
                    "MISSING".into(),
                ]);
                regressions += 1;
                continue;
            };
            compared += 1;
            let ratio = c.items_per_sec / b.items_per_sec;
            let status = if ratio < 1.0 - tol {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            table.row([
                pair_name.clone(),
                b.label.clone(),
                format!("{:.3e}", b.items_per_sec),
                format!("{:.3e}", c.items_per_sec),
                format!("{ratio:.3}"),
                status.into(),
            ]);
        }
    }
    eprintln!("{}", table.render());
    eprintln!(
        "bench_gate: {compared} rows compared, {regressions} flagged \
         (tolerance {tol:.2}, {})",
        if strict { "strict" } else { "warn-only" }
    );
    if regressions > 0 && strict {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str =
        "    {\"variant\": \"plain\", \"wall_secs\": 0.1234, \"items_per_sec\": 1500000}";

    #[test]
    fn parses_single_label_rows() {
        let rows = parse_rows(ROW);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "plain");
        assert_eq!(rows[0].items_per_sec, 1_500_000.0);
    }

    #[test]
    fn joins_multi_label_rows_and_skips_non_rows() {
        let text = "{\n  \"bench\": \"ingest\",\n    {\"case\": \"file\", \"format\": \"adjb\", \
                    \"dispatch\": \"slice\", \"wall_secs\": 1.0, \"items_per_sec\": 2e6},\n}\n";
        let rows = parse_rows(text);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "file/adjb/slice");
        assert_eq!(rows[0].items_per_sec, 2e6);
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(
            items_per_sec("\"items_per_sec\": 1.25e8}"),
            Some(1.25e8_f64)
        );
    }
}

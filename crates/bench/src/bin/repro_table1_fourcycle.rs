//! Reproduces the **Table 1** 4-cycle upper-bound row: the two-pass
//! `O(1)`-approximation in `Õ(m/T^{3/8})` space (**Theorem 4.6**).
//!
//! Sweeps the planted 4-cycle count at the paper budget (errors should stay
//! within a constant factor), then stresses the heavy-wedge `K_{2,k}`
//! workload where the constant-factor — not `(1±ε)` — nature of the
//! guarantee shows, and finally sweeps the budget at fixed `T` to exhibit
//! the `T^{3/8}` space scaling.

use adjstream_bench::report::{fbytes, fnum, Table};
use adjstream_bench::sweeps::{budget_ladder, sweep_fourcycle_point};
use adjstream_bench::workloads;
use adjstream_core::fourcycle::FourCycleEstimator;

fn main() {
    let reps = 11;
    println!("== Table 1 (2-pass 4-cycle, O(m/T^3/8), Thm 4.6): T sweep at paper budget ==\n");
    let mut t = Table::new([
        "workload",
        "m",
        "T",
        "budget",
        "peak-space",
        "median-est",
        "ratio est/T",
    ]);
    for exp in [4u32, 6, 8, 10] {
        let tt = 1usize << exp;
        let w = workloads::planted_four_cycles(6_000, tt);
        let budget =
            ((8.0 * w.m() as f64 / (tt as f64).powf(3.0 / 8.0)).ceil() as usize).clamp(8, w.m());
        let p = sweep_fourcycle_point(
            &w,
            budget,
            FourCycleEstimator::DistinctCycles,
            reps,
            exp as u64,
        );
        t.row([
            w.name.clone(),
            w.m().to_string(),
            w.truth.to_string(),
            budget.to_string(),
            fbytes(p.peak_bytes),
            fnum(p.median_estimate),
            fnum(p.median_estimate / w.truth as f64),
        ]);
    }
    println!("{}", t.render());

    println!("== Heavy-wedge adversary (K_2k theta graph) ==\n");
    let mut t = Table::new(["workload", "m", "T", "budget", "median-est", "ratio est/T"]);
    for k in [24usize, 48, 96] {
        let w = workloads::theta_four_cycles(1_500, k);
        let budget = ((8.0 * w.m() as f64 / (w.truth as f64).powf(3.0 / 8.0)).ceil() as usize)
            .clamp(8, w.m());
        let p = sweep_fourcycle_point(
            &w,
            budget,
            FourCycleEstimator::DistinctCycles,
            reps,
            k as u64,
        );
        t.row([
            w.name.clone(),
            w.m().to_string(),
            w.truth.to_string(),
            budget.to_string(),
            fnum(p.median_estimate),
            fnum(p.median_estimate / w.truth as f64),
        ]);
    }
    println!("{}", t.render());

    println!("== Budget sweep at fixed T (accuracy vs space) ==\n");
    let w = workloads::planted_four_cycles(6_000, 512);
    let bound = w.m() as f64 / 512f64.powf(3.0 / 8.0);
    let mut t = Table::new([
        "budget",
        "budget/bound",
        "peak-space",
        "median-est",
        "ratio est/T",
    ]);
    for budget in budget_ladder((bound / 8.0) as usize, w.m(), 7) {
        let p = sweep_fourcycle_point(&w, budget, FourCycleEstimator::DistinctCycles, reps, 5);
        t.row([
            budget.to_string(),
            fnum(budget as f64 / bound),
            fbytes(p.peak_bytes),
            fnum(p.median_estimate),
            fnum(p.median_estimate / w.truth as f64),
        ]);
    }
    println!("{}", t.render());
}

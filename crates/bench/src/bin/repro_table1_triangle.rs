//! Reproduces the triangle upper-bound rows of **Table 1**:
//!
//! * row `Õ(P₂/T)` (1-pass wedge sampling, Buriol et al. \[12\]),
//! * row `Õ(m/√T)` (1-pass edge sampling, \[27\]),
//! * row `Õ(m^{3/2}/T)`-style 3-pass (Section 2.1 exact-lightest variant),
//! * row `Õ(m/T^{2/3})` (2-pass, **Theorem 3.7** — the paper's headline).
//!
//! Part A fixes the graph and sweeps the planted triangle count `T`, giving
//! each algorithm its own paper budget: errors should stay flat while the
//! budget (and measured space) falls at the predicted rate.
//!
//! Part B fixes a *common* space budget and compares errors: at small `T`
//! the two-pass algorithm dominates the one-pass `m/√T` sampler, matching
//! the `T^{2/3}` vs `T^{1/2}` separation.

use adjstream_bench::report::{fbytes, fnum, Table};
use adjstream_bench::sweeps::{sweep_triangle_point, TriangleAlgo};
use adjstream_bench::workloads;

fn main() {
    let reps = 11;
    let algos = [
        TriangleAlgo::WedgeSampler,
        TriangleAlgo::OnePass,
        TriangleAlgo::TwoPass,
        TriangleAlgo::ThreePass,
    ];

    println!("== Table 1 (triangle upper bounds): error at each algorithm's paper budget ==\n");
    let mut t = Table::new([
        "workload",
        "m",
        "T",
        "algorithm",
        "budget",
        "peak-space",
        "median-est",
        "rel-err",
    ]);
    for exp in [4u32, 6, 8, 10, 12] {
        let tt = 1usize << exp;
        let w = workloads::planted_triangles(20_000, tt, 42 + exp as u64);
        let p2 = w.graph.wedge_count();
        for algo in algos {
            let budget = (6.0 * algo.paper_budget(w.m(), w.truth, p2)).ceil() as usize;
            let budget = budget.clamp(8, w.m());
            let point = sweep_triangle_point(algo, &w, budget, reps, 7 * exp as u64);
            t.row([
                w.name.clone(),
                w.m().to_string(),
                w.truth.to_string(),
                algo.label().to_string(),
                point.budget.to_string(),
                fbytes(point.peak_bytes),
                fnum(point.median_estimate),
                fnum(point.rel_error),
            ]);
        }
    }
    println!("{}", t.render());

    println!("== Table 1 crossover: equal space budget, who wins? ==\n");
    let mut t = Table::new(["T", "budget", "algorithm", "median-est", "rel-err"]);
    for exp in [5u32, 8, 11] {
        let tt = 1usize << exp;
        let w = workloads::planted_triangles(20_000, tt, 99 + exp as u64);
        // Common budget: the two-pass paper budget.
        let budget = (6.0 * TriangleAlgo::TwoPass.paper_budget(w.m(), w.truth, 0)).ceil() as usize;
        for algo in [
            TriangleAlgo::OnePass,
            TriangleAlgo::TwoPass,
            TriangleAlgo::ThreePass,
        ] {
            let point = sweep_triangle_point(algo, &w, budget, reps, 11 * exp as u64);
            t.row([
                tt.to_string(),
                budget.to_string(),
                algo.label().to_string(),
                fnum(point.median_estimate),
                fnum(point.rel_error),
            ]);
        }
    }
    println!("{}", t.render());

    println!("== Power-law (Chung–Lu) workload: all algorithms at paper budgets ==\n");
    let w = workloads::chung_lu_triangles(4_000, 10.0, 5);
    let p2 = w.graph.wedge_count();
    let mut t = Table::new([
        "workload",
        "m",
        "T",
        "algorithm",
        "budget",
        "median-est",
        "rel-err",
    ]);
    for algo in algos {
        let budget = (6.0 * algo.paper_budget(w.m(), w.truth, p2)).ceil() as usize;
        let budget = budget.clamp(8, w.m());
        let point = sweep_triangle_point(algo, &w, budget, reps, 17);
        t.row([
            w.name.clone(),
            w.m().to_string(),
            w.truth.to_string(),
            algo.label().to_string(),
            budget.to_string(),
            fnum(point.median_estimate),
            fnum(point.rel_error),
        ]);
    }
    println!("{}", t.render());
}

//! Ablation experiments A1–A5 (DESIGN.md §4): the design choices Sections
//! 2.1–2.2 call out, each isolated and measured.

use adjstream_bench::report::{fbytes, fnum, Table};
use adjstream_bench::sweeps::{run_triangle_once, sweep_fourcycle_point, TriangleAlgo};
use adjstream_bench::workloads;
use adjstream_core::common::EdgeSampling;
use adjstream_core::fourcycle::FourCycleEstimator;
use adjstream_core::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream_stream::estimator::{mean, median, variance};
use adjstream_stream::{PassOrders, Runner, StreamOrder};

/// Run the two-pass algorithm once, returning (lightest-edge estimate,
/// naive estimate, peak bytes).
fn two_pass_both(
    w: &workloads::Workload,
    sampling: EdgeSampling,
    cap: usize,
    seed: u64,
) -> (f64, f64, usize) {
    let cfg = TwoPassTriangleConfig {
        seed,
        edge_sampling: sampling,
        pair_capacity: cap,
    };
    let (est, r) = Runner::run(
        &w.graph,
        TwoPassTriangle::new(cfg),
        &PassOrders::Same(StreamOrder::shuffled(w.n(), seed ^ 0xAB1)),
    );
    (est.estimate, est.naive_estimate, r.peak_state_bytes)
}

fn main() {
    let reps = 41u64;

    println!("== A1: lightest-edge rule vs naive per-edge counting (heavy-edge book graph) ==\n");
    let mut t = Table::new(["workload", "T", "estimator", "mean", "median", "std-dev"]);
    for w in [
        workloads::book_triangles(4_000, 256, 1),
        workloads::clique_triangles(6, 13), // T = 260, no heavy edge
    ] {
        let budget = (w.m() / 10).max(32);
        let mut rho = Vec::new();
        let mut naive = Vec::new();
        for seed in 0..reps {
            let (a, b, _) = two_pass_both(&w, EdgeSampling::BottomK { k: budget }, budget, seed);
            rho.push(a);
            naive.push(b);
        }
        for (name, vals) in [("lightest-edge (Thm 3.7)", &rho), ("naive k*T'/3", &naive)] {
            t.row([
                w.name.clone(),
                w.truth.to_string(),
                name.to_string(),
                fnum(mean(vals)),
                fnum(median(vals)),
                fnum(variance(vals).sqrt()),
            ]);
        }
    }
    println!("{}", t.render());

    println!("== A2: H (2-pass suffix proxy) vs exact T_e (3-pass) at equal budget ==\n");
    let mut t = Table::new(["workload", "T", "algorithm", "median-est", "rel-err"]);
    for w in [
        workloads::book_triangles(4_000, 256, 2),
        workloads::planted_triangles(8_000, 512, 3),
    ] {
        let budget = (w.m() / 10).max(32);
        for algo in [TriangleAlgo::TwoPass, TriangleAlgo::ThreePass] {
            let vals: Vec<f64> = (0..reps)
                .map(|s| run_triangle_once(algo, &w, budget, s).0)
                .collect();
            let med = median(&vals);
            t.row([
                w.name.clone(),
                w.truth.to_string(),
                algo.label().to_string(),
                fnum(med),
                fnum((med - w.truth as f64).abs() / w.truth as f64),
            ]);
        }
    }
    println!("{}", t.render());

    println!("== A3: Q subsampling on/off (space on triangle-dense input) ==\n");
    let w = workloads::clique_triangles(24, 12); // T = 12 * 2024
    let mut t = Table::new(["pair-capacity", "peak-space", "median-est", "rel-err"]);
    for cap in [256usize, usize::MAX] {
        let mut peaks = 0usize;
        let vals: Vec<f64> = (0..11u64)
            .map(|seed| {
                let (e, _, p) =
                    two_pass_both(&w, EdgeSampling::BottomK { k: w.m() / 4 }, cap, seed);
                peaks = peaks.max(p);
                e
            })
            .collect();
        let med = median(&vals);
        t.row([
            if cap == usize::MAX {
                "unbounded".to_string()
            } else {
                cap.to_string()
            },
            fbytes(peaks),
            fnum(med),
            fnum((med - w.truth as f64).abs() / w.truth as f64),
        ]);
    }
    println!("{}", t.render());

    println!(
        "== A4: 4-cycle estimator — distinct cycles vs wedge multiplicity (heavy-wedge theta) ==\n"
    );
    let mut t = Table::new(["workload", "T", "estimator", "median-est", "ratio est/T"]);
    for w in [
        workloads::theta_four_cycles(1_500, 64),
        workloads::planted_four_cycles(4_000, 256),
    ] {
        let budget = (w.m() / 6).max(16);
        for est in [
            FourCycleEstimator::DistinctCycles,
            FourCycleEstimator::WedgeMultiplicity,
        ] {
            let p = sweep_fourcycle_point(&w, budget, est, 21, 7);
            t.row([
                w.name.clone(),
                w.truth.to_string(),
                format!("{est:?}"),
                fnum(p.median_estimate),
                fnum(p.median_estimate / w.truth as f64),
            ]);
        }
    }
    println!("{}", t.render());

    println!("== A6 (extension): wedge cap for the 4-cycle wedge set Q ==\n");
    {
        use adjstream_core::fourcycle::{TwoPassFourCycle, TwoPassFourCycleConfig};
        use adjstream_stream::{PassOrders, Runner, StreamOrder};
        let w = workloads::theta_four_cycles(800, 64); // hub wedges dominate Q
        let n = w.n();
        let mut t = Table::new(["max-wedges", "peak-space", "median-est", "ratio est/T"]);
        for cap in [Some(200usize), None] {
            let mut peak = 0usize;
            let vals: Vec<f64> = (0..21u64)
                .map(|seed| {
                    let cfg = TwoPassFourCycleConfig {
                        seed,
                        edge_sample_size: w.m() / 2,
                        estimator: FourCycleEstimator::WedgeMultiplicity,
                        max_wedges: cap,
                    };
                    let (est, r) = Runner::run(
                        &w.graph,
                        TwoPassFourCycle::new(cfg),
                        &PassOrders::PerPass(vec![
                            StreamOrder::shuffled(n, seed),
                            StreamOrder::shuffled(n, seed + 50),
                        ]),
                    );
                    peak = peak.max(r.peak_state_bytes);
                    est.estimate
                })
                .collect();
            let med = median(&vals);
            t.row([
                cap.map(|c| c.to_string())
                    .unwrap_or_else(|| "none (paper)".into()),
                fbytes(peak),
                fnum(med),
                fnum(med / w.truth as f64),
            ]);
        }
        println!("{}", t.render());
    }

    println!("== A5: Bernoulli threshold vs bottom-k edge sampling ==\n");
    let w = workloads::planted_triangles(12_000, 512, 9);
    let budget = (w.m() / 12).max(32);
    let p = budget as f64 / w.m() as f64;
    let mut t = Table::new(["sampling", "mean", "median", "std-dev"]);
    for (name, sampling) in [
        ("bottom-k (fixed size)", EdgeSampling::BottomK { k: budget }),
        ("threshold (Bernoulli)", EdgeSampling::Threshold { p }),
    ] {
        let vals: Vec<f64> = (0..reps)
            .map(|s| two_pass_both(&w, sampling, budget, s).0)
            .collect();
        t.row([
            name.to_string(),
            fnum(mean(&vals)),
            fnum(median(&vals)),
            fnum(variance(&vals).sqrt()),
        ]);
    }
    println!("{}", t.render());
}

//! Reproduces **Figure 1e** and the Table-1 ℓ-cycle row (Theorem 5.5):
//! for every constant ℓ ≥ 5, distinguishing 0 from `T` ℓ-cycles takes
//! `Ω(m)` space in any constant number of passes.
//!
//! The harness certifies the 0-vs-T gap for ℓ ∈ {5,6,7,8}, then runs the
//! naive sampled-subgraph estimator across budgets: success collapses to
//! chance as soon as the budget is sublinear, and only `budget ≈ m`
//! (matching the `Ω(m)` bound — at which point one may as well store the
//! graph) solves the instances. The exact `O(m)` counter is shown as the
//! "pay the bound" reference, including its per-handoff message sizes.

use adjstream_bench::report::{fbytes, fnum, Table};
use adjstream_core::exact_stream::{ExactKind, ExactStreamCounter};
use adjstream_core::sampled_subgraph::SampledSubgraphCycles;
use adjstream_lowerbound::experiment::distinguishing_success;
use adjstream_lowerbound::gadgets::disj_long_cycle_gadget;
use adjstream_lowerbound::problems::DisjInstance;
use adjstream_lowerbound::protocol::run_protocol;
use adjstream_stream::order::WithinListOrder;

fn main() {
    println!("== Figure 1e: multi-pass l-cycle LB from DISJ (Thm 5.5) ==\n");
    println!("-- Gap certification: cycles(yes) = T, cycles(no) = 0 --\n");
    let mut gap = Table::new(["l", "r", "T", "n", "m", "cycles(yes)", "cycles(no)"]);
    for ell in 5..=8usize {
        let r = 200;
        let t = 32;
        let yes = disj_long_cycle_gadget(&DisjInstance::random_promise(r, 0.3, true, 1), ell, t);
        let no = disj_long_cycle_gadget(&DisjInstance::random_promise(r, 0.3, false, 1), ell, t);
        gap.row([
            ell.to_string(),
            r.to_string(),
            t.to_string(),
            yes.graph.vertex_count().to_string(),
            yes.graph.edge_count().to_string(),
            adjstream_graph::exact::count_cycles(&yes.graph, ell).to_string(),
            adjstream_graph::exact::count_cycles(&no.graph, ell).to_string(),
        ]);
    }
    println!("{}", gap.render());

    let trials = 15;
    for ell in [5usize, 6] {
        let build = |answer: bool, seed: u64| {
            disj_long_cycle_gadget(
                &DisjInstance::random_promise(400, 0.3, answer, seed),
                ell,
                48,
            )
        };
        let probe = build(true, 0);
        let m = probe.graph.edge_count();
        println!("-- l = {ell}: m = {m}, T = {} --", probe.promised_cycles);
        let mut table = Table::new([
            "algorithm",
            "budget",
            "budget/m",
            "max-message",
            "success-rate",
        ]);
        for frac in [0.05f64, 0.25, 0.5, 1.0] {
            let budget = ((m as f64 * frac).ceil() as usize).max(ell + 1);
            let mut max_msg = 0usize;
            let rep = distinguishing_success(trials, build, |g, seed| {
                let (est, report) = run_protocol(
                    g,
                    SampledSubgraphCycles::new(seed, ell, budget),
                    WithinListOrder::Sorted,
                );
                max_msg = max_msg.max(report.max_message);
                est.estimate
            });
            table.row([
                "sampled-subgraph".to_string(),
                budget.to_string(),
                fnum(frac),
                fbytes(max_msg),
                fnum(rep.success_rate()),
            ]);
        }
        // Reference: the exact counter pays Θ(m) communication and wins.
        let mut max_msg = 0usize;
        let rep = distinguishing_success(trials, build, |g, seed| {
            let _ = seed;
            let (count, report) = run_protocol(
                g,
                ExactStreamCounter::new(ExactKind::Cycles(ell)),
                WithinListOrder::Sorted,
            );
            max_msg = max_msg.max(report.max_message);
            count as f64
        });
        table.row([
            "exact O(m) store-all".to_string(),
            m.to_string(),
            "1.0".to_string(),
            fbytes(max_msg),
            fnum(rep.success_rate()),
        ]);
        println!("{}", table.render());
    }
}

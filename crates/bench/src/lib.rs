//! Experiment harness: workload registry, space–accuracy sweeps, and table
//! rendering shared by the `repro_*` binaries and the Criterion benches.
//!
//! Every table and figure of the paper maps to one binary (see DESIGN.md §4
//! for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `repro_table1_triangle` | Table 1 upper-bound rows for triangles (1/2/3-pass + wedge sampling), incl. crossovers |
//! | `repro_table1_distinguish` | Table 1 distinguisher row (0 vs T, `Õ(m/T^{2/3})`) |
//! | `repro_table1_fourcycle` | Table 1 4-cycle upper bound (`Õ(m/T^{3/8})`, Thm 4.6) |
//! | `repro_fig1_triangle_lb` | Figure 1a/1b gadgets + protocol simulation (Thms 5.1, 5.2) |
//! | `repro_fig1_fourcycle_lb` | Figure 1c/1d gadgets (Thms 5.3, 5.4) |
//! | `repro_fig1_longcycle_lb` | Figure 1e gadget, ℓ ∈ {5..8} (Thm 5.5) |
//! | `repro_ablations` | Ablations A1–A5 from DESIGN.md §4 |

#![warn(missing_docs)]

pub mod report;
pub mod scenario;
pub mod sweeps;
pub mod workloads;

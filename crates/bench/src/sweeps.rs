//! Space–accuracy sweeps: run an algorithm at a sequence of space budgets,
//! reporting the median estimate, relative error, and measured peak state.

use adjstream_core::common::EdgeSampling;
use adjstream_core::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream_core::triangle::{
    OnePassTriangle, ThreePassTriangle, TriangleDistinguisher, TwoPassTriangle,
    TwoPassTriangleConfig, WedgeSamplerTriangle,
};
use adjstream_stream::estimator::{median, relative_error};
use adjstream_stream::{PassOrders, Runner, StreamOrder};

use crate::workloads::Workload;

/// Triangle algorithms under comparison (the Table 1 upper-bound rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriangleAlgo {
    /// `Õ(P₂/T)` one-pass wedge sampler (budget = slots).
    WedgeSampler,
    /// `Õ(m/√T)` one-pass edge sampler.
    OnePass,
    /// `Õ(m/T^{2/3})` two-pass (Theorem 3.7).
    TwoPass,
    /// Section 2.1 three-pass exact-lightest.
    ThreePass,
}

impl TriangleAlgo {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TriangleAlgo::WedgeSampler => "1-pass wedge O(P2/T)",
            TriangleAlgo::OnePass => "1-pass edge O(m/sqrtT)",
            TriangleAlgo::TwoPass => "2-pass Thm3.7 O(m/T^2/3)",
            TriangleAlgo::ThreePass => "3-pass S2.1 O(m/T^2/3)",
        }
    }

    /// The paper's space budget for this algorithm at `(m, t, p2)`.
    pub fn paper_budget(self, m: usize, t: u64, p2: u64) -> f64 {
        let (m, t, p2) = (m as f64, t.max(1) as f64, p2.max(1) as f64);
        match self {
            TriangleAlgo::WedgeSampler => p2 / t,
            TriangleAlgo::OnePass => m / t.sqrt(),
            TriangleAlgo::TwoPass => m / t.powf(2.0 / 3.0),
            TriangleAlgo::ThreePass => m / t.powf(2.0 / 3.0),
        }
    }
}

/// One point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Configured budget (sample size / slots).
    pub budget: usize,
    /// Median estimate across repetitions.
    pub median_estimate: f64,
    /// Relative error of the median against the workload truth.
    pub rel_error: f64,
    /// Largest peak state observed across repetitions, bytes.
    pub peak_bytes: usize,
    /// Repetitions run.
    pub reps: usize,
}

/// Run one triangle algorithm once; returns `(estimate, peak_bytes)`.
pub fn run_triangle_once(
    algo: TriangleAlgo,
    w: &Workload,
    budget: usize,
    seed: u64,
) -> (f64, usize) {
    let n = w.n();
    let order = PassOrders::Same(StreamOrder::shuffled(n, seed ^ 0x0DDE));
    match algo {
        TriangleAlgo::WedgeSampler => {
            let (est, r) = Runner::run(&w.graph, WedgeSamplerTriangle::new(seed, budget), &order);
            (est.estimate, r.peak_state_bytes)
        }
        TriangleAlgo::OnePass => {
            let (est, r) = Runner::run(
                &w.graph,
                OnePassTriangle::new(seed, EdgeSampling::BottomK { k: budget }),
                &order,
            );
            (est.estimate, r.peak_state_bytes)
        }
        TriangleAlgo::TwoPass => {
            let cfg = TwoPassTriangleConfig {
                seed,
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            };
            let (est, r) = Runner::run(&w.graph, TwoPassTriangle::new(cfg), &order);
            (est.estimate, r.peak_state_bytes)
        }
        TriangleAlgo::ThreePass => {
            let (est, r) = Runner::run(
                &w.graph,
                ThreePassTriangle::new(seed, EdgeSampling::BottomK { k: budget }, budget),
                &order,
            );
            (est.estimate, r.peak_state_bytes)
        }
    }
}

/// Median-of-`reps` sweep point for a triangle algorithm.
pub fn sweep_triangle_point(
    algo: TriangleAlgo,
    w: &Workload,
    budget: usize,
    reps: usize,
    base_seed: u64,
) -> SweepPoint {
    let mut estimates = Vec::with_capacity(reps);
    let mut peak = 0usize;
    let results: Vec<(f64, usize)> = parallel_runs(reps, |i| {
        run_triangle_once(algo, w, budget, base_seed.wrapping_add(i as u64 * 7919))
    });
    for (e, p) in results {
        estimates.push(e);
        peak = peak.max(p);
    }
    let med = median(&estimates);
    SweepPoint {
        budget,
        median_estimate: med,
        rel_error: relative_error(med, w.truth as f64),
        peak_bytes: peak,
        reps,
    }
}

/// Run the 4-cycle algorithm once; returns `(estimate, peak_bytes)`.
pub fn run_fourcycle_once(
    w: &Workload,
    budget: usize,
    estimator: FourCycleEstimator,
    seed: u64,
) -> (f64, usize) {
    let n = w.n();
    let orders = PassOrders::PerPass(vec![
        StreamOrder::shuffled(n, seed ^ 0xC4),
        StreamOrder::shuffled(n, seed ^ 0xC5),
    ]);
    let cfg = TwoPassFourCycleConfig {
        seed,
        edge_sample_size: budget,
        estimator,
        max_wedges: None,
    };
    let (est, r) = Runner::run(&w.graph, TwoPassFourCycle::new(cfg), &orders);
    (est.estimate, r.peak_state_bytes)
}

/// Median-of-`reps` sweep point for the 4-cycle algorithm.
pub fn sweep_fourcycle_point(
    w: &Workload,
    budget: usize,
    estimator: FourCycleEstimator,
    reps: usize,
    base_seed: u64,
) -> SweepPoint {
    let results: Vec<(f64, usize)> = parallel_runs(reps, |i| {
        run_fourcycle_once(
            w,
            budget,
            estimator,
            base_seed.wrapping_add(i as u64 * 104729),
        )
    });
    let estimates: Vec<f64> = results.iter().map(|r| r.0).collect();
    let peak = results.iter().map(|r| r.1).max().unwrap_or(0);
    let med = median(&estimates);
    SweepPoint {
        budget,
        median_estimate: med,
        rel_error: relative_error(med, w.truth as f64),
        peak_bytes: peak,
        reps,
    }
}

/// Success rate of the two-pass distinguisher at a budget over yes/no
/// workload pairs.
pub fn distinguisher_success(
    yes: &Workload,
    no: &Workload,
    budget: usize,
    trials: usize,
    base_seed: u64,
) -> (f64, f64) {
    let run = |w: &Workload, seed: u64| {
        let n = w.n();
        let (v, _) = Runner::run(
            &w.graph,
            TriangleDistinguisher::new(seed, budget),
            &PassOrders::Same(StreamOrder::shuffled(n, seed ^ 0xD157)),
        );
        v.found_triangle
    };
    let yes_hits = (0..trials)
        .filter(|&i| run(yes, base_seed + i as u64))
        .count();
    let no_rejects = (0..trials)
        .filter(|&i| !run(no, base_seed + 1_000 + i as u64))
        .count();
    (
        yes_hits as f64 / trials as f64,
        no_rejects as f64 / trials as f64,
    )
}

/// Geometric budget ladder from `lo` to `hi` with the given number of
/// steps (inclusive endpoints, deduplicated).
pub fn budget_ladder(lo: usize, hi: usize, steps: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && steps >= 2);
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (steps - 1) as f64);
    let mut out: Vec<usize> = (0..steps)
        .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as usize)
        .collect();
    out.dedup();
    out
}

/// Fan `count` indexed jobs over threads, preserving order.
fn parallel_runs<T, F>(count: usize, job: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(count.max(1));
    let mut out = vec![T::default(); count];
    if threads <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = job(i);
        }
        return out;
    }
    let chunk = count.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let job = &job;
            scope.spawn(move |_| {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = job(t * chunk + i);
                }
            });
        }
    })
    .expect("sweep jobs do not panic");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn budget_ladder_is_geometric() {
        let l = budget_ladder(10, 1000, 5);
        assert_eq!(l.first(), Some(&10));
        assert_eq!(l.last(), Some(&1000));
        assert!(l.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn two_pass_sweep_point_converges_at_full_budget() {
        let w = workloads::clique_triangles(5, 8); // T = 80
        let m = w.m();
        // Budget m samples every edge; Q (capacity m = 80 < 3T = 240) still
        // subsamples, so expect tight concentration rather than exactness.
        let p = sweep_triangle_point(TriangleAlgo::TwoPass, &w, m, 9, 5);
        assert!(p.rel_error < 0.25, "{p:?}");
        assert!(p.peak_bytes > 0);
    }

    #[test]
    fn fourcycle_sweep_point_converges_at_full_budget() {
        let w = workloads::planted_four_cycles(20, 12);
        let p = sweep_fourcycle_point(&w, w.m(), FourCycleEstimator::DistinctCycles, 3, 7);
        assert_eq!(p.median_estimate, 12.0);
    }

    #[test]
    fn distinguisher_yes_no_rates() {
        let yes = workloads::planted_triangles(300, 30, 1);
        let no = workloads::planted_triangles(300, 0, 2);
        let (y, n) = distinguisher_success(&yes, &no, yes.m(), 5, 3);
        assert_eq!(y, 1.0);
        assert_eq!(n, 1.0);
    }
}

//! Batched shared-pass engine vs the sequential driver, on the ER
//! benchmark graph at the paper's amplification level (δ = 0.05 → 55
//! repetitions).
//!
//! Two regimes are measured, because they answer different questions:
//!
//! * **in-memory** — the estimation drivers end to end, where the stream is
//!   regenerated from the resident graph each pass. Generation is cheap
//!   (tens of ns/item), so sharing it buys only the generation fraction;
//!   the honest speedup here is modest and reported as such.
//! * **file-backed** — the stream lives outside the process and every pass
//!   re-reads and re-parses it, the regime the adjacency-list model
//!   actually targets (state ≪ stream). The sequential driver replays the
//!   file `2 × reps` times, the batched engine exactly twice; this is the
//!   ≥ 2× row.
//!
//! Runs under `cargo bench -p adjstream-bench --bench batch_vs_sequential`.
//! Set `BENCH_QUICK=1` to shrink the workloads for CI smoke runs. Results
//! are printed as a table and written as JSON (items/sec, stream replays,
//! peak bytes) to `BENCH_batch.json` (override with `BENCH_BATCH_OUT`).

use adjstream_bench::report::Table;
use adjstream_core::common::EdgeSampling;
use adjstream_core::estimate::{estimate_triangles, Accuracy, Engine};
use adjstream_core::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream_graph::{gen, VertexId};
use adjstream_stream::batch::{BatchConfig, BatchRunner};
use adjstream_stream::{run_item_passes, AdjListStream, StreamItem, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::time::Instant;

struct Row {
    case: &'static str,
    engine: &'static str,
    wall_secs: f64,
    /// Times the item sequence was produced (generated or re-read).
    stream_replays: usize,
    /// Item deliveries to algorithm instances, per second of wall clock.
    items_per_sec: f64,
    /// Max per-instance peak state, where the engine reports it.
    peak_state_bytes: Option<usize>,
}

fn instances(reps: usize, seed: u64, budget: usize) -> Vec<TwoPassTriangle> {
    (0..reps)
        .map(|i| {
            TwoPassTriangle::new(TwoPassTriangleConfig {
                seed: seed.wrapping_add(i as u64),
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            })
        })
        .collect()
}

fn read_stream(path: &std::path::Path) -> Vec<StreamItem> {
    let text = std::fs::read_to_string(path).expect("read stream file");
    text.lines()
        .map(|l| {
            let (s, d) = l.split_once(' ').expect("two fields per line");
            StreamItem::new(
                VertexId(s.parse().expect("src id")),
                VertexId(d.parse().expect("dst id")),
            )
        })
        .collect()
}

/// The estimation drivers end to end: stream regenerated from the graph
/// each pass. Returns the rows plus the repetition count δ = 0.05 implies.
fn in_memory_rows(n: usize, m: usize, t_lower: u64, rows: &mut Vec<Row>) -> usize {
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(n, m, &mut rng);
    let order = StreamOrder::shuffled(n, 13);
    let base = Accuracy {
        epsilon: 0.25,
        delta: 0.05,
        seed: 42,
        threads: 1,
        engine: Engine::Sequential,
        ..Accuracy::default()
    };
    let t0 = Instant::now();
    let seq = estimate_triangles(&g, &order, t_lower, base);
    let seq_t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let bat = estimate_triangles(
        &g,
        &order,
        t_lower,
        Accuracy {
            engine: Engine::Batched,
            ..base
        },
    );
    let bat_t = t0.elapsed().as_secs_f64();
    // The bitwise contract: identical runs vectors regardless of engine.
    assert_eq!(seq.report.runs, bat.report.runs, "engines must agree");
    let breport = bat.batch.expect("batched engine attaches its report");
    let deliveries = (2 * m * seq.stream_passes) as f64;
    rows.push(Row {
        case: "in_memory",
        engine: "sequential",
        wall_secs: seq_t,
        stream_replays: seq.stream_passes,
        items_per_sec: deliveries / seq_t,
        peak_state_bytes: None,
    });
    rows.push(Row {
        case: "in_memory",
        engine: "batched",
        wall_secs: bat_t,
        stream_replays: breport.stream_generations,
        items_per_sec: breport.items_fanned_out as f64 / bat_t,
        peak_state_bytes: breport
            .per_instance
            .iter()
            .map(|r| r.peak_state_bytes)
            .max(),
    });
    seq.repetitions
}

/// The external-stream regime: items written to disk once, then every pass
/// re-reads and re-parses the file. Sequential replays it `2 × reps` times,
/// batched exactly twice. Each engine is timed `runs` times and the minimum
/// wall clock kept — the least-noise sample on a shared machine.
fn file_backed_rows(
    n: usize,
    m: usize,
    budget: usize,
    reps: usize,
    runs: usize,
    rows: &mut Vec<Row>,
) {
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(n, m, &mut rng);
    let items = AdjListStream::new(&g, StreamOrder::shuffled(n, 13)).collect_items();
    let path = std::env::temp_dir().join("adjstream_bench_stream.txt");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create stream file"));
    for it in &items {
        writeln!(f, "{} {}", it.src.0, it.dst.0).expect("write stream file");
    }
    f.flush().expect("flush stream file");
    let items_per_pass = items.len();
    drop(items);

    let mut seq_t = f64::INFINITY;
    let mut seq_replays = 0usize;
    let mut peak = 0usize;
    let mut seq_outs = Vec::new();
    for _ in 0..runs {
        let mut replays = 0usize;
        let t0 = Instant::now();
        let mut outs = Vec::with_capacity(reps);
        for inst in instances(reps, 42, budget) {
            let (out, report) = run_item_passes(inst, |_p| {
                replays += 1;
                read_stream(&path)
            })
            .expect("trusted stream");
            peak = peak.max(report.peak_state_bytes);
            outs.push(out);
        }
        seq_t = seq_t.min(t0.elapsed().as_secs_f64());
        seq_replays = replays;
        seq_outs = outs;
    }
    rows.push(Row {
        case: "file_backed",
        engine: "sequential",
        wall_secs: seq_t,
        stream_replays: seq_replays,
        items_per_sec: (items_per_pass * seq_replays) as f64 / seq_t,
        peak_state_bytes: Some(peak),
    });

    let mut bat_t = f64::INFINITY;
    let mut bat_row = None;
    for _ in 0..runs {
        let mut replays = 0usize;
        let t0 = Instant::now();
        let out = BatchRunner::try_run_items(
            instances(reps, 42, budget),
            |_p| {
                replays += 1;
                read_stream(&path)
            },
            &BatchConfig::default(),
        )
        .expect("trusted stream");
        bat_t = bat_t.min(t0.elapsed().as_secs_f64());
        // Same seeds, same items: per-instance outputs must match the
        // sequential reference exactly.
        let want: Vec<_> = seq_outs.iter().cloned().map(Some).collect();
        assert_eq!(out.outputs, want, "engines must agree per instance");
        bat_row = Some(Row {
            case: "file_backed",
            engine: "batched",
            wall_secs: bat_t,
            stream_replays: replays,
            items_per_sec: out.report.items_fanned_out as f64 / bat_t,
            peak_state_bytes: out
                .report
                .per_instance
                .iter()
                .map(|r| r.peak_state_bytes)
                .max(),
        });
    }
    rows.push(bat_row.expect("at least one run"));
    let _ = std::fs::remove_file(&path);
}

fn speedup(rows: &[Row], case: &str) -> f64 {
    let wall = |engine: &str| {
        rows.iter()
            .find(|r| r.case == case && r.engine == engine)
            .map(|r| r.wall_secs)
            .expect("row present")
    };
    wall("sequential") / wall("batched")
}

fn json_escape_free(rows: &[Row], mode: &str, reps: usize) -> String {
    // All strings are static identifiers — no escaping needed.
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"batch_vs_sequential\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"delta\": 0.05,\n");
    out.push_str(&format!("  \"repetitions\": {reps},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let peak = match r.peak_state_bytes {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"engine\": \"{}\", \"wall_secs\": {:.4}, \
             \"stream_replays\": {}, \"items_per_sec\": {:.0}, \"peak_state_bytes\": {}}}{}\n",
            r.case,
            r.engine,
            r.wall_secs,
            r.stream_replays,
            r.items_per_sec,
            peak,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup\": {{\"in_memory\": {:.3}, \"file_backed\": {:.3}}}\n",
        speedup(rows, "in_memory"),
        speedup(rows, "file_backed")
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    // In-memory: modest graph, driver-chosen budget. File-backed: sparse
    // graph with a long stream relative to the √m state budget — the
    // regime where replay cost dominates.
    let (mem, file) = if quick {
        (
            (4_000usize, 12_000usize, 20_000u64),
            (20_000usize, 60_000usize),
        )
    } else {
        ((30_000, 60_000, 200_000), (200_000, 400_000))
    };
    let runs = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    eprintln!("batch_vs_sequential ({mode}): in-memory drivers...");
    let reps = in_memory_rows(mem.0, mem.1, mem.2, &mut rows);
    eprintln!("batch_vs_sequential ({mode}): file-backed stream...");
    let budget = (file.1 as f64).sqrt().ceil() as usize;
    file_backed_rows(file.0, file.1, budget, reps, runs, &mut rows);

    let mut table = Table::new([
        "case",
        "engine",
        "wall [s]",
        "stream replays",
        "items/s",
        "peak state [B]",
    ]);
    for r in &rows {
        table.row([
            r.case.to_string(),
            r.engine.to_string(),
            format!("{:.3}", r.wall_secs),
            r.stream_replays.to_string(),
            format!("{:.3e}", r.items_per_sec),
            r.peak_state_bytes
                .map_or("-".to_string(), |p| p.to_string()),
        ]);
    }
    eprintln!("\n{}", table.render());
    eprintln!(
        "speedup (seq/bat): in_memory {:.2}x, file_backed {:.2}x",
        speedup(&rows, "in_memory"),
        speedup(&rows, "file_backed")
    );

    let out_path = std::env::var("BENCH_BATCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".into());
    std::fs::write(&out_path, json_escape_free(&rows, mode, reps)).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}

//! Observability overhead: the metrics layer's cost on the two-pass
//! triangle hot path, in three variants over the same resident stream:
//!
//! * **plain** — `run_slice_passes`, the pre-observability entry point;
//! * **disabled** — `run_slice_passes_observed` with a disabled sink, the
//!   path every existing caller now takes (must be within noise of plain);
//! * **enabled** — a collecting sink (contract: < 10% overhead).
//!
//! All three must produce bit-identical estimates — observation never
//! changes answers. The enabled run's snapshot is embedded in the JSON
//! output so the bench doubles as a schema example.
//!
//! Runs under `cargo bench -p adjstream-bench --bench obs_overhead`.
//! Set `BENCH_QUICK=1` to shrink the workload for CI smoke runs. Results
//! are printed as a table and written as JSON to `BENCH_obs.json`
//! (override with `BENCH_OBS_OUT`).

use adjstream_bench::report::Table;
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream_graph::gen;
use adjstream_stream::obs::Metrics;
use adjstream_stream::{run_slice_passes, run_slice_passes_observed, AdjListStream, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Row {
    variant: &'static str,
    wall_secs: f64,
    items_per_sec: f64,
}

fn algo(budget: usize) -> TwoPassTriangle {
    TwoPassTriangle::new(TwoPassTriangleConfig {
        seed: 42,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    })
}

/// Minimum wall time over `runs` repetitions; every run must reproduce the
/// reference estimate bit for bit.
fn timed<F: FnMut() -> f64>(runs: usize, reference: Option<f64>, mut body: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut est = f64::NAN;
    for _ in 0..runs {
        let t0 = Instant::now();
        est = body();
        best = best.min(t0.elapsed().as_secs_f64());
        if let Some(want) = reference {
            assert_eq!(est.to_bits(), want.to_bits(), "outputs must be identical");
        }
    }
    (best, est)
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let (n, m) = if quick {
        (20_000usize, 60_000usize)
    } else {
        (200_000, 400_000)
    };
    let runs = if quick { 5 } else { 7 };
    let budget = (m as f64).sqrt().ceil() as usize;

    eprintln!("obs_overhead ({mode}): generating gnm({n}, {m})...");
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(n, m, &mut rng);
    let items = AdjListStream::new(&g, StreamOrder::shuffled(n, 13)).collect_items();
    let deliveries = (items.len() * 2) as f64;

    let mut rows = Vec::new();
    let mut reference: Option<f64> = None;

    eprintln!("obs_overhead ({mode}): plain...");
    let (wall, est) = timed(runs, reference, || {
        let (out, _) = run_slice_passes(algo(budget), |_p| &items[..]).expect("trusted stream");
        out.estimate
    });
    reference.get_or_insert(est);
    rows.push(Row {
        variant: "plain",
        wall_secs: wall,
        items_per_sec: deliveries / wall,
    });

    eprintln!("obs_overhead ({mode}): observed (disabled sink)...");
    let (wall, _) = timed(runs, reference, || {
        let (out, _) =
            run_slice_passes_observed(algo(budget), |_p| &items[..], &Metrics::disabled())
                .expect("trusted stream");
        out.estimate
    });
    rows.push(Row {
        variant: "disabled",
        wall_secs: wall,
        items_per_sec: deliveries / wall,
    });

    eprintln!("obs_overhead ({mode}): observed (enabled sink)...");
    let sink = Metrics::enabled();
    let (wall, _) = timed(runs, reference, || {
        let (out, _) = run_slice_passes_observed(algo(budget), |_p| &items[..], &sink)
            .expect("trusted stream");
        out.estimate
    });
    rows.push(Row {
        variant: "enabled",
        wall_secs: wall,
        items_per_sec: deliveries / wall,
    });
    let snapshot = sink.snapshot().expect("enabled sink collected");

    let wall_of = |variant: &str| {
        rows.iter()
            .find(|r| r.variant == variant)
            .map(|r| r.wall_secs)
            .expect("row present")
    };
    let disabled_ratio = wall_of("disabled") / wall_of("plain");
    let enabled_ratio = wall_of("enabled") / wall_of("plain");

    let mut table = Table::new(["variant", "wall [s]", "items/s", "vs plain"]);
    for r in &rows {
        table.row([
            r.variant.to_string(),
            format!("{:.4}", r.wall_secs),
            format!("{:.3e}", r.items_per_sec),
            format!("{:.3}x", r.wall_secs / wall_of("plain")),
        ]);
    }
    eprintln!("\n{}", table.render());
    eprintln!("overhead: disabled {disabled_ratio:.3}x, enabled {enabled_ratio:.3}x");

    // The whole point of the sink-gated design: observation must be free
    // when off and cheap when on. Min-of-N timing keeps shared-machine
    // noise out of the ratio; 10% is the documented contract with a small
    // allowance on the disabled side for measurement jitter.
    assert!(
        disabled_ratio < 1.10,
        "disabled sink costs {disabled_ratio:.3}x over plain (contract: within noise)"
    );
    assert!(
        enabled_ratio < 1.10,
        "enabled sink costs {enabled_ratio:.3}x over plain (contract: < 10%)"
    );

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"obs_overhead\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"n\": {n},\n  \"m\": {m},\n"));
    out.push_str(&format!("  \"items_per_pass\": {},\n", items.len()));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"wall_secs\": {:.4}, \"items_per_sec\": {:.0}}}{}\n",
            r.variant,
            r.wall_secs,
            r.items_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"disabled\": {disabled_ratio:.4}, \"enabled\": {enabled_ratio:.4}}},\n"
    ));
    out.push_str(&format!("  \"metrics\": {}\n", snapshot.to_json()));
    out.push_str("}\n");

    let out_path = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    std::fs::write(&out_path, out).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}

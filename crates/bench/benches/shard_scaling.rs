//! Graph-sharded scale-out: aggregate estimation throughput at 1/2/4/8
//! shards, plus mmap vs slurp `.adjb` replay.
//!
//! Two families of rows:
//!
//! * **scaling** — the shard-mergeable three-pass triangle estimator over
//!   an owner-partitioned gnm trace. Shards are driven one at a time
//!   through the process-mode building blocks so each per-shard wall is
//!   measured in isolation; the reported rate is
//!   `deliveries / Σ_pass max_shard wall` — the critical-path (aggregate)
//!   throughput N truly parallel workers would sustain. On a 1-CPU host
//!   concurrent threads only timeshare, so this isolated-wall metric is
//!   the honest capacity number, and it is labelled as such.
//! * **replay** — one full single-shard estimation including trace
//!   acquisition: `slurp` reads + decodes the file into memory, `mmap`
//!   maps it and replays zero-copy with windowed checksum verification.
//!
//! Every row must reproduce the same estimate bit for bit — scale-out
//! must not change answers. Runs under
//! `cargo bench -p adjstream-bench --bench shard_scaling`; `BENCH_QUICK=1`
//! shrinks the workload; output JSON goes to `BENCH_shard.json`
//! (override with `BENCH_SHARD_OUT`).

use adjstream_bench::report::Table;
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{ShardedTriangle, ShardedTriangleConfig};
use adjstream_graph::gen;
use adjstream_stream::checkpoint::Checkpoint;
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::shard::{merge_shard_states, run_shard_pass_blob, ShardPlan};
use adjstream_stream::trace::ItemTrace;
use adjstream_stream::{AdjListStream, MappedTrace, StreamItem, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufWriter;
use std::path::Path;
use std::time::Instant;

struct Row {
    case: &'static str,
    variant: String,
    wall_secs: f64,
    items_per_sec: f64,
}

fn config(budget: usize) -> ShardedTriangleConfig {
    ShardedTriangleConfig {
        seed: 42,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    }
}

/// Run the estimator over `items` sharded `n` ways, timing each shard's
/// share of each pass in isolation. Returns the estimate and the
/// critical-path wall `Σ_pass max_shard wall`.
fn sharded_critical_path(items: &[StreamItem], n: usize, budget: usize) -> (f64, f64) {
    let plan = ShardPlan::build(items, n);
    let mut algo = ShardedTriangle::new(config(budget));
    let passes = MultiPassAlgorithm::passes(&algo);
    let mut critical = 0.0f64;
    for pass in 0..passes {
        let mut base = Vec::new();
        algo.save(&mut base).expect("serialize boundary state");
        let mut slowest = 0.0f64;
        let mut blobs = Vec::with_capacity(n);
        for shard in 0..n {
            let t0 = Instant::now();
            let (blob, _stats) =
                run_shard_pass_blob::<ShardedTriangle>(&base, pass, items, plan.runs_for(shard))
                    .expect("shard pass");
            slowest = slowest.max(t0.elapsed().as_secs_f64());
            blobs.push(blob);
        }
        critical += slowest;
        algo = merge_shard_states::<ShardedTriangle>(&blobs, pass).expect("merge");
    }
    (algo.finish().estimate, critical)
}

/// One full single-shard run including trace acquisition from `path`.
fn replay(path: &Path, mmap: bool, budget: usize) -> f64 {
    let verify_window = 1 << 20;
    if mmap {
        let mut mapped = MappedTrace::open(path).expect("map trace");
        mapped.verify_all(verify_window).expect("verified");
        let (est, _) = sharded_run(mapped.items(), budget);
        est
    } else {
        let bytes = std::fs::read(path).expect("read trace");
        let trace = ItemTrace::from_bytes_unchecked(&bytes).expect("decode trace");
        let (est, _) = sharded_run(trace.items(), budget);
        est
    }
}

fn sharded_run(items: &[StreamItem], budget: usize) -> (f64, f64) {
    sharded_critical_path(items, 1, budget)
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let (n, m) = if quick {
        (20_000usize, 60_000usize)
    } else {
        (120_000, 360_000)
    };
    let runs = if quick { 1 } else { 3 };
    let budget = (m as f64).sqrt().ceil() as usize;

    eprintln!("shard_scaling ({mode}): generating gnm({n}, {m})...");
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(n, m, &mut rng);
    let items = AdjListStream::new(&g, StreamOrder::shuffled(n, 13)).collect_items();
    let trace = ItemTrace::new_unchecked(items);
    let passes = 3usize;
    let deliveries = (trace.len() * passes) as f64;

    let adjb_path = std::env::temp_dir().join("adjstream_shard_bench.adjb");
    let mut f = BufWriter::new(std::fs::File::create(&adjb_path).expect("create trace"));
    trace.write_adjb(&mut f).expect("write trace");
    drop(f);

    let mut rows = Vec::new();
    let mut reference: Option<f64> = None;

    for shards in [1usize, 2, 4, 8] {
        eprintln!("shard_scaling ({mode}): {shards} shard(s)...");
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let (est, critical) = sharded_critical_path(trace.items(), shards, budget);
            match reference {
                None => reference = Some(est),
                Some(want) => assert_eq!(
                    est.to_bits(),
                    want.to_bits(),
                    "sharded estimate diverged at {shards} shards"
                ),
            }
            best = best.min(critical);
        }
        rows.push(Row {
            case: "scaling",
            variant: shards.to_string(),
            wall_secs: best,
            items_per_sec: deliveries / best,
        });
    }

    for (variant, mmap) in [("slurp", false), ("mmap", true)] {
        eprintln!("shard_scaling ({mode}): replay {variant}...");
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t0 = Instant::now();
            let est = replay(&adjb_path, mmap, budget);
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                est.to_bits(),
                reference.expect("scaling rows ran first").to_bits(),
                "{variant} replay diverged"
            );
        }
        rows.push(Row {
            case: "replay",
            variant: variant.to_string(),
            wall_secs: best,
            items_per_sec: deliveries / best,
        });
    }

    let mut table = Table::new(["case", "variant", "wall [s]", "items/s"]);
    for r in &rows {
        table.row([
            r.case.to_string(),
            r.variant.clone(),
            format!("{:.3}", r.wall_secs),
            format!("{:.3e}", r.items_per_sec),
        ]);
    }
    eprintln!("\n{}", table.render());
    let one = rows[0].wall_secs;
    let eight = rows[3].wall_secs;
    eprintln!(
        "critical-path speedup 1 -> 8 shards: {:.2}x (isolated per-shard walls)",
        one / eight
    );

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"shard_scaling\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    // Walls are sub-millisecond in quick mode; the gate needs headroom.
    out.push_str("  \"gate_tolerance\": 0.65,\n");
    out.push_str(&format!("  \"n\": {n},\n  \"m\": {m},\n"));
    out.push_str(&format!(
        "  \"deliveries\": {},\n  \"passes\": {passes},\n",
        deliveries as u64
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"variant\": \"{}\", \
             \"wall_secs\": {:.4}, \"items_per_sec\": {:.0}}}{}\n",
            r.case,
            r.variant,
            r.wall_secs,
            r.items_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"speedup_1_to_8\": {:.3}\n", one / eight));
    out.push_str("}\n");

    let out_path = std::env::var("BENCH_SHARD_OUT").unwrap_or_else(|_| "BENCH_shard.json".into());
    std::fs::write(&out_path, out).expect("write bench JSON");
    eprintln!("wrote {out_path}");
    let _ = std::fs::remove_file(&adjb_path);
}

//! Substrate micro-benchmarks: graph construction, exact counters, stream
//! generation + validation, and the samplers every algorithm leans on.

use adjstream_core::common::PairWatcher;
use adjstream_graph::{exact, gen, GraphBuilder, VertexId};
use adjstream_stream::sampling::{BottomKSampler, Reservoir, ThresholdSampler};
use adjstream_stream::{validate_stream, AdjListStream, StreamOrder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_substrate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let g = gen::gnm(5_000, 40_000, &mut rng);
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.lo().0, e.hi().0)).collect();

    let mut grp = c.benchmark_group("substrate");
    grp.sample_size(15);
    grp.measurement_time(std::time::Duration::from_secs(3));
    grp.warm_up_time(std::time::Duration::from_secs(1));
    grp.throughput(Throughput::Elements(edges.len() as u64));
    grp.bench_function("csr_build_40k_edges", |b| {
        b.iter(|| GraphBuilder::from_edges(5_000, edges.iter().copied()).unwrap())
    });
    grp.bench_function("exact_triangles_40k", |b| {
        b.iter(|| exact::count_triangles(&g))
    });
    grp.bench_function("exact_fourcycles_40k", |b| {
        b.iter(|| exact::count_four_cycles(&g))
    });
    grp.bench_function("stream_generate_40k", |b| {
        let s = AdjListStream::new(&g, StreamOrder::shuffled(5_000, 3));
        b.iter(|| s.items().count())
    });
    grp.bench_function("stream_validate_40k", |b| {
        let s = AdjListStream::new(&g, StreamOrder::shuffled(5_000, 3));
        b.iter(|| validate_stream(s.items()).unwrap())
    });
    grp.bench_function("bottomk_offer_100k", |b| {
        b.iter(|| {
            let mut s = BottomKSampler::new(1, 1000);
            for k in 0..100_000u64 {
                s.offer(k);
            }
            s.len()
        })
    });
    grp.bench_function("threshold_accept_100k", |b| {
        let s = ThresholdSampler::new(1, 0.01);
        b.iter(|| (0..100_000u64).filter(|&k| s.accepts(k)).count())
    });
    grp.bench_function("reservoir_offer_100k", |b| {
        b.iter(|| {
            let mut r: Reservoir<u64> = Reservoir::new(1, 1000);
            for k in 0..100_000u64 {
                r.offer(k);
            }
            r.len()
        })
    });
    grp.bench_function("pair_watcher_scan", |b| {
        // 1000 watched pairs, scan a synthetic 64-neighbor list 100 times.
        let mut w = PairWatcher::new();
        for i in 0..1000u32 {
            w.watch(VertexId(i), VertexId(i + 5000));
        }
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..100 {
                w.begin_list();
                for x in 0..64u32 {
                    w.on_item(VertexId(x * 17 % 6000), |_| hits += 1);
                }
            }
            hits
        })
    });
    grp.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);

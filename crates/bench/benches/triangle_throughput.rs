//! Throughput of every triangle algorithm on a fixed mixed workload,
//! measured in stream items per second (the per-pass cost the paper's
//! space bounds trade against).

use adjstream_bench::workloads;
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{
    OnePassTriangle, ThreePassTriangle, TriangleDistinguisher, TwoPassTriangle,
    TwoPassTriangleConfig, WedgeSamplerTriangle,
};
use adjstream_core::triangle::{RandomOrderTriangle, TriestBase};
use adjstream_stream::arbitrary::{run_edge_stream, ArbitraryOrderStream};
use adjstream_stream::{PassOrders, Runner, StreamOrder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_triangle(c: &mut Criterion) {
    let w = workloads::planted_triangles(10_000, 256, 1);
    let n = w.n();
    let m = w.m();
    let budget = m / 16;
    let order = PassOrders::Same(StreamOrder::shuffled(n, 2));
    let mut g = c.benchmark_group("triangle");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.throughput(Throughput::Elements(2 * m as u64));

    g.bench_function("one_pass_bottomk", |b| {
        b.iter(|| {
            Runner::run(
                &w.graph,
                OnePassTriangle::new(3, EdgeSampling::BottomK { k: budget }),
                &order,
            )
            .0
        })
    });
    g.bench_function("one_pass_threshold", |b| {
        b.iter(|| {
            Runner::run(
                &w.graph,
                OnePassTriangle::new(
                    3,
                    EdgeSampling::Threshold {
                        p: budget as f64 / m as f64,
                    },
                ),
                &order,
            )
            .0
        })
    });
    g.bench_function("two_pass_thm37", |b| {
        b.iter(|| {
            let cfg = TwoPassTriangleConfig {
                seed: 3,
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            };
            Runner::run(&w.graph, TwoPassTriangle::new(cfg), &order).0
        })
    });
    g.bench_function("three_pass_s21", |b| {
        b.iter(|| {
            Runner::run(
                &w.graph,
                ThreePassTriangle::new(3, EdgeSampling::BottomK { k: budget }, budget),
                &order,
            )
            .0
        })
    });
    g.bench_function("wedge_sampler_1k_slots", |b| {
        b.iter(|| Runner::run(&w.graph, WedgeSamplerTriangle::new(3, 1000), &order).0)
    });
    g.bench_function("distinguisher", |b| {
        b.iter(|| Runner::run(&w.graph, TriangleDistinguisher::new(3, budget), &order).0)
    });
    // Arbitrary-order competitors (model comparison).
    let arb = ArbitraryOrderStream::new(&w.graph, 9);
    g.bench_function("arbitrary_triest", |b| {
        b.iter(|| run_edge_stream(&arb, TriestBase::new(3, budget)).0)
    });
    g.bench_function("arbitrary_random_order", |b| {
        b.iter(|| run_edge_stream(&arb, RandomOrderTriangle::new(3, budget as f64 / m as f64)).0)
    });
    g.finish();
}

criterion_group!(benches, bench_triangle);
criterion_main!(benches);

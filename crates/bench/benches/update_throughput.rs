//! Amortized update cost: TRIÈST-FD vs the exact incremental counter vs
//! per-batch full re-estimation, on a churn trace over the standard ER
//! workload (load gnm(n, m), then m more insert/delete events at 50%
//! deletion).
//!
//! Three policies for keeping a triangle estimate current while updates
//! arrive in batches of 1000:
//!
//! * **triest_fd** — the sub-linear random-pairing reservoir absorbs every
//!   update in `O(deg_sample)` and its estimate is always current; the row
//!   times the whole stream through [`run_update_batches`].
//! * **exact_dynamic** — the `O(m)`-space ground truth, same driver.
//! * **reestimate** — the naive policy: at every batch boundary, rebuild
//!   the live graph and re-run the paper's two-pass estimator from
//!   scratch. Timing every boundary would dominate the bench, so the cost
//!   is *sampled* at evenly spaced boundaries and amortized per update
//!   (`batch_size / mean_boundary_cost`); the truncation is logged.
//!
//! The headline number is `speedup.fd_vs_reestimate` — the issue's
//! acceptance bar is ≥ 5× — and the JSON also records per-update
//! nanoseconds for the EXPERIMENTS.md table.
//!
//! Runs under `cargo bench -p adjstream-bench --bench update_throughput`.
//! Set `BENCH_QUICK=1` to shrink the workload for CI smoke runs. Results
//! are printed as a table and written as JSON to `BENCH_dynamic.json`
//! (override with `BENCH_DYNAMIC_OUT`).

use adjstream_bench::report::Table;
use adjstream_core::dynamic::ExactDynamicTriangles;
use adjstream_core::estimate::{try_estimate_triangles_auto, Accuracy};
use adjstream_core::triangle::TriestFd;
use adjstream_graph::{gen, GraphBuilder};
use adjstream_stream::update::{churn, run_update_batches, ChurnConfig, UpdateAlgorithm, UpdateOp};
use adjstream_stream::update_trace::{parse_update_bytes, write_adjbu};
use adjstream_stream::StreamOrder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Row {
    policy: &'static str,
    wall_secs: f64,
    items_per_sec: f64,
    ns_per_update: f64,
}

/// Time `body` `runs` times and keep the minimum wall clock.
fn timed<F: FnMut() -> f64>(runs: usize, mut body: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut est = f64::NAN;
    for _ in 0..runs {
        let t0 = Instant::now();
        est = body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, est)
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let (n, m) = if quick {
        (20_000usize, 60_000usize)
    } else {
        (200_000, 400_000)
    };
    let runs = if quick { 1 } else { 3 };
    let batch = 1000usize;
    let capacity = (m / 10).max(64);

    eprintln!("update_throughput ({mode}): generating gnm({n}, {m}) + churn...");
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(n, m, &mut rng);
    let stream = churn(
        &g,
        &ChurnConfig {
            churn_events: m,
            delete_fraction: 0.5,
            seed: 13,
        },
    );
    let events = stream.len();
    let batches = events.div_ceil(batch);

    let mut rows = Vec::new();

    eprintln!("update_throughput ({mode}): triest_fd (capacity {capacity})...");
    let (wall, est) = timed(runs, || {
        let mut fd = TriestFd::new(42, capacity);
        run_update_batches(&stream, batch, &mut fd);
        fd.estimate()
    });
    eprintln!("  estimate {est:.1}, wall {wall:.3}s");
    rows.push(Row {
        policy: "triest_fd",
        wall_secs: wall,
        items_per_sec: events as f64 / wall,
        ns_per_update: wall * 1e9 / events as f64,
    });

    eprintln!("update_throughput ({mode}): exact_dynamic...");
    let (wall, exact) = timed(runs, || {
        let mut alg = ExactDynamicTriangles::new();
        run_update_batches(&stream, batch, &mut alg);
        alg.triangles() as f64
    });
    eprintln!("  exact {exact:.0}, wall {wall:.3}s");
    rows.push(Row {
        policy: "exact_dynamic",
        wall_secs: wall,
        items_per_sec: events as f64 / wall,
        ns_per_update: wall * 1e9 / events as f64,
    });

    // `.adjbu` ingest: encode the churn trace once, then time the sniffing
    // decoder end to end — checksum verification and event validation
    // included. This is the load-time cost every daemon update job pays
    // before its first batch.
    eprintln!("update_throughput ({mode}): adjbu_ingest...");
    let mut adjbu = Vec::new();
    write_adjbu(&stream, &mut adjbu).expect("encode .adjbu");
    let (wall, decoded) = timed(runs, || {
        parse_update_bytes(&adjbu)
            .expect("own encoding decodes")
            .len() as f64
    });
    assert_eq!(decoded as usize, events, "decode returned every event");
    eprintln!("  {events} events, wall {wall:.3}s");
    rows.push(Row {
        policy: "adjbu_ingest",
        wall_secs: wall,
        items_per_sec: events as f64 / wall,
        ns_per_update: wall * 1e9 / events as f64,
    });

    // Re-estimation policy, sampled: replay the stream once maintaining
    // the live edge set, and at `samples` evenly spaced batch boundaries
    // rebuild the graph and run the two-pass estimator. The mean boundary
    // cost amortized over one batch of updates is the policy's per-update
    // cost; boundaries in between are *not* silently free — they are
    // extrapolated from the sampled mean, and the sampling is logged.
    let samples = 3usize.min(batches);
    eprintln!(
        "update_throughput ({mode}): reestimate, sampling {samples} of {batches} boundaries..."
    );
    let sample_at: Vec<usize> = (1..=samples).map(|i| i * batches / samples).collect();
    let mut live: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut boundary_cost = 0.0f64;
    let mut done = 0usize;
    for (b, evs) in stream.batches(batch).enumerate() {
        for ev in evs {
            let pair = (ev.edge.lo().0, ev.edge.hi().0);
            match ev.op {
                UpdateOp::Insert => {
                    live.insert(pair);
                }
                UpdateOp::Delete => {
                    live.remove(&pair);
                }
            }
        }
        if sample_at.contains(&(b + 1)) {
            let t0 = Instant::now();
            let g = GraphBuilder::from_edges(n, live.iter().copied()).expect("valid live graph");
            let order = StreamOrder::natural(g.vertex_count());
            // Loose (ε, δ): the *cheapest* defensible re-estimation, which
            // makes the reported speedup a conservative lower bound.
            let acc = Accuracy {
                epsilon: 0.5,
                delta: 0.3,
                ..Accuracy::default()
            };
            let est = try_estimate_triangles_auto(&g, &order, acc)
                .expect("estimator succeeds on the live graph");
            boundary_cost += t0.elapsed().as_secs_f64();
            done += 1;
            eprintln!(
                "  boundary {} ({} live edges): estimate {:.1}",
                b + 1,
                live.len(),
                est.count
            );
        }
    }
    let mean_boundary = boundary_cost / done as f64;
    let reest_ns_per_update = mean_boundary * 1e9 / batch as f64;
    rows.push(Row {
        policy: "reestimate",
        wall_secs: mean_boundary * batches as f64,
        items_per_sec: batch as f64 / mean_boundary,
        ns_per_update: reest_ns_per_update,
    });

    let ips = |policy: &str| {
        rows.iter()
            .find(|r| r.policy == policy)
            .map(|r| r.items_per_sec)
            .expect("row present")
    };
    let fd_vs_reestimate = ips("triest_fd") / ips("reestimate");
    let fd_vs_exact = ips("triest_fd") / ips("exact_dynamic");

    let mut table = Table::new(["policy", "wall [s]", "updates/s", "ns/update"]);
    for r in &rows {
        table.row([
            r.policy.to_string(),
            format!("{:.3}", r.wall_secs),
            format!("{:.3e}", r.items_per_sec),
            format!("{:.0}", r.ns_per_update),
        ]);
    }
    eprintln!("\n{}", table.render());
    eprintln!(
        "speedup: triest_fd vs reestimate {fd_vs_reestimate:.1}x, \
         vs exact_dynamic {fd_vs_exact:.2}x"
    );
    assert!(
        fd_vs_reestimate >= 5.0,
        "acceptance bar: amortized TRIÈST-FD update must be ≥5x cheaper \
         than per-batch re-estimation (got {fd_vs_reestimate:.1}x)"
    );

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"update_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!(
        "  \"n\": {n},\n  \"m\": {m},\n  \"events\": {events},\n"
    ));
    out.push_str(&format!(
        "  \"batch\": {batch},\n  \"capacity\": {capacity},\n  \"sampled_boundaries\": {done},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"wall_secs\": {:.4}, \"items_per_sec\": {:.0}, \
             \"ns_per_update\": {:.0}}}{}\n",
            r.policy,
            r.wall_secs,
            r.items_per_sec,
            r.ns_per_update,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup\": {{\"fd_vs_reestimate\": {fd_vs_reestimate:.1}, \
         \"fd_vs_exact\": {fd_vs_exact:.2}}}\n"
    ));
    out.push_str("}\n");

    let out_path =
        std::env::var("BENCH_DYNAMIC_OUT").unwrap_or_else(|_| "BENCH_dynamic.json".into());
    std::fs::write(&out_path, out).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}

//! Ingest throughput: text vs `.adjb` trace encoding × per-item vs slice
//! dispatch, on the batch bench's file-backed ER workload (the gnm graph
//! the δ = 0.05 drivers replay).
//!
//! Two regimes, answering different questions:
//!
//! * **file-backed** — every pass re-reads and re-parses the trace from
//!   disk, the regime the adjacency-list model targets (state ≪ stream).
//!   Here the decode cost dominates and the binary container pays off;
//!   the headline row is `.adjb` + slice vs text + per-item.
//! * **in-memory** — items already resident, so only the dispatch overhead
//!   (virtual calls, run-boundary bookkeeping) differs. The honest speedup
//!   here is small and reported as such.
//!
//! Runs under `cargo bench -p adjstream-bench --bench ingest_throughput`.
//! Set `BENCH_QUICK=1` to shrink the workload for CI smoke runs. Results
//! are printed as a table and written as JSON to `BENCH_ingest.json`
//! (override with `BENCH_INGEST_OUT`).

use adjstream_bench::report::Table;
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{TwoPassTriangle, TwoPassTriangleConfig};
use adjstream_graph::gen;
use adjstream_stream::trace::ItemTrace;
use adjstream_stream::{run_item_passes, run_slice_passes, AdjListStream, StreamItem, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::time::Instant;

struct Row {
    case: &'static str,
    format: &'static str,
    dispatch: &'static str,
    wall_secs: f64,
    items_per_sec: f64,
}

fn algo(budget: usize) -> TwoPassTriangle {
    TwoPassTriangle::new(TwoPassTriangleConfig {
        seed: 42,
        edge_sampling: EdgeSampling::BottomK { k: budget },
        pair_capacity: budget,
    })
}

fn read_trace(path: &Path) -> Vec<StreamItem> {
    // `fs::read` sizes the buffer from metadata — one allocation, one read —
    // so both formats pay the same I/O and differ only in decode cost.
    let bytes = std::fs::read(path).expect("read trace file");
    ItemTrace::from_bytes_unchecked(&bytes)
        .expect("parse trace file")
        .into_items()
}

/// Time `body` `runs` times and keep the minimum — the least-noise sample
/// on a shared machine. Returns (wall seconds, estimate) and asserts every
/// run reproduced the reference output bit for bit.
fn timed<F: FnMut() -> f64>(runs: usize, reference: Option<f64>, mut body: F) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut est = f64::NAN;
    for _ in 0..runs {
        let t0 = Instant::now();
        est = body();
        best = best.min(t0.elapsed().as_secs_f64());
        if let Some(want) = reference {
            assert_eq!(est.to_bits(), want.to_bits(), "outputs must be identical");
        }
    }
    (best, est)
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let mode = if quick { "quick" } else { "full" };
    let (n, m) = if quick {
        (20_000usize, 60_000usize)
    } else {
        (200_000, 400_000)
    };
    let runs = if quick { 1 } else { 3 };
    let budget = (m as f64).sqrt().ceil() as usize;

    eprintln!("ingest_throughput ({mode}): generating gnm({n}, {m})...");
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnm(n, m, &mut rng);
    let items = AdjListStream::new(&g, StreamOrder::shuffled(n, 13)).collect_items();
    let trace = ItemTrace::new_unchecked(items);
    let items_per_pass = trace.len();
    let passes = 2usize;
    let deliveries = (items_per_pass * passes) as f64;

    let dir = std::env::temp_dir();
    let text_path = dir.join("adjstream_ingest_bench.txt");
    let adjb_path = dir.join("adjstream_ingest_bench.adjb");
    let mut f = BufWriter::new(std::fs::File::create(&text_path).expect("create text trace"));
    for it in trace.items() {
        writeln!(f, "{} {}", it.src.0, it.dst.0).expect("write text trace");
    }
    f.flush().expect("flush text trace");
    let mut f = BufWriter::new(std::fs::File::create(&adjb_path).expect("create adjb trace"));
    trace.write_adjb(&mut f).expect("write adjb trace");
    f.flush().expect("flush adjb trace");
    let text_bytes = std::fs::metadata(&text_path).expect("stat").len();
    let adjb_bytes = std::fs::metadata(&adjb_path).expect("stat").len();

    let mut rows = Vec::new();
    let mut reference: Option<f64> = None;
    let file_cases: [(&str, &Path); 2] = [("text", &text_path), ("adjb", &adjb_path)];
    for (format, path) in file_cases {
        for dispatch in ["per_item", "slice"] {
            eprintln!("ingest_throughput ({mode}): file_backed {format} + {dispatch}...");
            let (wall, est) = timed(runs, reference, || {
                if dispatch == "per_item" {
                    let (out, _) = run_item_passes(algo(budget), |_p| read_trace(path))
                        .expect("trusted stream");
                    out.estimate
                } else {
                    let (out, _) = run_slice_passes(algo(budget), |_p| read_trace(path))
                        .expect("trusted stream");
                    out.estimate
                }
            });
            // Every later case must reproduce the text/per-item baseline
            // estimate bit for bit — ingest speed must not change answers.
            reference.get_or_insert(est);
            rows.push(Row {
                case: "file_backed",
                format,
                dispatch,
                wall_secs: wall,
                items_per_sec: deliveries / wall,
            });
        }
    }

    for dispatch in ["per_item", "slice"] {
        eprintln!("ingest_throughput ({mode}): in_memory {dispatch}...");
        let (wall, _) = timed(runs, reference, || {
            if dispatch == "per_item" {
                let (out, _) = run_item_passes(algo(budget), |_p| trace.items().iter().copied())
                    .expect("trusted stream");
                out.estimate
            } else {
                let (out, _) =
                    run_slice_passes(algo(budget), |_p| trace.items()).expect("trusted stream");
                out.estimate
            }
        });
        rows.push(Row {
            case: "in_memory",
            format: "resident",
            dispatch,
            wall_secs: wall,
            items_per_sec: deliveries / wall,
        });
    }

    let wall_of = |case: &str, format: &str, dispatch: &str| {
        rows.iter()
            .find(|r| r.case == case && r.format == format && r.dispatch == dispatch)
            .map(|r| r.wall_secs)
            .expect("row present")
    };
    let file_speedup =
        wall_of("file_backed", "text", "per_item") / wall_of("file_backed", "adjb", "slice");
    let mem_speedup =
        wall_of("in_memory", "resident", "per_item") / wall_of("in_memory", "resident", "slice");

    let mut table = Table::new(["case", "format", "dispatch", "wall [s]", "items/s"]);
    for r in &rows {
        table.row([
            r.case.to_string(),
            r.format.to_string(),
            r.dispatch.to_string(),
            format!("{:.3}", r.wall_secs),
            format!("{:.3e}", r.items_per_sec),
        ]);
    }
    eprintln!("\n{}", table.render());
    eprintln!(
        "trace bytes: text {text_bytes}, adjb {adjb_bytes} ({:.2}x smaller)",
        text_bytes as f64 / adjb_bytes as f64
    );
    eprintln!(
        "speedup: file_backed adjb+slice vs text+per_item {file_speedup:.2}x, \
         in_memory slice vs per_item {mem_speedup:.2}x"
    );

    // All strings are static identifiers — no escaping needed.
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"ingest_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"n\": {n},\n  \"m\": {m},\n"));
    out.push_str(&format!(
        "  \"items_per_pass\": {items_per_pass},\n  \"passes\": {passes},\n"
    ));
    out.push_str(&format!(
        "  \"trace_bytes\": {{\"text\": {text_bytes}, \"adjb\": {adjb_bytes}}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"case\": \"{}\", \"format\": \"{}\", \"dispatch\": \"{}\", \
             \"wall_secs\": {:.4}, \"items_per_sec\": {:.0}}}{}\n",
            r.case,
            r.format,
            r.dispatch,
            r.wall_secs,
            r.items_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup\": {{\"file_backed_adjb_slice\": {file_speedup:.3}, \
         \"in_memory_slice\": {mem_speedup:.3}}}\n"
    ));
    out.push_str("}\n");

    let out_path = std::env::var("BENCH_INGEST_OUT").unwrap_or_else(|_| "BENCH_ingest.json".into());
    std::fs::write(&out_path, out).expect("write bench JSON");
    eprintln!("wrote {out_path}");
    let _ = std::fs::remove_file(&text_path);
    let _ = std::fs::remove_file(&adjb_path);
}

//! Timing side of the A-series ablations (accuracy side lives in the
//! `repro_ablations` binary): sampling strategy, Q capacity, and the cost
//! of H-monitoring relative to plain distinguishing.

use adjstream_bench::workloads;
use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{TriangleDistinguisher, TwoPassTriangle, TwoPassTriangleConfig};
use adjstream_stream::{PassOrders, Runner, StreamOrder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_ablations(c: &mut Criterion) {
    let w = workloads::clique_triangles(12, 40); // dense-ish triangle load
    let n = w.n();
    let m = w.m();
    let order = PassOrders::Same(StreamOrder::shuffled(n, 2));
    let budget = m / 8;
    let mut g = c.benchmark_group("ablations");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.throughput(Throughput::Elements(2 * m as u64));

    // A5 timing: bottom-k maintains a heap; threshold is a pure hash.
    for (name, sampling) in [
        ("a5_bottomk", EdgeSampling::BottomK { k: budget }),
        (
            "a5_threshold",
            EdgeSampling::Threshold {
                p: budget as f64 / m as f64,
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = TwoPassTriangleConfig {
                    seed: 3,
                    edge_sampling: sampling,
                    pair_capacity: budget,
                };
                Runner::run(&w.graph, TwoPassTriangle::new(cfg), &order).0
            })
        });
    }

    // A3 timing: unbounded Q pays for every discovered pair.
    for (name, cap) in [("a3_q_capped", budget), ("a3_q_unbounded", usize::MAX)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = TwoPassTriangleConfig {
                    seed: 3,
                    edge_sampling: EdgeSampling::BottomK { k: budget },
                    pair_capacity: cap,
                };
                Runner::run(&w.graph, TwoPassTriangle::new(cfg), &order).0
            })
        });
    }

    // H-monitoring overhead: the full Thm 3.7 machinery vs the bare
    // distinguisher at the same sample size.
    g.bench_function("h_monitoring_on", |b| {
        b.iter(|| {
            let cfg = TwoPassTriangleConfig {
                seed: 3,
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            };
            Runner::run(&w.graph, TwoPassTriangle::new(cfg), &order).0
        })
    });
    g.bench_function("h_monitoring_off_distinguisher", |b| {
        b.iter(|| Runner::run(&w.graph, TriangleDistinguisher::new(3, budget), &order).0)
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

//! Throughput of the Section 4 two-pass 4-cycle algorithm (both estimator
//! variants) and the exact streaming baseline.

use adjstream_bench::workloads;
use adjstream_core::exact_stream::{ExactKind, ExactStreamCounter};
use adjstream_core::fourcycle::{FourCycleEstimator, TwoPassFourCycle, TwoPassFourCycleConfig};
use adjstream_stream::{PassOrders, Runner, StreamOrder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_fourcycle(c: &mut Criterion) {
    let w = workloads::bipartite_four_cycles(250, 8_000, 1);
    let n = w.n();
    let m = w.m();
    let order = PassOrders::PerPass(vec![
        StreamOrder::shuffled(n, 1),
        StreamOrder::shuffled(n, 2),
    ]);
    let mut g = c.benchmark_group("fourcycle");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.throughput(Throughput::Elements(2 * m as u64));
    for (name, est) in [
        ("distinct", FourCycleEstimator::DistinctCycles),
        ("multiplicity", FourCycleEstimator::WedgeMultiplicity),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = TwoPassFourCycleConfig {
                    seed: 3,
                    edge_sample_size: m / 16,
                    estimator: est,
                    max_wedges: None,
                };
                Runner::run(&w.graph, TwoPassFourCycle::new(cfg), &order).0
            })
        });
    }
    let single = PassOrders::Same(StreamOrder::shuffled(n, 1));
    g.bench_function("exact_store_all", |b| {
        b.iter(|| {
            Runner::run(
                &w.graph,
                ExactStreamCounter::new(ExactKind::FourCycles),
                &single,
            )
            .0
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fourcycle);
criterion_main!(benches);

//! Property tests for graph-sharded execution: at every shard count the
//! merged estimate must be bit-identical to the same estimator driven
//! sequentially over the whole trace, with or without injected faults
//! (repaired once, upstream of the shard split), and shard placement must
//! be a pure function of the vertex id.
//!
//! Deliberately NOT asserted: sampler lifecycle counters
//! (admissions/evictions under bottom-k) — they depend on offer order,
//! which legitimately differs per shard. The equivalence contract covers
//! estimates, guard stats, and the merged output; see DESIGN.md §14.

use adjstream_core::common::EdgeSampling;
use adjstream_core::triangle::{ShardedTriangle, ShardedTriangleConfig};
use adjstream_graph::VertexId;
use adjstream_stream::fault::{FaultKind, FaultPlan};
use adjstream_stream::runner::{run_slice_passes, GuardStats, MultiPassAlgorithm};
use adjstream_stream::shard::{run_sharded, shard_of, ShardPlan};
use adjstream_stream::{GuardPolicy, Guarded, Metrics, SpaceUsage, StreamItem};
use proptest::prelude::*;

/// Tiny deterministic generator for building workloads from a drawn seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A promise-valid adjacency-list trace of a random simple graph on `n`
/// vertices: every undirected edge appears in both endpoint lists, every
/// list contiguous.
fn random_trace(seed: u64, n: u32, target_edges: usize) -> Vec<StreamItem> {
    let mut mix = Mix(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    let mut edges = std::collections::BTreeSet::new();
    for _ in 0..target_edges * 2 {
        if edges.len() >= target_edges {
            break;
        }
        let u = mix.below(n as u64) as u32;
        let v = mix.below(n as u64) as u32;
        if u != v && edges.insert((u.min(v), u.max(v))) {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    let mut items = Vec::new();
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            items.push(StreamItem::new(VertexId(u as u32), VertexId(v)));
        }
    }
    items
}

fn config(seed: u64, items: usize) -> ShardedTriangleConfig {
    ShardedTriangleConfig {
        seed,
        edge_sampling: EdgeSampling::BottomK {
            k: (items / 8).max(8),
        },
        pair_capacity: (items / 8).max(8),
    }
}

/// One-pass collector used to repair a faulty stream once, upstream of
/// the shard split (the same construction the CLI uses).
#[derive(Default)]
struct CollectItems {
    items: Vec<StreamItem>,
}

impl SpaceUsage for CollectItems {
    fn space_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<StreamItem>()
    }
}

impl MultiPassAlgorithm for CollectItems {
    type Output = Vec<StreamItem>;

    fn passes(&self) -> usize {
        1
    }

    fn begin_pass(&mut self, _pass: usize) {}

    fn item(&mut self, src: VertexId, dst: VertexId) {
        self.items.push(StreamItem::new(src, dst));
    }

    fn finish(self) -> Vec<StreamItem> {
        self.items
    }
}

/// Repair `items` through the guard; returns the repaired stream and the
/// guard's counters.
fn repair(items: &[StreamItem]) -> (Vec<StreamItem>, Option<GuardStats>) {
    let (fixed, report) = run_slice_passes(
        Guarded::new(CollectItems::default(), GuardPolicy::Repair),
        |_pass| items,
    )
    .expect("repair pass succeeds");
    (fixed, report.guard)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_estimate_is_bit_identical_to_sequential(
        seed in any::<u64>(),
        n in 6u32..48,
        density in 1usize..5,
    ) {
        let items = random_trace(seed, n, n as usize * density);
        let cfg = config(seed ^ 0xA5A5, items.len().max(1));
        let (want, want_report) =
            run_slice_passes(ShardedTriangle::new(cfg), |_pass| &items[..])
                .expect("sequential run");
        for shards in [1usize, 2, 4, 8] {
            let plan = ShardPlan::build(&items, shards);
            let (got, report) =
                run_sharded(ShardedTriangle::new(cfg), &plan, &items, &Metrics::disabled())
                    .expect("sharded run");
            prop_assert_eq!(got.estimate.to_bits(), want.estimate.to_bits(),
                "estimate diverged at {} shards", shards);
            // The whole output record matches, not just the headline number.
            prop_assert_eq!(got, want);
            // A single shard replays the identical execution, so even the
            // space profile matches; more shards can only shrink the
            // per-worker peak (each replica holds a subset of the writes).
            if shards == 1 {
                prop_assert_eq!(report.peak_state_bytes, want_report.peak_state_bytes);
            } else {
                prop_assert!(report.peak_state_bytes <= want_report.peak_state_bytes);
            }
        }
    }

    #[test]
    fn faulty_traces_repair_upstream_then_shard_identically(
        seed in any::<u64>(),
        n in 8u32..40,
        drops in 0usize..3,
        loops in 0usize..3,
        dups in 0usize..3,
    ) {
        let clean = random_trace(seed, n, n as usize * 3);
        let corrupted = FaultPlan::new(seed ^ 0xF417)
            .with(FaultKind::DropDirection, drops)
            .with(FaultKind::InjectSelfLoop, loops)
            .with(FaultKind::DuplicateItem, dups)
            .apply(&clean);
        // The guard is deterministic: repairing twice yields the same
        // stream and the same fault counters.
        let (fixed, stats) = repair(corrupted.items());
        let (fixed2, stats2) = repair(corrupted.items());
        prop_assert_eq!(&fixed, &fixed2);
        prop_assert_eq!(stats, stats2);
        // Downstream of the one repair, sharding is invisible.
        let cfg = config(seed ^ 0x5A5A, fixed.len().max(1));
        let (want, _) = run_slice_passes(ShardedTriangle::new(cfg), |_pass| &fixed[..])
            .expect("sequential run over repaired stream");
        for shards in [1usize, 2, 4, 8] {
            let plan = ShardPlan::build(&fixed, shards);
            let (got, _) =
                run_sharded(ShardedTriangle::new(cfg), &plan, &fixed, &Metrics::disabled())
                    .expect("sharded run over repaired stream");
            prop_assert_eq!(got, want, "diverged at {} shards", shards);
        }
    }

    #[test]
    fn shard_placement_is_stable_and_covers_the_trace(
        seed in any::<u64>(),
        n in 4u32..64,
        shards in 1usize..9,
    ) {
        let items = random_trace(seed, n, n as usize * 2);
        let plan = ShardPlan::build(&items, shards);
        let again = ShardPlan::build(&items, shards);
        let mut covered = 0usize;
        for s in 0..shards {
            prop_assert_eq!(plan.runs_for(s), again.runs_for(s),
                "placement changed between builds on shard {}", s);
            for run in plan.runs_for(s) {
                // Placement is a pure function of the owning vertex.
                prop_assert_eq!(shard_of(items[run.start].src, shards), s);
                covered += run.end - run.start;
            }
        }
        prop_assert_eq!(covered, items.len());
    }
}

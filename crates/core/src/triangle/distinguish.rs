//! The two-pass triangle *distinguisher* of \[27\] (Section 2.1 of the
//! paper): decides "triangle-free vs ≥ T triangles" in `Õ(m/T^{2/3})` space.
//!
//! Pass 1 samples `m′` edges; pass 2 flags both endpoints of each sampled
//! edge inside every adjacency list, declaring a triangle the moment some
//! list contains both. Any graph with `T` triangles has at least `T^{2/3}`
//! edges involved in triangles, so `m′ = Θ(m/T^{2/3})` hits one with
//! constant probability; a triangle-free graph can never produce a witness,
//! so the distinguisher has one-sided error.

use adjstream_graph::VertexId;
use adjstream_stream::hashing::FastSet;
use adjstream_stream::meter::{hashset_bytes, SpaceUsage};
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::BottomKSampler;

use crate::common::{pack_pair, PairWatcher};

/// Output of [`TriangleDistinguisher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistinguishVerdict {
    /// Whether any sampled edge was found to be in a triangle.
    pub found_triangle: bool,
    /// Number of (sampled-edge, apex) witnesses observed in pass 2.
    pub witnesses: u64,
    /// Final size of the edge sample.
    pub edges_sampled: usize,
}

/// Two-pass one-sided distinguisher between triangle-free graphs and graphs
/// with many triangles. See module docs.
pub struct TriangleDistinguisher {
    pass: usize,
    sampler: BottomKSampler,
    members: FastSet<u64>,
    watcher: PairWatcher,
    witnesses: u64,
    buf: Vec<u64>,
}

impl TriangleDistinguisher {
    /// Sample `m_prime` edges in pass 1.
    pub fn new(seed: u64, m_prime: usize) -> Self {
        TriangleDistinguisher {
            pass: 0,
            sampler: BottomKSampler::new(seed, m_prime),
            members: FastSet::default(),
            watcher: PairWatcher::new(),
            witnesses: 0,
            buf: Vec::new(),
        }
    }
}

impl SpaceUsage for TriangleDistinguisher {
    fn space_bytes(&self) -> usize {
        self.sampler.space_bytes() + hashset_bytes(&self.members) + self.watcher.space_bytes()
    }
}

impl MultiPassAlgorithm for TriangleDistinguisher {
    type Output = DistinguishVerdict;

    fn passes(&self) -> usize {
        2
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        if pass == 1 {
            // Freeze the sample and start watching it: every triangle on a
            // sampled edge completes somewhere in pass 2.
            let mut keys: Vec<u64> = self.sampler.keys().collect();
            // Deterministic watch order regardless of sampler iteration.
            keys.sort_unstable();
            for key in keys {
                self.members.insert(key);
                let (a, b) = crate::common::unpack_pair(key);
                self.watcher.watch(a, b);
            }
        }
    }

    fn begin_list(&mut self, _owner: VertexId) {
        if self.pass == 1 {
            self.watcher.begin_list();
        }
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        match self.pass {
            0 => {
                self.sampler.offer(pack_pair(src, dst));
            }
            _ => {
                let mut buf = std::mem::take(&mut self.buf);
                buf.clear();
                self.watcher.on_item(dst, |k| buf.push(k));
                self.witnesses += buf.len() as u64;
                self.buf = buf;
            }
        }
    }

    fn finish(self) -> DistinguishVerdict {
        DistinguishVerdict {
            found_triangle: self.witnesses > 0,
            witnesses: self.witnesses,
            edges_sampled: self.members.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::gen;
    use adjstream_stream::{PassOrders, Runner, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(g: &adjstream_graph::Graph, seed: u64, m_prime: usize) -> DistinguishVerdict {
        let n = g.vertex_count();
        let (v, _) = Runner::run(
            g,
            TriangleDistinguisher::new(seed, m_prime),
            &PassOrders::Same(StreamOrder::shuffled(n, seed ^ 0xD15)),
        );
        v
    }

    /// One-sided error: a triangle-free graph can never produce a witness.
    #[test]
    fn never_false_positive() {
        let mut rng = StdRng::seed_from_u64(21);
        for seed in 0..20 {
            let g = gen::bipartite_gnm(25, 25, 300, &mut rng);
            let v = run_once(&g, seed, 50);
            assert!(!v.found_triangle, "false positive at seed {seed}");
            assert_eq!(v.witnesses, 0);
        }
    }

    /// Full sampling always detects.
    #[test]
    fn full_sample_always_detects() {
        let g = gen::disjoint_triangles(5);
        let v = run_once(&g, 1, 15);
        assert!(v.found_triangle);
        // With all 15 edges sampled, every (edge, apex) pair is a witness.
        assert_eq!(v.witnesses, 15);
    }

    /// At the Theorem budget m/T^{2/3} the detection probability is high:
    /// with T planted triangles at least T^{2/3} edges are in triangles.
    #[test]
    fn detects_at_theorem_budget() {
        let mut rng = StdRng::seed_from_u64(33);
        let t = 64usize;
        let g = gen::planted_triangles_on_bipartite(40, 40, 800, t, &mut rng);
        let m = g.edge_count() as f64;
        let budget = (8.0 * m / (t as f64).powf(2.0 / 3.0)).ceil() as usize;
        let detected = (0..20)
            .filter(|&s| run_once(&g, s, budget).found_triangle)
            .count();
        assert!(
            detected >= 15,
            "detected only {detected}/20 at budget {budget}"
        );
    }

    /// Far below the budget, detection on a *single*-triangle graph is
    /// unlikely — the distinguisher needs its space.
    #[test]
    fn misses_below_budget() {
        let mut rng = StdRng::seed_from_u64(34);
        let g = gen::planted_triangles_on_bipartite(60, 60, 2000, 1, &mut rng);
        let detected = (0..20)
            .filter(|&s| run_once(&g, s, 5).found_triangle)
            .count();
        assert!(
            detected <= 6,
            "detected {detected}/20 with 5 edges of {}",
            g.edge_count()
        );
    }
}

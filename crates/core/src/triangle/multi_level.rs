//! Pass-optimal unknown-`T` triangle estimation: all guess levels in one
//! two-pass execution.
//!
//! [`crate::estimate::estimate_triangles_auto`] under
//! [`Engine::Sequential`](crate::estimate::Engine::Sequential) runs
//! guess-and-verify levels one after another, paying two passes per level
//! (its default batched engine instead folds the levels into one shared
//! execution via [`adjstream_stream::batch::BatchRunner`]). This algorithm
//! is the *single-instance* counterpart of that idea: it runs
//! every level **in parallel inside a single two-pass execution**: level
//! `i` is a full [`TwoPassTriangle`] instance with budget
//! `m₀·2^i`, all fed the same items. At finish, the coarsest (cheapest)
//! level whose estimate is consistent with its own budget's `T`-guess wins.
//! Space is the *sum* of the level budgets — dominated by the finest level,
//! i.e. a constant factor over the right budget had `T` been known — which
//! is the classic trade of passes for a `log` factor in space.

use adjstream_graph::VertexId;
use adjstream_stream::meter::SpaceUsage;
use adjstream_stream::obs::ObsCounters;
use adjstream_stream::runner::MultiPassAlgorithm;

use crate::common::EdgeSampling;
use crate::triangle::{TriangleEstimate, TwoPassTriangle, TwoPassTriangleConfig};

/// Result of a [`MultiLevelTriangle`] run.
#[derive(Debug, Clone)]
pub struct MultiLevelEstimate {
    /// The accepted estimate.
    pub estimate: f64,
    /// Index of the accepted level (0 = coarsest).
    pub accepted_level: usize,
    /// Per-level estimates, coarsest first.
    pub levels: Vec<TriangleEstimate>,
}

/// All-levels-at-once unknown-`T` triangle counter. See module docs.
pub struct MultiLevelTriangle {
    levels: Vec<TwoPassTriangle>,
    budgets: Vec<usize>,
}

impl MultiLevelTriangle {
    /// Build with `levels` parallel instances at budgets
    /// `base_budget · 2^i` for `i` in `0..levels`.
    pub fn new(seed: u64, base_budget: usize, levels: usize) -> Self {
        assert!(levels >= 1, "need at least one level");
        assert!(base_budget >= 1);
        let mut instances = Vec::with_capacity(levels);
        let mut budgets = Vec::with_capacity(levels);
        for i in 0..levels {
            let budget = base_budget.saturating_mul(1 << i);
            budgets.push(budget);
            instances.push(TwoPassTriangle::new(TwoPassTriangleConfig {
                seed: seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                edge_sampling: EdgeSampling::BottomK { k: budget },
                pair_capacity: budget,
            }));
        }
        MultiLevelTriangle {
            levels: instances,
            budgets,
        }
    }

    /// The per-level budgets.
    pub fn budgets(&self) -> &[usize] {
        &self.budgets
    }
}

impl SpaceUsage for MultiLevelTriangle {
    fn space_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.space_bytes()).sum()
    }
}

impl MultiPassAlgorithm for MultiLevelTriangle {
    type Output = MultiLevelEstimate;

    fn passes(&self) -> usize {
        2
    }

    fn requires_same_order(&self) -> bool {
        true
    }

    fn begin_pass(&mut self, pass: usize) {
        for l in &mut self.levels {
            l.begin_pass(pass);
        }
    }

    fn begin_list(&mut self, owner: VertexId) {
        for l in &mut self.levels {
            l.begin_list(owner);
        }
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        for l in &mut self.levels {
            l.item(src, dst);
        }
    }

    /// Forward whole runs so each level's native slice path engages.
    fn feed_slice(&mut self, items: &[adjstream_stream::item::StreamItem]) {
        for l in &mut self.levels {
            l.feed_slice(items);
        }
    }

    fn end_list(&mut self, owner: VertexId) {
        for l in &mut self.levels {
            l.end_list(owner);
        }
    }

    fn end_pass(&mut self, pass: usize) {
        for l in &mut self.levels {
            l.end_pass(pass);
        }
    }

    fn obs_counters(&self) -> Option<ObsCounters> {
        let mut c = ObsCounters::default();
        for l in &self.levels {
            if let Some(lc) = l.obs_counters() {
                c.merge(&lc);
            }
        }
        Some(c)
    }

    fn finish(self) -> MultiLevelEstimate {
        let results: Vec<TriangleEstimate> = self.levels.into_iter().map(|l| l.finish()).collect();
        // A level with budget b is trustworthy for T ≳ (c·m/b)^{3/2}
        // (inverting b = c·m/T^{2/3}, with c = 8 for a comfortable
        // constant). Accept the coarsest level whose estimate meets its own
        // trust floor; fall back to the finest.
        let m = results.first().map(|r| r.m).unwrap_or(0) as f64;
        let mut accepted = results.len() - 1;
        for (i, (r, &b)) in results.iter().zip(&self.budgets).enumerate() {
            let trust_floor = if b as f64 >= m {
                0.0
            } else {
                (8.0 * m / b as f64).powf(1.5)
            };
            if r.estimate >= trust_floor {
                accepted = i;
                break;
            }
        }
        MultiLevelEstimate {
            estimate: results[accepted].estimate,
            accepted_level: accepted,
            levels: results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};

    #[test]
    fn budgets_are_geometric() {
        let a = MultiLevelTriangle::new(1, 10, 4);
        assert_eq!(a.budgets(), &[10, 20, 40, 80]);
    }

    #[test]
    fn two_passes_suffice_for_unknown_t() {
        // T = 240 on m = 180; no T is supplied anywhere.
        let g = gen::disjoint_cliques(6, 12);
        let n = g.vertex_count();
        let mut good = 0;
        for seed in 0..15u64 {
            let levels = 6;
            let algo = MultiLevelTriangle::new(seed, 8, levels);
            let (est, report) =
                Runner::run(&g, algo, &PassOrders::Same(StreamOrder::shuffled(n, seed)));
            assert_eq!(report.passes, 2);
            if (est.estimate - 240.0).abs() < 120.0 {
                good += 1;
            }
        }
        assert!(good >= 11, "only {good}/15 within 50%");
    }

    #[test]
    fn triangle_free_accepts_the_finest_level_at_zero() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::bipartite_gnm(25, 25, 200, &mut rng);
        let algo = MultiLevelTriangle::new(2, 8, 6);
        let (est, _) = Runner::run(&g, algo, &PassOrders::Same(StreamOrder::shuffled(50, 1)));
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.accepted_level, est.levels.len() - 1);
    }

    #[test]
    fn space_is_dominated_by_the_finest_level() {
        let g = gen::disjoint_cliques(5, 30);
        let n = g.vertex_count();
        let run = |levels: usize| {
            let algo = MultiLevelTriangle::new(4, 16, levels);
            let (_, r) = Runner::run(&g, algo, &PassOrders::Same(StreamOrder::natural(n)));
            r.peak_state_bytes
        };
        let shallow = run(2);
        let deep = run(5); // finest budget 8× larger
        assert!(shallow < deep, "{shallow} vs {deep}");
        let _ = exact::count_triangles(&g);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        MultiLevelTriangle::new(1, 8, 0);
    }
}

//! The pedagogical three-pass exact-lightest-edge triangle counter of
//! Section 2.1.
//!
//! Like the two-pass algorithm it credits each triangle only at its lightest
//! edge, but it spends a third pass computing the *exact* per-edge triangle
//! counts `T(f)` instead of the suffix proxy `H_{f,τ}`:
//!
//! 1. Pass 1: sample an edge set `S`.
//! 2. Pass 2: collect the pairs `Q = {(e, τ) : e ∈ S, τ ∈ L(e)}` (every
//!    triangle over a sampled edge completes in some pass-2 list), keeping
//!    at most `pair_capacity` of them via a reservoir.
//! 3. Pass 3: for every edge `f` of a collected triangle, count `T(f)`
//!    exactly.
//! 4. Count `(e, τ)` iff `e = argmin_{f∈τ} T(f)` (ties by edge key).
//!
//! This trades a pass for exactness of the lightness measure — ablation A2
//! compares its accuracy against [`super::TwoPassTriangle`] at equal space.
//! Without the reservoir (`pair_capacity = ∞`) its space includes the
//! `Θ(T/k)` collected pairs, reproducing the `max(m/T^{2/3}, T^{1/3})`
//! discussion in Section 2.1 — ablation A3.

use adjstream_graph::VertexId;
use adjstream_stream::hashing::{FastMap, FastSet};
use adjstream_stream::meter::{hashmap_bytes, hashset_bytes, SpaceUsage};
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::{BottomKSampler, Reservoir, ReservoirEvent, ThresholdSampler};

use crate::common::{pack_pair, unpack_pair, EdgeSampling, PairWatcher};

/// Result of a [`ThreePassTriangle`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreePassEstimate {
    /// The estimate.
    pub estimate: f64,
    /// Discovered pair count `T′`.
    pub pairs_discovered: u64,
    /// Pairs retained in `Q`.
    pub q_size: usize,
    /// Pairs winning the exact lightest-edge rule.
    pub counted: u64,
    /// Final sampled-edge count.
    pub edges_sampled: usize,
    /// Edge count.
    pub m: u64,
}

/// A collected pair: triangle vertices with `e = {u, v}` sampled.
#[derive(Debug, Clone, Copy)]
struct Pair3 {
    verts: [VertexId; 3],
}

impl Pair3 {
    fn slot_edge(&self, slot: usize) -> u64 {
        let [u, v, w] = self.verts;
        match slot {
            0 => pack_pair(u, v),
            1 => pack_pair(u, w),
            _ => pack_pair(v, w),
        }
    }
}

enum Sampler {
    Threshold(ThresholdSampler),
    BottomK(BottomKSampler),
}

/// Three-pass triangle counter with exact per-edge lightness. See module docs.
pub struct ThreePassTriangle {
    pass: usize,
    sampler: Sampler,
    sampling: EdgeSampling,
    s_edges: FastSet<u64>,
    discovered: u64,
    q: Reservoir<Pair3>,
    /// Exact triangle counts per monitored edge (pass 3).
    t_counts: FastMap<u64, u64>,
    /// Refcount of monitored edges (several pairs may share an edge).
    monitored: FastMap<u64, u32>,
    watcher: PairWatcher,
    items: u64,
    buf: Vec<u64>,
}

impl ThreePassTriangle {
    /// Build with a sampling mode for `S` and a reservoir capacity for `Q`
    /// (`usize::MAX` disables subsampling — ablation A3).
    pub fn new(seed: u64, sampling: EdgeSampling, pair_capacity: usize) -> Self {
        let sampler = match sampling {
            EdgeSampling::Threshold { p } => Sampler::Threshold(ThresholdSampler::new(seed, p)),
            EdgeSampling::BottomK { k } => Sampler::BottomK(BottomKSampler::new(seed, k)),
        };
        ThreePassTriangle {
            pass: 0,
            sampler,
            sampling,
            s_edges: FastSet::default(),
            discovered: 0,
            q: Reservoir::new(seed ^ 0x3_9A55, pair_capacity),
            t_counts: FastMap::default(),
            monitored: FastMap::default(),
            watcher: PairWatcher::new(),
            items: 0,
            buf: Vec::new(),
        }
    }

    fn unmonitor_pair(&mut self, p: &Pair3) {
        for slot in 0..3 {
            let e = p.slot_edge(slot);
            let rc = self.monitored.get_mut(&e).expect("monitored");
            *rc -= 1;
            if *rc == 0 {
                self.monitored.remove(&e);
            }
            let (a, b) = unpack_pair(e);
            self.watcher.unwatch(a, b);
        }
    }

    fn monitor_pair(&mut self, p: &Pair3) {
        for slot in 0..3 {
            let e = p.slot_edge(slot);
            *self.monitored.entry(e).or_insert(0) += 1;
            let (a, b) = unpack_pair(e);
            self.watcher.watch(a, b);
        }
    }
}

impl SpaceUsage for ThreePassTriangle {
    fn space_bytes(&self) -> usize {
        hashset_bytes(&self.s_edges)
            + self.q.space_bytes()
            + hashmap_bytes(&self.t_counts)
            + hashmap_bytes(&self.monitored)
            + self.watcher.space_bytes()
            + match &self.sampler {
                Sampler::Threshold(_) => 32,
                Sampler::BottomK(b) => b.space_bytes(),
            }
    }
}

impl MultiPassAlgorithm for ThreePassTriangle {
    type Output = ThreePassEstimate;

    fn passes(&self) -> usize {
        3
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        if pass == 1 {
            // Freeze S; watch sampled edges for collection.
            let mut keys: Vec<u64> = match &self.sampler {
                Sampler::Threshold(_) => Vec::new(), // inserted lazily below
                Sampler::BottomK(b) => b.keys().collect(),
            };
            // Sort so the watch-registration order — and hence downstream
            // completion-callback order — is a function of S alone, not of
            // the sampler's internal iteration order.
            keys.sort_unstable();
            for key in keys {
                self.s_edges.insert(key);
                let (a, b) = unpack_pair(key);
                self.watcher.watch(a, b);
            }
        }
    }

    fn begin_list(&mut self, _owner: VertexId) {
        self.watcher.begin_list();
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        let key = pack_pair(src, dst);
        match self.pass {
            0 => {
                self.items += 1;
                match &mut self.sampler {
                    // Threshold membership is a pure hash function; edges
                    // are inserted (and watched) at their first appearance
                    // so that S is complete — and fully watched — before
                    // pass 2 begins collecting.
                    Sampler::Threshold(t) => {
                        if t.accepts(key) && !self.s_edges.contains(&key) {
                            self.s_edges.insert(key);
                            self.watcher.watch(src, dst);
                        }
                    }
                    Sampler::BottomK(b) => {
                        b.offer(key);
                    }
                }
            }
            1 => {
                let mut buf = std::mem::take(&mut self.buf);
                buf.clear();
                self.watcher.on_item(dst, |k| buf.push(k));
                for &k in &buf {
                    if self.s_edges.contains(&k) {
                        // Discovery of (k, triangle k+src).
                        self.discovered += 1;
                        let (u, v) = unpack_pair(k);
                        let pair = Pair3 { verts: [u, v, src] };
                        match self.q.offer(pair) {
                            ReservoirEvent::Stored { .. } => self.monitor_pair(&pair),
                            ReservoirEvent::Replaced { evicted, .. } => {
                                self.monitor_pair(&pair);
                                self.unmonitor_pair(&evicted);
                            }
                            ReservoirEvent::Rejected => {}
                        }
                    }
                }
                self.buf = buf;
            }
            _ => {
                // Pass 3: exact per-edge triangle counts.
                let mut buf = std::mem::take(&mut self.buf);
                buf.clear();
                self.watcher.on_item(dst, |k| buf.push(k));
                for &k in &buf {
                    if self.monitored.contains_key(&k) {
                        *self.t_counts.entry(k).or_insert(0) += 1;
                    }
                }
                self.buf = buf;
            }
        }
    }

    fn finish(self) -> ThreePassEstimate {
        let m = self.items / 2;
        // In pass 2, a triangle completes once per apex list scan: the apex
        // of (e, τ) is scanned exactly once, so each pair is discovered
        // exactly once. A sampled edge's own lists cannot complete it.
        let s_len = self.s_edges.len();
        let k = match self.sampling {
            EdgeSampling::Threshold { p } => {
                if p > 0.0 {
                    1.0 / p
                } else {
                    0.0
                }
            }
            EdgeSampling::BottomK { .. } => {
                if s_len == 0 {
                    0.0
                } else {
                    (m as f64 / s_len as f64).max(1.0)
                }
            }
        };
        let mut counted = 0u64;
        for pair in self.q.items() {
            let best = (0..3)
                .min_by_key(|&s| {
                    let e = pair.slot_edge(s);
                    (self.t_counts.get(&e).copied().unwrap_or(0), e)
                })
                .expect("three slots");
            if best == 0 {
                counted += 1;
            }
        }
        let q_size = self.q.len();
        let scale = if q_size == 0 {
            0.0
        } else {
            self.discovered as f64 / q_size as f64
        };
        ThreePassEstimate {
            estimate: k * scale * counted as f64,
            pairs_discovered: self.discovered,
            q_size,
            counted,
            edges_sampled: s_len,
            m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(
        g: &adjstream_graph::Graph,
        seed: u64,
        sampling: EdgeSampling,
        cap: usize,
        order_seed: u64,
    ) -> ThreePassEstimate {
        let n = g.vertex_count();
        let (est, _) = Runner::run(
            g,
            ThreePassTriangle::new(seed, sampling, cap),
            &PassOrders::Same(StreamOrder::shuffled(n, order_seed)),
        );
        est
    }

    /// Full sampling + unbounded Q is exact: each triangle counted at its
    /// unique lightest edge (by exact T(f), ties by key).
    #[test]
    fn exhaustive_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..6 {
            let g = gen::gnm(35, 170, &mut rng);
            let truth = exact::count_triangles(&g);
            let est = run_once(
                &g,
                trial,
                EdgeSampling::Threshold { p: 1.0 },
                usize::MAX,
                trial,
            );
            assert_eq!(est.estimate, truth as f64, "trial {trial}");
            assert_eq!(est.pairs_discovered, 3 * truth);
        }
    }

    #[test]
    fn exhaustive_bottomk_is_exact() {
        let g = gen::complete(10); // T = 120, m = 45
        let est = run_once(&g, 3, EdgeSampling::BottomK { k: 45 }, usize::MAX, 8);
        assert_eq!(est.estimate, 120.0);
    }

    #[test]
    fn unbiased_when_subsampling() {
        let g = gen::disjoint_cliques(6, 8); // T = 160
        let reps = 250;
        let mut sum = 0.0;
        for seed in 0..reps {
            sum += run_once(&g, seed, EdgeSampling::Threshold { p: 0.4 }, 100, seed).estimate;
        }
        let mean = sum / reps as f64;
        assert!((mean - 160.0).abs() < 16.0, "mean {mean}");
    }

    /// Pass 2 without a reservoir stores Θ(T/k) pairs — the space blow-up
    /// that motivates subsampling Q (ablation A3): capped runs use less
    /// space on triangle-dense graphs.
    #[test]
    fn q_capping_reduces_space() {
        let g = gen::complete(40); // T = 9880
        let run = |cap| {
            let (_, r) = Runner::run(
                &g,
                ThreePassTriangle::new(2, EdgeSampling::Threshold { p: 0.8 }, cap),
                &PassOrders::Same(StreamOrder::natural(40)),
            );
            r.peak_state_bytes
        };
        let capped = run(50);
        let uncapped = run(usize::MAX);
        assert!(capped * 4 < uncapped, "capped {capped} uncapped {uncapped}");
    }
}

//! The random-order one-pass estimator sketched in Section 1.1 (after
//! Jha–Seshadhri–Pinar \[17\]): "uniform edge sampling to find wedges and
//! then checking whether those wedges are completed by some later edge".
//!
//! Sample each arriving edge independently with probability `p`; a later
//! edge `{u, v}` *closes* every wedge formed by two already-sampled edges
//! `{u, c}, {v, c}`. Each triangle is detected exactly when its two
//! earliest edges were both sampled — probability `p²` under any arrival
//! order — so `X/p²` is unbiased; the uniformly random order (which
//! [`adjstream_stream::arbitrary::ArbitraryOrderStream`] provides) is what
//! makes the *variance* benign, spreading each triangle's detection window
//! over the whole stream. Space is `O(pm)` plus the closure index.

use adjstream_graph::EdgeKey;
use adjstream_stream::arbitrary::EdgeStreamAlgorithm;
use adjstream_stream::hashing::{FastMap, HashFn};
use adjstream_stream::meter::{hashmap_bytes, SpaceUsage};

use crate::common::count_common_neighbors;

/// Result of a [`RandomOrderTriangle`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomOrderEstimate {
    /// `X / p²`.
    pub estimate: f64,
    /// Wedge closures observed `X`.
    pub closures: u64,
    /// Edges sampled.
    pub edges_sampled: usize,
    /// Stream length `m`.
    pub m: u64,
}

/// One-pass random-order triangle estimator. See module docs.
pub struct RandomOrderTriangle {
    p: f64,
    hash: HashFn,
    /// Adjacency of the sampled subgraph.
    adj: FastMap<u32, Vec<u32>>,
    edges_sampled: usize,
    closures: u64,
    m: u64,
}

impl RandomOrderTriangle {
    /// Estimator sampling edges at rate `p`.
    pub fn new(seed: u64, p: f64) -> Self {
        RandomOrderTriangle {
            p: p.clamp(0.0, 1.0),
            hash: HashFn::from_seed(seed, 0x3A2D),
            adj: FastMap::default(),
            edges_sampled: 0,
            closures: 0,
            m: 0,
        }
    }

    fn common_sampled(&self, u: u32, v: u32) -> u64 {
        let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) else {
            return 0;
        };
        count_common_neighbors(nu, nv)
    }
}

impl SpaceUsage for RandomOrderTriangle {
    fn space_bytes(&self) -> usize {
        let inner: usize = self.adj.values().map(|v| v.capacity() * 4 + 24).sum();
        hashmap_bytes(&self.adj) + inner + 64
    }
}

impl EdgeStreamAlgorithm for RandomOrderTriangle {
    type Output = RandomOrderEstimate;

    fn edge(&mut self, e: EdgeKey) {
        self.m += 1;
        // 1. Closure: wedges over already-sampled edges with leaves {u, v}.
        self.closures += self.common_sampled(e.lo().0, e.hi().0);
        // 2. Sample the edge itself (hash-based so reruns are replayable).
        if self.p >= 1.0 || self.hash.unit(e.pack()) < self.p {
            self.edges_sampled += 1;
            self.adj.entry(e.lo().0).or_default().push(e.hi().0);
            self.adj.entry(e.hi().0).or_default().push(e.lo().0);
        }
    }

    fn finish(self) -> RandomOrderEstimate {
        let estimate = if self.p > 0.0 {
            self.closures as f64 / (self.p * self.p)
        } else {
            0.0
        };
        RandomOrderEstimate {
            estimate,
            closures: self.closures,
            edges_sampled: self.edges_sampled,
            m: self.m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::arbitrary::{run_edge_stream, ArbitraryOrderStream};

    fn run(g: &adjstream_graph::Graph, p: f64, seed: u64) -> RandomOrderEstimate {
        let s = ArbitraryOrderStream::new(g, seed);
        let (est, _) = run_edge_stream(&s, RandomOrderTriangle::new(seed ^ 0xE, p));
        est
    }

    /// At p = 1, each triangle closes exactly once (at its last edge).
    #[test]
    fn full_rate_is_exact() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..8 {
            let g = gen::gnm(30, 140, &mut rng);
            let truth = exact::count_triangles(&g);
            let est = run(&g, 1.0, trial);
            assert_eq!(est.closures, truth, "trial {trial}");
            assert_eq!(est.estimate, truth as f64);
        }
    }

    #[test]
    fn unbiased_at_partial_rate() {
        let g = gen::disjoint_cliques(5, 12); // T = 120
        let reps = 400;
        let mean: f64 = (0..reps).map(|s| run(&g, 0.5, s).estimate).sum::<f64>() / reps as f64;
        assert!((mean - 120.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn zero_rate_estimates_zero() {
        let g = gen::complete(6);
        let est = run(&g, 0.0, 1);
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.edges_sampled, 0);
    }

    #[test]
    fn sample_rate_is_respected() {
        let g = gen::complete(40); // m = 780
        let est = run(&g, 0.25, 9);
        let frac = est.edges_sampled as f64 / est.m as f64;
        assert!((frac - 0.25).abs() < 0.08, "frac {frac}");
    }
}

//! The Section 3 two-pass `(1±ε)` triangle counter (Theorem 3.7).
//!
//! Space `Õ(m/T^{2/3})`: pass 1 samples a uniform edge set `S`; triangles
//! touching `S` are *discovered* across both passes (each `(e, τ)` pair
//! exactly once — in pass 1 if the apex list arrives after `e` enters `S`,
//! otherwise in pass 2); a reservoir keeps an `m′`-size subsample `Q` of
//! the discovered pairs; in pass 2 the algorithm computes, for every pair
//! `(e, τ) ∈ Q` and every edge `f ∈ τ`, the *later-apex count*
//!
//! ```text
//! H_{f,τ} = |{σ ∈ L(f) : apex(σ, f) arrives after apex(τ, f)}|
//! ```
//!
//! and finally counts `τ` only if its sampled edge minimizes `H` — the
//! lightest-edge rule that tames heavy-edge variance (Lemma 3.2). The
//! estimate is `k · (T′/|Q|) · |{(e,τ) ∈ Q : ρ(τ) = e}|` where `T′` is the
//! number of discovered pairs and `k` the inverse edge-sampling rate.

use std::io::{self, Read, Write};

use adjstream_graph::VertexId;
use adjstream_stream::checkpoint::{
    corrupt, read_f64, read_u32, read_u64, read_u8, read_usize, write_f64, write_u32, write_u64,
    write_u8, write_usize, Checkpoint,
};
use adjstream_stream::hashing::FastMap;
use adjstream_stream::item::StreamItem;
use adjstream_stream::meter::{hashmap_bytes, vec_bytes, SpaceUsage};
use adjstream_stream::obs::ObsCounters;
use adjstream_stream::runner::MultiPassAlgorithm;
use adjstream_stream::sampling::{
    BottomKEvent, BottomKSampler, Reservoir, ReservoirEvent, ThresholdSampler,
};

use crate::common::{pack_pair, EdgeSampling, PairWatcher};

/// Configuration for [`TwoPassTriangle`].
#[derive(Debug, Clone, Copy)]
pub struct TwoPassTriangleConfig {
    /// Seed for all sampling decisions (hash functions and reservoir).
    pub seed: u64,
    /// How the edge sample `S` is drawn. For the paper's bound take
    /// `BottomK { k: Θ(m/(ε²T^{2/3})) }` or `Threshold { p: k/m }`.
    pub edge_sampling: EdgeSampling,
    /// Capacity of the pair reservoir `Q` (the paper's second `m′`).
    pub pair_capacity: usize,
}

/// Result of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleEstimate {
    /// The triangle count estimate `T̂`.
    pub estimate: f64,
    /// Edges in the final sample `S`.
    pub edges_sampled: usize,
    /// Discovered `(edge, triangle)` pairs `T′` (valid at end of run).
    pub pairs_discovered: u64,
    /// Pairs retained in `Q`.
    pub q_size: usize,
    /// Pairs whose sampled edge won the lightest-edge rule.
    pub counted: u64,
    /// Edge count `m` observed in pass 1.
    pub m: u64,
    /// The estimate a *naive* sampler (no lightest-edge rule) would return
    /// from the same run: `k·T′/3`, which counts each triangle once per
    /// sampled edge. Exposed for ablation A1 — on heavy-edge graphs its
    /// variance explodes while `estimate` stays controlled.
    pub naive_estimate: f64,
}

/// One `(e, τ)` pair resident in `Q`, with its per-edge `H` state.
#[derive(Debug, Clone)]
struct PairRecord {
    /// Generation tag guarding against slab-slot reuse.
    gen: u32,
    /// Triangle vertices `[u, v, w]`: `e = {u, v}` (canonical), `w` apex.
    verts: [VertexId; 3],
    /// `H` counters for slot edges `[{u,v}, {u,w}, {v,w}]`.
    h: [u64; 3],
    /// Whether each slot has passed its activation point in pass 2 (the
    /// end of the opposite vertex's list).
    active: [bool; 3],
}

impl PairRecord {
    /// The slot's edge as a packed canonical pair.
    fn slot_edge(&self, slot: usize) -> u64 {
        let [u, v, w] = self.verts;
        match slot {
            0 => pack_pair(u, v),
            1 => pack_pair(u, w),
            _ => pack_pair(v, w),
        }
    }

    /// The vertex opposite the slot's edge (`τ^{-f}`).
    fn opposite(&self, slot: usize) -> VertexId {
        let [u, v, w] = self.verts;
        match slot {
            0 => w,
            1 => v,
            _ => u,
        }
    }

    /// Slot of the lightest edge: argmin over `(H, edge key)`. The edge-key
    /// tiebreak depends only on the triangle, so every pair of the same
    /// triangle agrees on `ρ(τ)` as the paper requires.
    fn rho_slot(&self) -> usize {
        (0..3)
            .min_by_key(|&s| (self.h[s], self.slot_edge(s)))
            .expect("three slots")
    }
}

/// Per-sampled-edge bookkeeping.
#[derive(Debug, Clone, Copy)]
struct EdgeInfo {
    /// Arrival index of the list in which the edge first appeared (and was
    /// sampled).
    first_pos: u32,
    /// Discovered pairs charged to this edge (for eviction rollback).
    discoveries: u64,
}

enum Sampler {
    Threshold(ThresholdSampler),
    BottomK(BottomKSampler),
}

/// The Section 3 two-pass triangle counting algorithm. See module docs.
pub struct TwoPassTriangle {
    cfg: TwoPassTriangleConfig,
    pass: usize,
    /// Index of the current non-empty adjacency list within the pass.
    pos: u32,
    next_pos: u32,
    items_pass1: u64,
    sampler: Sampler,
    /// Packed edge → info, for edges currently in `S`.
    s_edges: FastMap<u64, EdgeInfo>,
    /// Valid discovered pair count `T′`.
    discovered: u64,
    /// Reservoir of `(slab, gen)` references.
    q: Reservoir<(u32, u32)>,
    slab: Vec<Option<PairRecord>>,
    free: Vec<u32>,
    /// Next generation for freed slab slots.
    free_gens: FastMap<u32, u32>,
    /// Packed edge → monitoring pairs `(slab, gen, slot)`.
    monitors: FastMap<u64, Vec<(u32, u32, u8)>>,
    /// Bytes held by `monitors`' inner vectors, maintained incrementally so
    /// `space_bytes` (sampled at every list boundary) stays O(1).
    monitors_vec_bytes: usize,
    /// Opposite vertex → pending slot activations `(slab, gen, slot)`.
    activations: FastMap<u32, Vec<(u32, u32, u8)>>,
    /// Bytes held by `activations`' inner vectors (see `monitors_vec_bytes`).
    activations_vec_bytes: usize,
    watcher: PairWatcher,
    /// Scratch buffer for completion callbacks.
    completed_buf: Vec<u64>,
    /// Sampler lifecycle counters (deterministic; see
    /// [`MultiPassAlgorithm::obs_counters`]).
    counters: ObsCounters,
}

impl TwoPassTriangle {
    /// Build the algorithm from its configuration.
    pub fn new(cfg: TwoPassTriangleConfig) -> Self {
        let sampler = match cfg.edge_sampling {
            EdgeSampling::Threshold { p } => Sampler::Threshold(ThresholdSampler::new(cfg.seed, p)),
            EdgeSampling::BottomK { k } => Sampler::BottomK(BottomKSampler::new(cfg.seed, k)),
        };
        TwoPassTriangle {
            cfg,
            pass: 0,
            pos: 0,
            next_pos: 0,
            items_pass1: 0,
            sampler,
            s_edges: FastMap::default(),
            discovered: 0,
            q: Reservoir::new(cfg.seed ^ 0x9_1E57_0A1C, cfg.pair_capacity),
            slab: Vec::new(),
            free: Vec::new(),
            free_gens: FastMap::default(),
            monitors: FastMap::default(),
            monitors_vec_bytes: 0,
            activations: FastMap::default(),
            activations_vec_bytes: 0,
            watcher: PairWatcher::new(),
            completed_buf: Vec::new(),
            counters: ObsCounters::default(),
        }
    }

    fn record_live(&self, slab: u32, gen: u32) -> bool {
        self.slab
            .get(slab as usize)
            .and_then(|r| r.as_ref())
            .is_some_and(|r| r.gen == gen)
    }

    /// Register watches/monitors/activations for a freshly stored record.
    fn attach(&mut self, slab: u32, gen: u32) {
        let rec = self.slab[slab as usize].as_ref().expect("just stored");
        let verts = rec.verts;
        for slot in 0..3u8 {
            let rec = self.slab[slab as usize].as_ref().expect("live");
            let edge = rec.slot_edge(slot as usize);
            let opp = rec.opposite(slot as usize);
            let (a, b) = crate::common::unpack_pair(edge);
            self.watcher.watch(a, b);
            self.monitors_vec_bytes +=
                crate::common::push_map_vec(&mut self.monitors, edge, (slab, gen, slot), 12);
            self.activations_vec_bytes +=
                crate::common::push_map_vec(&mut self.activations, opp.0, (slab, gen, slot), 12);
        }
        let _ = verts;
    }

    /// Tear down a record (unwatch; slab slot freed). Monitor and activation
    /// entries are cleaned lazily via generation checks.
    fn destroy(&mut self, slab: u32, gen: u32) {
        if !self.record_live(slab, gen) {
            return;
        }
        let rec = self.slab[slab as usize].take().expect("live record");
        for slot in 0..3 {
            let (a, b) = crate::common::unpack_pair(rec.slot_edge(slot));
            self.watcher.unwatch(a, b);
        }
        self.free.push(slab);
        self.free_gens.insert(slab, gen.wrapping_add(1));
    }

    /// Handle a discovery of the pair `(e, τ)` where `e = {u, v}` (packed in
    /// `e_key`) and `w` is the apex.
    fn discover(&mut self, e_key: u64, w: VertexId) {
        self.discovered += 1;
        if let Some(info) = self.s_edges.get_mut(&e_key) {
            info.discoveries += 1;
        }
        let (u, v) = crate::common::unpack_pair(e_key);
        let (slab, gen) = self.allocate_with_gen([u, v, w]);
        match self.q.offer((slab, gen)) {
            ReservoirEvent::Stored { .. } => {
                self.counters.pairs_stored += 1;
                self.attach(slab, gen);
            }
            ReservoirEvent::Replaced { evicted, .. } => {
                self.counters.pairs_stored += 1;
                self.counters.pairs_replaced += 1;
                self.attach(slab, gen);
                self.destroy(evicted.0, evicted.1);
            }
            ReservoirEvent::Rejected => {
                self.counters.pairs_rejected += 1;
                // Not sampled: roll the allocation back.
                self.slab[slab as usize] = None;
                self.free.push(slab);
                self.free_gens.insert(slab, gen.wrapping_add(1));
            }
        }
    }

    /// Purge everything charged to an evicted sampled edge.
    fn purge_edge(&mut self, e_key: u64) {
        let Some(info) = self.s_edges.remove(&e_key) else {
            return;
        };
        let (a, b) = crate::common::unpack_pair(e_key);
        self.watcher.unwatch(a, b);
        self.discovered -= info.discoveries;
        // Destroy pairs discovered at this edge.
        let victims: Vec<(u32, u32)> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.as_ref().and_then(|rec| {
                    if rec.slot_edge(0) == e_key {
                        Some((i as u32, rec.gen))
                    } else {
                        None
                    }
                })
            })
            .collect();
        for (s, g) in victims {
            self.destroy(s, g);
        }
        let slab = &self.slab;
        self.q.retain(|&(s, g)| {
            slab.get(s as usize)
                .and_then(|r| r.as_ref())
                .is_some_and(|r| r.gen == g)
        });
        self.q.set_seen(self.discovered);
    }

    /// Process one watched-pair completion in the current list of `owner`.
    fn on_completion(&mut self, key: u64, owner: VertexId) {
        // Discovery path: `key` is a sampled edge and `owner` its apex.
        if let Some(info) = self.s_edges.get(&key) {
            let is_discovery = if self.pass == 0 {
                true
            } else {
                self.pos < info.first_pos
            };
            if is_discovery {
                self.discover(key, owner);
            }
        }
        // H path (pass 2 only): bump active monitors of this edge.
        if self.pass == 1 {
            if let Some(entries) = self.monitors.get_mut(&key) {
                let slab = &mut self.slab;
                entries.retain(|&(s, g, slot)| {
                    match slab.get_mut(s as usize).and_then(|r| r.as_mut()) {
                        Some(rec) if rec.gen == g => {
                            if rec.active[slot as usize] {
                                rec.h[slot as usize] += 1;
                            }
                            true
                        }
                        _ => false,
                    }
                });
                if entries.is_empty() {
                    if let Some(dead) = self.monitors.remove(&key) {
                        self.monitors_vec_bytes -= dead.capacity() * 12 + 24;
                    }
                }
            }
        }
    }

    /// Pass-1 edge sampling on every item.
    fn sample_edge(&mut self, src: VertexId, dst: VertexId) {
        let key = pack_pair(src, dst);
        match &mut self.sampler {
            Sampler::Threshold(t) => {
                if t.accepts(key) {
                    if !self.s_edges.contains_key(&key) {
                        self.counters.admissions += 1;
                        self.s_edges.insert(
                            key,
                            EdgeInfo {
                                first_pos: self.pos,
                                discoveries: 0,
                            },
                        );
                        self.watcher.watch(src, dst);
                    }
                } else {
                    self.counters.rejections += 1;
                }
            }
            Sampler::BottomK(b) => match b.offer(key) {
                BottomKEvent::Inserted => {
                    self.counters.admissions += 1;
                    self.s_edges.insert(
                        key,
                        EdgeInfo {
                            first_pos: self.pos,
                            discoveries: 0,
                        },
                    );
                    self.watcher.watch(src, dst);
                }
                BottomKEvent::InsertedEvicting(old) => {
                    self.counters.admissions += 1;
                    self.counters.evictions += 1;
                    self.s_edges.insert(
                        key,
                        EdgeInfo {
                            first_pos: self.pos,
                            discoveries: 0,
                        },
                    );
                    self.watcher.watch(src, dst);
                    self.purge_edge(old);
                }
                BottomKEvent::AlreadyPresent => {}
                BottomKEvent::Rejected => self.counters.rejections += 1,
            },
        }
    }

    fn allocate_with_gen(&mut self, verts: [VertexId; 3]) -> (u32, u32) {
        if let Some(idx) = self.free.pop() {
            let gen = self.free_gens.remove(&idx).unwrap_or(1);
            self.slab[idx as usize] = Some(PairRecord {
                gen,
                verts,
                h: [0; 3],
                active: [false; 3],
            });
            (idx, gen)
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Some(PairRecord {
                gen: 0,
                verts,
                h: [0; 3],
                active: [false; 3],
            }));
            (idx, 0)
        }
    }
}

impl SpaceUsage for TwoPassTriangle {
    fn space_bytes(&self) -> usize {
        hashmap_bytes(&self.s_edges)
            + self.slab.capacity() * std::mem::size_of::<Option<PairRecord>>()
            + vec_bytes(&self.free)
            + hashmap_bytes(&self.monitors)
            + self.monitors_vec_bytes
            + hashmap_bytes(&self.activations)
            + self.activations_vec_bytes
            + self.watcher.space_bytes()
            + self.q.space_bytes()
            + hashmap_bytes(&self.free_gens)
            + match &self.sampler {
                Sampler::Threshold(_) => 32,
                Sampler::BottomK(b) => b.space_bytes(),
            }
    }
}

impl MultiPassAlgorithm for TwoPassTriangle {
    type Output = TriangleEstimate;

    fn passes(&self) -> usize {
        2
    }

    fn requires_same_order(&self) -> bool {
        true
    }

    fn begin_pass(&mut self, pass: usize) {
        self.pass = pass;
        self.next_pos = 0;
        self.pos = 0;
    }

    fn begin_list(&mut self, _owner: VertexId) {
        self.pos = self.next_pos;
        self.next_pos += 1;
        self.watcher.begin_list();
    }

    fn item(&mut self, src: VertexId, dst: VertexId) {
        if self.pass == 0 {
            self.items_pass1 += 1;
            self.sample_edge(src, dst);
        }
        let mut buf = std::mem::take(&mut self.completed_buf);
        buf.clear();
        self.watcher.on_item(dst, |k| buf.push(k));
        for &key in &buf {
            self.on_completion(key, src);
        }
        self.completed_buf = buf;
    }

    /// Native slice path: identical work to the per-item loop, with the
    /// completion scratch buffer swapped in and out once per run instead of
    /// once per item.
    fn feed_slice(&mut self, items: &[StreamItem]) {
        let mut buf = std::mem::take(&mut self.completed_buf);
        for it in items {
            if self.pass == 0 {
                self.items_pass1 += 1;
                self.sample_edge(it.src, it.dst);
            }
            buf.clear();
            self.watcher.on_item(it.dst, |k| buf.push(k));
            for &key in &buf {
                self.on_completion(key, it.src);
            }
        }
        self.completed_buf = buf;
    }

    fn end_list(&mut self, owner: VertexId) {
        if self.pass == 1 {
            if let Some(entries) = self.activations.remove(&owner.0) {
                self.activations_vec_bytes -= entries.capacity() * 12 + 24;
                for (s, g, slot) in entries {
                    if let Some(rec) = self.slab.get_mut(s as usize).and_then(|r| r.as_mut()) {
                        if rec.gen == g {
                            rec.active[slot as usize] = true;
                        }
                    }
                }
            }
        }
    }

    fn obs_counters(&self) -> Option<ObsCounters> {
        let mut c = self.counters;
        c.merge(&self.watcher.obs_counters());
        // Saturation snapshot, taken at publication time: each bounded
        // structure currently frozen at capacity counts once.
        if let Sampler::BottomK(b) = &self.sampler {
            if b.capacity() > 0 && b.len() == b.capacity() {
                c.freezes += 1;
            }
        }
        if self.q.capacity() > 0 && self.q.len() == self.q.capacity() {
            c.freezes += 1;
        }
        Some(c)
    }

    fn finish(self) -> TriangleEstimate {
        let m = self.items_pass1 / 2;
        let s_len = self.s_edges.len();
        let k = match self.cfg.edge_sampling {
            EdgeSampling::Threshold { p } => {
                if p > 0.0 {
                    1.0 / p
                } else {
                    0.0
                }
            }
            EdgeSampling::BottomK { .. } => {
                if s_len == 0 {
                    0.0
                } else {
                    (m as f64 / s_len as f64).max(1.0)
                }
            }
        };
        let mut counted = 0u64;
        for &(s, g) in self.q.items() {
            if let Some(rec) = self.slab.get(s as usize).and_then(|r| r.as_ref()) {
                if rec.gen == g && rec.rho_slot() == 0 {
                    counted += 1;
                }
            }
        }
        let q_size = self.q.len();
        let subsample_scale = if q_size == 0 {
            0.0
        } else {
            self.discovered as f64 / q_size as f64
        };
        TriangleEstimate {
            estimate: k * subsample_scale * counted as f64,
            edges_sampled: s_len,
            pairs_discovered: self.discovered,
            q_size,
            counted,
            m,
            naive_estimate: k * self.discovered as f64 / 3.0,
        }
    }
}

/// Pass-boundary serialization for checkpoint/resume. The mid-list cursors
/// (`pos`, `next_pos`) and the completion scratch buffer are reset rather
/// than saved — both are (re)initialized by `begin_pass`/`begin_list` when
/// the resumed run enters pass 2. The bottom-k sampler is rebuilt by
/// re-offering the sampled edge keys (the final bottom-k set *is*
/// `s_edges.keys()`, and membership is a pure function of the seeded hash,
/// so re-offering reproduces it regardless of order); the threshold sampler
/// is stateless and rebuilds from the config.
impl Checkpoint for TwoPassTriangle {
    fn save(&self, w: &mut dyn Write) -> io::Result<()> {
        write_u64(w, self.cfg.seed)?;
        match self.cfg.edge_sampling {
            EdgeSampling::Threshold { p } => {
                write_u8(w, 0)?;
                write_f64(w, p)?;
            }
            EdgeSampling::BottomK { k } => {
                write_u8(w, 1)?;
                write_usize(w, k)?;
            }
        }
        write_usize(w, self.cfg.pair_capacity)?;
        write_usize(w, self.pass)?;
        write_u64(w, self.items_pass1)?;
        write_u64(w, self.discovered)?;
        write_usize(w, self.s_edges.len())?;
        for (&key, info) in &self.s_edges {
            write_u64(w, key)?;
            write_u32(w, info.first_pos)?;
            write_u64(w, info.discoveries)?;
        }
        let (capacity, seen, rng_state) = self.q.to_parts();
        write_usize(w, capacity)?;
        write_u64(w, seen)?;
        write_u64(w, rng_state)?;
        write_usize(w, self.q.len())?;
        for &(s, g) in self.q.items() {
            write_u32(w, s)?;
            write_u32(w, g)?;
        }
        write_usize(w, self.slab.len())?;
        for slot in &self.slab {
            match slot {
                None => write_u8(w, 0)?,
                Some(rec) => {
                    write_u8(w, 1)?;
                    write_u32(w, rec.gen)?;
                    for v in rec.verts {
                        write_u32(w, v.0)?;
                    }
                    for h in rec.h {
                        write_u64(w, h)?;
                    }
                    for a in rec.active {
                        write_u8(w, a as u8)?;
                    }
                }
            }
        }
        write_usize(w, self.free.len())?;
        for &f in &self.free {
            write_u32(w, f)?;
        }
        write_usize(w, self.free_gens.len())?;
        for (&slot, &gen) in &self.free_gens {
            write_u32(w, slot)?;
            write_u32(w, gen)?;
        }
        save_ref_map(w, &self.monitors, |w, &(s, g, slot)| {
            write_u32(w, s)?;
            write_u32(w, g)?;
            write_u8(w, slot)
        })?;
        save_ref_map(w, &self.activations, |w, &(s, g, slot)| {
            write_u32(w, s)?;
            write_u32(w, g)?;
            write_u8(w, slot)
        })?;
        self.watcher.save(w)?;
        self.counters.save(w)
    }

    fn restore(r: &mut dyn Read) -> io::Result<Self> {
        let seed = read_u64(r)?;
        let edge_sampling = match read_u8(r)? {
            0 => EdgeSampling::Threshold { p: read_f64(r)? },
            1 => EdgeSampling::BottomK { k: read_usize(r)? },
            other => return Err(corrupt(format!("unknown edge-sampling tag {other}"))),
        };
        let pair_capacity = read_usize(r)?;
        let cfg = TwoPassTriangleConfig {
            seed,
            edge_sampling,
            pair_capacity,
        };
        let pass = read_usize(r)?;
        let items_pass1 = read_u64(r)?;
        let discovered = read_u64(r)?;
        let n = read_usize(r)?;
        let mut s_edges = FastMap::default();
        s_edges.reserve(n.min(1 << 16));
        for _ in 0..n {
            let key = read_u64(r)?;
            let first_pos = read_u32(r)?;
            let discoveries = read_u64(r)?;
            s_edges.insert(
                key,
                EdgeInfo {
                    first_pos,
                    discoveries,
                },
            );
        }
        let capacity = read_usize(r)?;
        let seen = read_u64(r)?;
        let rng_state = read_u64(r)?;
        let q_len = read_usize(r)?;
        let mut q_items = Vec::with_capacity(q_len.min(1 << 16));
        for _ in 0..q_len {
            let s = read_u32(r)?;
            let g = read_u32(r)?;
            q_items.push((s, g));
        }
        let q = Reservoir::from_parts(capacity, seen, rng_state, q_items);
        let n = read_usize(r)?;
        let mut slab = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            slab.push(match read_u8(r)? {
                0 => None,
                1 => {
                    let gen = read_u32(r)?;
                    let mut verts = [VertexId(0); 3];
                    for v in &mut verts {
                        *v = VertexId(read_u32(r)?);
                    }
                    let mut h = [0u64; 3];
                    for x in &mut h {
                        *x = read_u64(r)?;
                    }
                    let mut active = [false; 3];
                    for a in &mut active {
                        *a = read_u8(r)? != 0;
                    }
                    Some(PairRecord {
                        gen,
                        verts,
                        h,
                        active,
                    })
                }
                other => return Err(corrupt(format!("unknown slab slot tag {other}"))),
            });
        }
        let n = read_usize(r)?;
        let mut free = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            free.push(read_u32(r)?);
        }
        let n = read_usize(r)?;
        let mut free_gens = FastMap::default();
        free_gens.reserve(n.min(1 << 16));
        for _ in 0..n {
            let slot = read_u32(r)?;
            let gen = read_u32(r)?;
            free_gens.insert(slot, gen);
        }
        let (monitors, monitors_vec_bytes) =
            restore_ref_map(r, 12, |r| Ok((read_u32(r)?, read_u32(r)?, read_u8(r)?)))?;
        let (activations, activations_vec_bytes) =
            restore_ref_map(r, 12, |r| Ok((read_u32(r)?, read_u32(r)?, read_u8(r)?)))?;
        let watcher = PairWatcher::restore(r)?;
        let counters = ObsCounters::restore(r)?;
        let sampler = match cfg.edge_sampling {
            EdgeSampling::Threshold { p } => Sampler::Threshold(ThresholdSampler::new(seed, p)),
            EdgeSampling::BottomK { k } => {
                let mut b = BottomKSampler::new(seed, k);
                if s_edges.len() > k {
                    return Err(corrupt("more sampled edges than the bottom-k capacity"));
                }
                for &key in s_edges.keys() {
                    b.offer(key);
                }
                Sampler::BottomK(b)
            }
        };
        Ok(TwoPassTriangle {
            cfg,
            pass,
            pos: 0,
            next_pos: 0,
            items_pass1,
            sampler,
            s_edges,
            discovered,
            q,
            slab,
            free,
            free_gens,
            monitors,
            monitors_vec_bytes,
            activations,
            activations_vec_bytes,
            watcher,
            completed_buf: Vec::new(),
            counters,
        })
    }
}

/// Serialize a `u64-or-u32 key → Vec<entry>` reference map, preserving
/// vector order (iteration order inside each vector is behaviorally
/// significant; map-level order is not).
fn save_ref_map<K, T>(
    w: &mut dyn Write,
    map: &FastMap<K, Vec<T>>,
    mut entry: impl FnMut(&mut dyn Write, &T) -> io::Result<()>,
) -> io::Result<()>
where
    K: Copy + Into<u64>,
{
    write_usize(w, map.len())?;
    for (&key, entries) in map {
        write_u64(w, key.into())?;
        write_usize(w, entries.len())?;
        for e in entries {
            entry(w, e)?;
        }
    }
    Ok(())
}

/// Inverse of [`save_ref_map`], returning the map plus the incremental
/// byte count of its inner vectors (recomputed from the restored
/// capacities, which is exactly what the incremental counters track).
fn restore_ref_map<K, T>(
    r: &mut dyn Read,
    elem_bytes: usize,
    mut entry: impl FnMut(&mut dyn Read) -> io::Result<T>,
) -> io::Result<(FastMap<K, Vec<T>>, usize)>
where
    K: Eq + std::hash::Hash + TryFrom<u64>,
{
    let n = read_usize(r)?;
    let mut map = FastMap::default();
    map.reserve(n.min(1 << 16));
    let mut vec_bytes = 0usize;
    for _ in 0..n {
        let raw = read_u64(r)?;
        let key = K::try_from(raw).map_err(|_| corrupt(format!("map key {raw} out of range")))?;
        let len = read_usize(r)?;
        let mut entries = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            entries.push(entry(r)?);
        }
        vec_bytes += entries.capacity() * elem_bytes + 24;
        map.insert(key, entries);
    }
    Ok((map, vec_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adjstream_graph::{exact, gen};
    use adjstream_stream::{PassOrders, Runner, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_once(
        g: &adjstream_graph::Graph,
        cfg: TwoPassTriangleConfig,
        order: StreamOrder,
    ) -> TriangleEstimate {
        let (est, _) = Runner::run(g, TwoPassTriangle::new(cfg), &PassOrders::Same(order));
        est
    }

    fn full_cfg(seed: u64) -> TwoPassTriangleConfig {
        TwoPassTriangleConfig {
            seed,
            edge_sampling: EdgeSampling::Threshold { p: 1.0 },
            pair_capacity: usize::MAX,
        }
    }

    /// With S = all edges and an unbounded reservoir the estimate is exact:
    /// every (e, τ) pair is discovered once, H is computed exactly, and each
    /// triangle is counted at precisely its lightest edge.
    #[test]
    fn exhaustive_sampling_is_exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..8 {
            let g = gen::gnm(40, 220, &mut rng);
            let truth = exact::count_triangles(&g) as f64;
            for (oi, order) in [
                StreamOrder::natural(40),
                StreamOrder::reversed(40),
                StreamOrder::shuffled(40, trial),
            ]
            .into_iter()
            .enumerate()
            {
                let est = run_once(&g, full_cfg(trial), order);
                assert_eq!(est.estimate, truth, "trial {trial} order {oi}: {est:?}");
                assert_eq!(est.pairs_discovered, 3 * truth as u64);
                assert_eq!(est.counted, truth as u64);
            }
        }
    }

    #[test]
    fn exhaustive_bottomk_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnm(30, 140, &mut rng);
        let truth = exact::count_triangles(&g) as f64;
        let cfg = TwoPassTriangleConfig {
            seed: 7,
            edge_sampling: EdgeSampling::BottomK { k: 140 },
            pair_capacity: usize::MAX,
        };
        let est = run_once(&g, cfg, StreamOrder::shuffled(30, 3));
        assert_eq!(est.estimate, truth);
        assert_eq!(est.edges_sampled, 140);
    }

    #[test]
    fn exact_on_structured_graphs() {
        for (g, t) in [
            (gen::complete(8), 56u64),
            (gen::book(12), 12),
            (gen::disjoint_triangles(9), 9),
            (gen::complete_bipartite(4, 5), 0),
        ] {
            let n = g.vertex_count();
            let est = run_once(&g, full_cfg(3), StreamOrder::shuffled(n, 5));
            assert_eq!(est.estimate, t as f64, "graph {g:?}");
        }
    }

    /// The estimator is unbiased: averaging over many seeds at a moderate
    /// sampling rate converges to T.
    #[test]
    fn subsampled_estimator_is_unbiased() {
        let g = gen::disjoint_cliques(6, 10); // T = 10 * 20 = 200
        let truth = 200.0;
        let n = g.vertex_count();
        let reps = 300;
        let mut sum = 0.0;
        for seed in 0..reps {
            let cfg = TwoPassTriangleConfig {
                seed,
                edge_sampling: EdgeSampling::Threshold { p: 0.4 },
                pair_capacity: 120,
            };
            sum += run_once(&g, cfg, StreamOrder::shuffled(n, seed)).estimate;
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() < 0.1 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    /// Median amplification concentrates even on the heavy-edge book graph,
    /// where naive per-edge estimators blow up (ablation A1's motivation).
    #[test]
    fn median_concentrates_on_book_graph() {
        let g = gen::book(60); // 60 triangles, spine in all of them
        let n = g.vertex_count();
        let med = crate::amplify::median_of_runs(15, 40, 1, |seed| {
            let cfg = TwoPassTriangleConfig {
                seed,
                edge_sampling: EdgeSampling::Threshold { p: 0.5 },
                pair_capacity: 400,
            };
            run_once(&g, cfg, StreamOrder::shuffled(n, seed)).estimate
        });
        assert!(
            (med.median - 60.0).abs() < 24.0,
            "median {} too far from 60",
            med.median
        );
    }

    #[test]
    fn space_scales_with_budget_not_graph() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::gnm(600, 8000, &mut rng);
        let small = TwoPassTriangleConfig {
            seed: 1,
            edge_sampling: EdgeSampling::BottomK { k: 50 },
            pair_capacity: 50,
        };
        let big = TwoPassTriangleConfig {
            seed: 1,
            edge_sampling: EdgeSampling::BottomK { k: 4000 },
            pair_capacity: 4000,
        };
        let (_, r_small) = Runner::run(
            &g,
            TwoPassTriangle::new(small),
            &PassOrders::Same(StreamOrder::natural(600)),
        );
        let (_, r_big) = Runner::run(
            &g,
            TwoPassTriangle::new(big),
            &PassOrders::Same(StreamOrder::natural(600)),
        );
        assert!(
            r_small.peak_state_bytes * 8 < r_big.peak_state_bytes,
            "small {} vs big {}",
            r_small.peak_state_bytes,
            r_big.peak_state_bytes
        );
    }

    /// The incremental monitor/activation byte counters must equal a full
    /// value rescan at every list boundary of a real run — otherwise the
    /// O(1) `space_bytes` would drift from the metered truth.
    #[test]
    fn incremental_accounting_matches_rescan_during_runs() {
        use adjstream_stream::item::StreamItem;
        use adjstream_stream::AdjListStream;

        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::gnm(60, 400, &mut rng);
        let order = StreamOrder::shuffled(60, 4);
        let items: Vec<StreamItem> = AdjListStream::new(&g, order).collect_items();
        let mut algo = TwoPassTriangle::new(TwoPassTriangleConfig {
            seed: 5,
            edge_sampling: EdgeSampling::BottomK { k: 60 },
            pair_capacity: 60,
        });
        let rescan = |a: &TwoPassTriangle| {
            let mon: usize = a.monitors.values().map(|v| v.capacity() * 12 + 24).sum();
            let act: usize = a.activations.values().map(|v| v.capacity() * 12 + 24).sum();
            (mon, act)
        };
        for pass in 0..2 {
            algo.begin_pass(pass);
            let mut current = None;
            for it in &items {
                if current != Some(it.src) {
                    if let Some(prev) = current {
                        algo.end_list(prev);
                        assert_eq!(
                            (algo.monitors_vec_bytes, algo.activations_vec_bytes),
                            rescan(&algo),
                            "pass {pass}"
                        );
                    }
                    algo.begin_list(it.src);
                    current = Some(it.src);
                }
                algo.item(it.src, it.dst);
            }
            if let Some(prev) = current {
                algo.end_list(prev);
            }
            algo.end_pass(pass);
            assert_eq!(
                (algo.monitors_vec_bytes, algo.activations_vec_bytes),
                rescan(&algo)
            );
        }
    }

    #[test]
    fn empty_and_triangle_free_graphs_estimate_zero() {
        let g = adjstream_graph::Graph::empty(10);
        let est = run_once(&g, full_cfg(1), StreamOrder::natural(10));
        assert_eq!(est.estimate, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let bip = gen::bipartite_gnm(20, 20, 150, &mut rng);
        let est = run_once(&bip, full_cfg(1), StreamOrder::shuffled(40, 2));
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.pairs_discovered, 0);
    }

    #[test]
    fn checkpoint_roundtrip_at_the_pass_boundary_is_bit_for_bit() {
        use adjstream_stream::meter::PeakTracker;
        use adjstream_stream::runner::drive_pass;
        use adjstream_stream::AdjListStream;

        let mut rng = StdRng::seed_from_u64(77);
        let g = gen::gnm(60, 500, &mut rng).disjoint_union(&gen::disjoint_cliques(4, 6));
        let order = StreamOrder::shuffled(g.vertex_count(), 5);
        for edge_sampling in [
            EdgeSampling::BottomK { k: 64 },
            EdgeSampling::Threshold { p: 0.4 },
        ] {
            let cfg = TwoPassTriangleConfig {
                seed: 9,
                edge_sampling,
                pair_capacity: 96,
            };
            let mut peak = PeakTracker::new();
            let mut processed = 0usize;
            let mut original = TwoPassTriangle::new(cfg);
            drive_pass(
                &mut original,
                0,
                AdjListStream::new(&g, order.clone()).items(),
                &mut peak,
                &mut processed,
            )
            .unwrap();

            let mut buf = Vec::new();
            original.save(&mut buf).unwrap();
            let mut restored = TwoPassTriangle::restore(&mut &buf[..]).unwrap();
            assert_eq!(restored.s_edges.len(), original.s_edges.len());
            assert_eq!(restored.q.items(), original.q.items());
            let rescan = |m: &FastMap<u64, Vec<(u32, u32, u8)>>| -> usize {
                m.values().map(|v| v.capacity() * 12 + 24).sum()
            };
            assert_eq!(
                restored.monitors_vec_bytes,
                rescan(&restored.monitors),
                "restored monitor byte accounting must match a from-scratch rescan"
            );
            let act_rescan: usize = restored
                .activations
                .values()
                .map(|v| v.capacity() * 12 + 24)
                .sum();
            assert_eq!(
                restored.activations_vec_bytes, act_rescan,
                "restored activation byte accounting must match a from-scratch rescan"
            );

            for algo in [&mut original, &mut restored] {
                drive_pass(
                    algo,
                    1,
                    AdjListStream::new(&g, order.clone()).items(),
                    &mut peak,
                    &mut processed,
                )
                .unwrap();
            }
            let a = original.finish();
            let b = restored.finish();
            assert_eq!(a, b, "resumed run must reproduce the estimate exactly");
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            assert!(a.counted > 0, "test graph should actually count triangles");
        }
    }

    #[test]
    fn checkpoint_restore_rejects_garbage() {
        let err = TwoPassTriangle::restore(&mut &[0xFFu8; 4][..])
            .err()
            .expect("truncated input must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // A bad edge-sampling tag is a typed corruption error.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1).unwrap();
        write_u8(&mut buf, 7).unwrap();
        let err = TwoPassTriangle::restore(&mut &buf[..])
            .err()
            .expect("bad tag must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("edge-sampling tag"));
    }
}
